"""E10 — Theorem 2's linear-order condition separates the terminating
from the oscillating same-target designs.

Paper claim (Section 6): when two convergence actions target the same
node, "executing the convergence action of one of the constraints may
violate the other constraint, and vice versa" — unless the actions can
be linearly ordered so that each preserves the constraints of its
predecessors. The ordered decrement design terminates ("every
computation of these two convergence actions is finite"); the increment
design oscillates.

The table sweeps the window bound B and shows the dichotomy is exact and
independent of B: the order exists iff convergence holds iff the bad
subgraph is acyclic. The reported oscillation cycle is always the paper's
2-state ping-pong.
"""

from repro.analysis import render_table
from repro.core import find_linear_order
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    window_states,
    xyz_invariant,
)
from repro.verification import (
    check_convergence,
    explore,
    worst_case_convergence_steps,
)


def analyze(build, bound):
    design = build(bound)
    window = window_states(bound)
    order = find_linear_order(list(design.bindings), window)
    ts = explore(design.program, window)
    invariant = xyz_invariant()
    convergence = check_convergence(
        design.program, ts.states, invariant, fairness="weak", system=ts
    )
    worst = worst_case_convergence_steps(
        design.program, ts.states, invariant, system=ts
    )
    cycle = (
        len(convergence.counterexample.states)
        if convergence.counterexample is not None
        and convergence.counterexample.kind == "cycle"
        else None
    )
    return design, len(ts), order, convergence.ok, worst, cycle


def test_e10_ordering_dichotomy(benchmark, report):
    benchmark(lambda: analyze(build_ordered_design, 3))

    rows = []
    for bound in (2, 3, 4, 5):
        for build, label in [
            (build_ordered_design, "ordered (x decreases)"),
            (build_oscillating_design, "oscillating (x increases)"),
        ]:
            design, reachable, order, converges, worst, cycle = analyze(build, bound)
            rows.append(
                [
                    label,
                    bound,
                    reachable,
                    order is not None,
                    " < ".join(b.constraint.name for b in order) if order else "-",
                    converges,
                    "unbounded" if worst is None else worst,
                    cycle if cycle is not None else "-",
                ]
            )
    table = render_table(
        ["design", "B", "reachable states", "order exists", "order",
         "converges", "worst-case steps", "cycle length"],
        rows,
        title="E10: Theorem 2's linear-order condition vs actual convergence",
    )
    report("e10_theorem2_ordering", table)
    for row in rows:
        assert row[3] == row[5]  # order exists <=> converges
    bad = [row for row in rows if not row[5]]
    assert all(row[7] == 2 for row in bad)  # the paper's 2-state ping-pong
