"""E7 — the formal definition, verified: each design is T-tolerant for S.

Paper claim (Section 3): a program is T-tolerant for S iff S and T are
closed and every computation from T reaches S; the designed programs
satisfy it with T = true (stabilizing).

For every protocol in the library this experiment runs the paper's
definition directly — closure of S, closure of T, convergence — by
exhaustive model checking on a small instance, and reports the instance
size, the classification (masking/nonmasking, stabilizing), and the cost.
"""

import time

from repro.analysis import render_table
from repro.core import TRUE
from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
)
from repro.protocols.four_state_ring import (
    build_four_state_line,
    four_state_invariant,
)
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    graph_coloring_invariant,
)
from repro.protocols.independent_set import build_mis_program, mis_invariant
from repro.protocols.matching import build_matching_program, matching_invariant
from repro.protocols.mp_token_ring import build_mp_token_ring
from repro.protocols.reset import build_reset_program, reset_target
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    spanning_tree_invariant,
)
from repro.protocols.token_ring import build_dijkstra_ring
from repro.topology import balanced_tree, chain_tree, cycle_graph, path_graph
from repro.verification import check_tolerance


def cases():
    tree = chain_tree(4)
    design = build_diffusing_design(tree)
    yield "diffusing (chain-4)", design.program, diffusing_invariant(tree)

    tree = balanced_tree(2, 1)
    design = build_diffusing_design(tree)
    yield "diffusing (star-3)", design.program, diffusing_invariant(tree)

    program, spec = build_dijkstra_ring(5, k=5)
    yield "token ring (5, K=5)", program, spec

    tree = chain_tree(4)
    design = build_coloring_design(tree, k=3)
    yield "coloring (chain-4, k=3)", design.program, coloring_invariant(tree)

    tree = balanced_tree(2, 1)
    design = build_leader_election_design(tree)
    yield "leader election (star-3)", design.program, election_invariant(tree)

    graph = path_graph(4)
    yield (
        "spanning tree (path-4)",
        build_spanning_tree_program(graph, 0),
        spanning_tree_invariant(graph, 0),
    )

    graph = cycle_graph(4)
    yield "matching (cycle-4)", build_matching_program(graph), matching_invariant(graph)

    graph = cycle_graph(5)
    yield "MIS (cycle-5)", build_mis_program(graph), mis_invariant(graph)

    program, spec = build_mp_token_ring(3, 3)
    yield "mp token ring (3, K=3)", program, spec

    tree = chain_tree(3)
    yield (
        "distributed reset (chain-3)",
        build_reset_program(tree, app_values=2),
        reset_target(tree),
    )

    graph = cycle_graph(4)
    yield (
        "greedy coloring (cycle-4)",
        build_graph_coloring_program(graph),
        graph_coloring_invariant(graph),
    )

    program = build_four_state_line(5)
    yield "four-state line (5)", program, four_state_invariant(program)


def test_e7_tolerance_verification(benchmark, report):
    program, spec = build_dijkstra_ring(4, k=4)
    benchmark(
        lambda: check_tolerance(program, spec, TRUE, program.state_space())
    )

    rows = []
    for name, prog, invariant in cases():
        states = list(prog.state_space())
        started = time.perf_counter()
        result = check_tolerance(prog, invariant, TRUE, states, fairness="weak")
        elapsed = time.perf_counter() - started
        s_size = sum(1 for state in states if invariant(state))
        rows.append(
            [
                name,
                len(states),
                s_size,
                result.s_closure.ok,
                result.convergence.ok,
                result.classification,
                result.stabilizing,
                result.ok,
                f"{elapsed:.2f}s",
            ]
        )
    table = render_table(
        ["protocol", "states", "S-states", "S closed", "converges",
         "class", "stabilizing", "T-tolerant for S", "time"],
        rows,
        title="E7: the Section 3 definition, checked exhaustively per protocol",
    )
    report("e7_tolerance_verification", table)
    assert all(row[7] for row in rows)
