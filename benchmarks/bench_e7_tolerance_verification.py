"""E7 — the formal definition, verified: each design is T-tolerant for S.

Paper claim (Section 3): a program is T-tolerant for S iff S and T are
closed and every computation from T reaches S; the designed programs
satisfy it with T = true (stabilizing).

For every case in the protocol library this experiment runs the paper's
definition directly — closure of S, closure of T, convergence — and now
routes it through the cached verification service, differentially
checked against the plain sequential checker: the service must return a
bit-identical verdict cold, and again warm (cache hit). Per-instance
wall-clock timings land in ``BENCH_verification.json``.
"""

import time

from repro.analysis import render_table
from repro.core import TRUE
from repro.observability import MetricsRegistry
from repro.protocols.library import build_case, case_names
from repro.verification import VerificationService
from repro.verification.checker import _check_tolerance as check_tolerance

#: Record fields that must be bit-identical between the sequential
#: checker and the service, cold and warm.
VERDICT_FIELDS = (
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
)


def test_e7_tolerance_verification(benchmark, report, bench_timings):
    program, spec = build_case("dijkstra-ring", 4)
    service = VerificationService()
    benchmark(lambda: service.verify_tolerance(program, spec))

    suite_service = VerificationService(metrics=MetricsRegistry())
    rows = []
    instances = []
    for name in case_names():
        prog, invariant = build_case(name)
        states = list(prog.state_space())

        started = time.perf_counter()
        direct = check_tolerance(prog, invariant, TRUE, states, fairness="weak")
        sequential_seconds = time.perf_counter() - started

        cold = suite_service.verify_tolerance(prog, invariant, case=name)
        warm = suite_service.verify_tolerance(prog, invariant, case=name)
        expected = {
            "ok": direct.ok,
            "implication_ok": direct.implication_ok,
            "s_closure_ok": direct.s_closure.ok,
            "t_closure_ok": direct.t_closure.ok,
            "convergence_ok": direct.convergence.ok,
            "classification": direct.classification,
            "stabilizing": direct.stabilizing,
            "total_states": direct.total_states,
            "span_states": direct.convergence.span_states,
            "bad_states": direct.convergence.bad_states,
        }
        for verdict in (cold, warm):
            assert {f: verdict.record[f] for f in VERDICT_FIELDS} == expected, name
        assert not cold.cached and warm.cached

        s_size = sum(1 for state in states if invariant(state))
        rows.append(
            [
                name,
                len(states),
                s_size,
                direct.s_closure.ok,
                direct.convergence.ok,
                direct.classification,
                direct.stabilizing,
                direct.ok,
                f"{sequential_seconds:.2f}s",
                f"{cold.seconds:.2f}s",
                f"{warm.seconds * 1000:.1f}ms",
            ]
        )
        instances.append(
            {
                "case": name,
                "states": len(states),
                "sequential_seconds": sequential_seconds,
                "service_cold_seconds": cold.seconds,
                "service_warm_seconds": warm.seconds,
                "ok": direct.ok,
            }
        )
    table = render_table(
        ["case", "states", "S-states", "S closed", "converges", "class",
         "stabilizing", "T-tolerant for S", "sequential", "service cold",
         "service warm"],
        rows,
        title="E7: the Section 3 definition, checked per library case "
        "(service differentially verified against the sequential checker)",
    )
    report("e7_tolerance_verification", table)
    bench_timings(
        "e7",
        {
            "instances": instances,
            "metrics": suite_service.report().as_dict(),
            **suite_service.stats(),
        },
    )
    assert all(row[7] for row in rows)
