"""E17 — compositional certification vs full exploration.

The compositional certifier (:mod:`repro.compositional`) discharges the
Theorem 1/2 antecedents over per-edge *projections* of the state space
instead of the product space. The acceptance bar from the certifier PR:

- a 200-node diffusing chain (``4^200`` product states — far beyond what
  either full engine can even represent) must certify, with every
  projection at or below the certifier's limit;
- on every small instance where both methods run, the certified verdict
  must agree bit-for-bit with full exploration (``ok``,
  ``classification``, ``stabilizing``).

Timings land in ``BENCH_verification.json`` under the ``compositional``
suite.

Run standalone as a CI perf smoke (small instances plus the n=200
certification, seconds)::

    PYTHONPATH=src python benchmarks/bench_e17_compositional.py --quick
"""

import time

from repro.analysis import render_table
from repro.compositional import DEFAULT_PROJECTION_LIMIT, certify_compositional
from repro.core.errors import StateSpaceTooLargeError
from repro.core.predicates import TRUE
from repro.protocols.library import CASES
from repro.verification.checker import _check_tolerance

#: The design-capable library cases — the certifier's whole domain.
DESIGN_CASES = (
    "diffusing-chain",
    "diffusing-star",
    "coloring-chain",
    "leader-election-star",
)

#: Differential sizes: small enough for full exploration on every case.
SMALL_SIZES = (2, 3, 4, 5)

#: The scale demonstration: a chain no full engine can even represent.
LARGE_CHAIN = 200


def _differential_sweep(sizes):
    """Certify and fully verify every case x size; assert bit-agreement.

    Returns ``(rows, instances)`` for the report table and the timings
    payload.
    """
    rows = []
    instances = []
    for name in DESIGN_CASES:
        for size in sizes:
            design = CASES[name].build_design(size)
            started = time.perf_counter()
            certificate = certify_compositional(design)
            compositional_seconds = time.perf_counter() - started
            assert certificate.ok, f"{name} n={size}: {certificate.refusal}"
            started = time.perf_counter()
            full = _check_tolerance(
                design.program, design.candidate.invariant, TRUE
            )
            full_seconds = time.perf_counter() - started
            for field in ("ok", "classification", "stabilizing"):
                assert getattr(certificate, field) == getattr(full, field), (
                    f"{name} n={size}: methods disagree on {field}"
                )
            rows.append(
                [
                    f"{name} n={size}",
                    str(full.total_states),
                    str(certificate.max_projection),
                    f"{full_seconds:.3f}s",
                    f"{compositional_seconds:.3f}s",
                ]
            )
            instances.append(
                {
                    "case": f"{name} (n={size})",
                    "total_states": full.total_states,
                    "max_projection": certificate.max_projection,
                    "obligations": len(certificate.obligations),
                    "full_seconds": full_seconds,
                    "compositional_seconds": compositional_seconds,
                }
            )
    return rows, instances


def _certify_large_chain():
    """Certify the n=200 chain; assert full exploration refuses first."""
    design = CASES["diffusing-chain"].build_design(LARGE_CHAIN)
    try:
        _check_tolerance(
            design.program, design.candidate.invariant, TRUE, engine="dict"
        )
    except StateSpaceTooLargeError:
        pass
    else:  # pragma: no cover - would mean the guard rail vanished
        raise AssertionError(
            "full exploration unexpectedly accepted the n=200 chain"
        )
    started = time.perf_counter()
    certificate = certify_compositional(design)
    seconds = time.perf_counter() - started
    assert certificate.ok, certificate.refusal
    assert certificate.max_projection <= DEFAULT_PROJECTION_LIMIT
    return certificate, seconds


def test_e17_compositional(benchmark, report, bench_timings):
    benchmark(
        lambda: certify_compositional(CASES["diffusing-chain"].build_design(8))
    )

    rows, instances = _differential_sweep(SMALL_SIZES)

    certificate, seconds = _certify_large_chain()
    rows.append(
        [
            f"diffusing-chain n={LARGE_CHAIN}",
            f"4^{LARGE_CHAIN}",
            str(certificate.max_projection),
            "refused (too large)",
            f"{seconds:.3f}s",
        ]
    )

    report(
        "e17_compositional",
        render_table(
            ["instance", "total states", "max projection", "full", "compositional"],
            rows,
            title="E17: compositional certification vs full exploration",
        ),
    )
    bench_timings(
        "compositional",
        {
            "projection_limit": DEFAULT_PROJECTION_LIMIT,
            "instances": instances,
            "large_chain": {
                "case": f"diffusing-chain (n={LARGE_CHAIN})",
                "obligations": len(certificate.obligations),
                "max_projection": certificate.max_projection,
                "seconds": seconds,
            },
        },
    )


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e17_compositional.py --quick
# ----------------------------------------------------------------------


def run_quick() -> int:
    """Fast certifier smoke: small differential sweep plus the n=200 chain.

    Returns a process exit code.
    """
    failures = []
    print(
        f"compositional perf smoke: {len(DESIGN_CASES)} cases, "
        f"differential n=3 plus chain n={LARGE_CHAIN}"
    )
    for name in DESIGN_CASES:
        design = CASES[name].build_design(3)
        started = time.perf_counter()
        certificate = certify_compositional(design)
        seconds = time.perf_counter() - started
        if not certificate.ok:
            failures.append(f"{name}: refused: {certificate.refusal}")
            continue
        full = _check_tolerance(
            design.program, design.candidate.invariant, TRUE
        )
        agree = all(
            getattr(certificate, field) == getattr(full, field)
            for field in ("ok", "classification", "stabilizing")
        )
        print(
            f"  {name:<22} obligations={len(certificate.obligations):4} "
            f"projection<={certificate.max_projection:<6} {seconds:6.3f}s  "
            f"{'agree' if agree else 'DISAGREE'}"
        )
        if not agree:
            failures.append(f"{name}: verdict differs from full exploration")
    try:
        certificate, seconds = _certify_large_chain()
        print(
            f"  chain n={LARGE_CHAIN:<15} obligations="
            f"{len(certificate.obligations):4} "
            f"projection<={certificate.max_projection:<6} {seconds:6.3f}s  "
            "certified"
        )
    except AssertionError as error:
        failures.append(f"chain n={LARGE_CHAIN}: {error}")
    if failures:
        import sys

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "compositional perf smoke passed: verdicts agree, "
        f"n={LARGE_CHAIN} certifies"
    )
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast certifier smoke instead of the full benchmark",
    )
    arguments = parser.parse_args()
    if arguments.quick:
        raise SystemExit(run_quick())
    import pytest

    raise SystemExit(pytest.main([__file__, "-q"]))
