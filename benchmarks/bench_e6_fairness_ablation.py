"""E6 — fairness is unnecessary for the paper's programs (Section 8).

Paper claim: "The fairness requirement on program computations is often
unnecessary. In fact, each of the programs derived in this paper is
correct even when the fairness requirement is ignored."

Two complementary checks:
- Part A (exact): exhaustive convergence under ``fairness="none"`` — an
  arbitrary (adversarial, unfair) daemon — versus the paper's weak
  fairness, on small instances of all three paper protocols.
- Part B (empirical, at scale): stabilization under deliberately unfair
  daemons (the greedy one-step adversary and the deterministic
  first-enabled scheduler) compared to a fair random daemon.
"""

from repro.analysis import render_table
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_out_tree_design,
    window_states,
    xyz_invariant,
)
from repro.protocols.token_ring import build_dijkstra_ring
from repro.scheduler import AdversarialScheduler, FirstEnabledScheduler, RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import balanced_tree, chain_tree
from repro.verification import check_convergence, explore

TRIALS = 15


def test_e6a_exact_unfair_convergence(benchmark, report):
    from repro.verification import check_fairness_free

    def diffusing_case():
        design = build_diffusing_design(chain_tree(3))
        states = list(design.program.state_space())
        closure_names = [a.name for a in design.candidate.program.actions]
        return check_fairness_free(
            design.program, closure_names, design.candidate.invariant, states
        )

    benchmark(diffusing_case)

    rows = []
    analysis = diffusing_case()
    rows.append([
        "diffusing (chain-3)",
        analysis.observation.ok,
        analysis.weak_convergence.ok,
        analysis.unfair_convergence.ok,
    ])

    design = build_diffusing_design(balanced_tree(2, 1))
    states = list(design.program.state_space())
    closure_names = [a.name for a in design.candidate.program.actions]
    analysis = check_fairness_free(
        design.program, closure_names, design.candidate.invariant, states
    )
    rows.append([
        "diffusing (star-3)",
        analysis.observation.ok,
        analysis.weak_convergence.ok,
        analysis.unfair_convergence.ok,
    ])

    for size in (3, 4):
        program, spec = build_dijkstra_ring(size, k=size)
        states = list(program.state_space())
        analysis = check_fairness_free(
            program, [a.name for a in program.actions], spec, states
        )
        rows.append([
            f"token ring ({size} nodes, K={size})",
            analysis.observation.ok,
            analysis.weak_convergence.ok,
            analysis.unfair_convergence.ok,
        ])

    for name, build in [("x/y/z out-tree", build_out_tree_design),
                        ("x/y/z ordered", build_ordered_design)]:
        design = build(3)
        ts = explore(design.program, window_states(3))
        weak = check_convergence(design.program, ts.states, xyz_invariant(),
                                 fairness="weak", system=ts).ok
        unfair = check_convergence(design.program, ts.states, xyz_invariant(),
                                   fairness="none", system=ts).ok
        rows.append([name, True, weak, unfair])  # no closure actions: vacuous

    table = render_table(
        ["program", "S8 observation (closure-only finite-or-S)",
         "converges (weak fairness)", "converges (no fairness)"],
        rows,
        title="E6a: the Section 8 remark, decided exactly",
    )
    report("e6a_fairness_exact", table)
    assert all(row[1] and row[2] and row[3] for row in rows)


def test_e6b_unfair_daemons_at_scale(benchmark, report):
    tree = balanced_tree(2, 3)
    design = build_diffusing_design(tree)
    invariant = diffusing_invariant(tree)

    def fair_trials():
        return stabilization_trials(
            design.program, invariant, lambda s: RandomScheduler(s),
            trials=3, max_steps=50_000, base_seed=8,
        )

    benchmark(fair_trials)

    daemons = [
        ("random (fair)", lambda s: RandomScheduler(s)),
        ("first-enabled (unfair)", lambda s: FirstEnabledScheduler()),
        ("adversarial (unfair)", lambda s: AdversarialScheduler(invariant, seed=s)),
    ]
    rows = []
    for name, factory in daemons:
        stats = stabilization_trials(
            design.program, invariant, factory,
            trials=TRIALS, max_steps=100_000, base_seed=8,
        )
        rows.append([
            name,
            f"{stats.stabilization_rate:.0%}",
            round(stats.steps.mean, 1),
            round(stats.steps.maximum, 0),
        ])

    ring_program, ring_spec = build_dijkstra_ring(12, k=13)
    for name, factory in [
        ("ring: random (fair)", lambda s: RandomScheduler(s)),
        ("ring: first-enabled (unfair)", lambda s: FirstEnabledScheduler()),
        ("ring: adversarial (unfair)", lambda s: AdversarialScheduler(ring_spec, seed=s)),
    ]:
        stats = stabilization_trials(
            ring_program, ring_spec, factory,
            trials=TRIALS, max_steps=100_000, base_seed=9,
        )
        rows.append([
            name,
            f"{stats.stabilization_rate:.0%}",
            round(stats.steps.mean, 1),
            round(stats.steps.maximum, 0),
        ])

    table = render_table(
        ["daemon", "stabilized", "mean steps", "max steps"],
        rows,
        title=(
            f"E6b: stabilization under unfair daemons ({TRIALS} corrupted "
            "starts; diffusing on 15 nodes, ring on 12 nodes)"
        ),
    )
    report("e6b_fairness_at_scale", table)
    assert all(row[1] == "100%" for row in rows)
