"""E20 — kernel v3 memory model: narrow dtypes and streaming sweeps.

Kernel v3 (:mod:`repro.kernel`) attacks the packed engine's peak memory
on three fronts: state codes narrow to int16/int32 when the space fits
(:attr:`StateCodec.code_dtype`), sharded sweep fragments travel through
POSIX shared memory instead of pickles, and a ``memory_budget=`` turns
the full-space sweep into the streaming count-only path that visits one
shard at a time (peak ``O(shard)`` instead of ``O(edges)``).

The acceptance bar from the kernel v3 PR: on the E16 shapes *and* a
10^7-state ring, v3 must show at least ``MIN_MEMORY_REDUCTION``x lower
peak memory than the kernel v2 baseline (int64 codes, materialized CSR)
at no more than ``MAX_WALL_RATIO``x the wall time — with bit-identical
:class:`ToleranceReport` verdicts across dtype x streaming x shards,
including shared memory force-disabled.

The 16384-state shapes score the kernel's own accounting
(``kernel.mem.peak_bytes``: the interpreter dominates whole-process RSS
at this size); the ring scores real ``ru_maxrss`` in subprocess-isolated
children. Timings land in ``BENCH_verification.json`` under the
``kernel_v3_memory`` and ``kernel_v3_memory_ring`` suites.

The 10^7-state ring run takes minutes, so it is gated behind a flag::

    PYTHONPATH=src python benchmarks/bench_e20_memory.py --ring
"""

import json
import os
import subprocess
import sys
import time

from repro.analysis import render_table
from repro.core.predicates import TRUE
from repro.kernel import sweeps
from repro.observability.metrics import MetricsRegistry
from repro.protocols.diffusing import build_diffusing_design
from repro.topology import balanced_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance

#: Peak-memory reduction kernel v3 promises over the v2 baseline.
MIN_MEMORY_REDUCTION = 2.0

#: The wall-time ceiling the memory savings may cost.
MAX_WALL_RATIO = 1.1

#: The E16 acceptance shapes: 14 variables, 16384 states each.
SHAPES = (
    ("diffusing star-7", lambda: star_tree(7)),
    ("diffusing balanced-2x2", lambda: balanced_tree(2, 2)),
)

#: Cold trials per configuration; configurations run interleaved within
#: each trial and the best paired wall ratio is scored, so slow drift
#: (cache warmth, scheduler) cancels out of the ratio.
TRIALS = 5

#: Shard count for the streaming configuration on the small shapes —
#: enough to shrink the per-shard transient below the resident masks
#: (the auto heuristic keeps spaces this small on a single shard).
STREAM_SHARDS = 4

#: The measured configurations. ``dtype`` is forced through
#: :data:`sweeps.FORCE_CODE_DTYPE` ("int64" reproduces the kernel v2
#: layout: int64 codes *and* int64 CSR offsets); ``memory_budget=1``
#: makes any materialized estimate exceed the budget, forcing the
#: streaming path.
CONFIGS = (
    ("kernel v2 (int64)", {"dtype": "int64"}),
    ("v3 narrow", {}),
    ("v3 streaming", {"memory_budget": 1, "shards": STREAM_SHARDS}),
)


def _peak_rss_mb() -> int:
    """This process's peak RSS in MB (``ru_maxrss`` high-water mark)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024


def _measure(
    program,
    invariant,
    *,
    dtype=None,
    memory_budget=None,
    shards=None,
    max_states=None,
):
    """One cold packed verification under a forced code dtype.

    Returns ``(report, seconds, peak_bytes, streamed)`` where
    ``peak_bytes`` is the kernel's own ``kernel.mem.peak_bytes`` gauge
    and ``streamed`` tells whether the count-only path produced the
    verdict.
    """
    previous = sweeps.FORCE_CODE_DTYPE
    metrics = MetricsRegistry()
    try:
        sweeps.FORCE_CODE_DTYPE = dtype
        started = time.perf_counter()
        report = check_tolerance(
            program,
            invariant,
            TRUE,
            engine="packed",
            memory_budget=memory_budget,
            shards=shards,
            max_states=max_states,
            metrics=metrics,
        )
        seconds = time.perf_counter() - started
    finally:
        sweeps.FORCE_CODE_DTYPE = previous
    counters = metrics.report().counters
    return (
        report,
        seconds,
        counters.get("kernel.mem.peak_bytes", 0),
        bool(counters.get("kernel.mem.streaming", 0)),
    )


def test_e20_memory_model(report, bench_timings):
    """Tracked peak bytes: v2 baseline vs narrow vs streaming, per shape."""
    if not sweeps.HAVE_NUMPY:
        import pytest

        pytest.skip("numpy is not installed")

    rows = []
    instances = []
    for shape_name, make_tree in SHAPES:
        trials = {name: [] for name, _ in CONFIGS}
        for _ in range(TRIALS):
            # Interleave: one cold run of every configuration per trial,
            # so each trial yields directly comparable wall times.
            for config_name, options in CONFIGS:
                design = build_diffusing_design(make_tree())
                trials[config_name].append(
                    _measure(
                        design.program, design.candidate.invariant, **options
                    )
                )
        results = {}
        for config_name, _ in CONFIGS:
            runs = trials[config_name]
            reports = [t[0] for t in runs]
            assert all(r == reports[0] for r in reports)
            peaks = {t[2] for t in runs}
            assert len(peaks) == 1, f"{config_name}: nondeterministic peak"
            results[config_name] = {
                "report": reports[0],
                "seconds": [t[1] for t in runs],
                "best": min(t[1] for t in runs),
                "peak_bytes": peaks.pop(),
                "streamed": runs[0][3],
            }
        baseline = results["kernel v2 (int64)"]
        assert not baseline["streamed"]
        assert results["v3 streaming"]["streamed"], (
            f"{shape_name}: memory_budget=1 did not engage the streaming path"
        )
        for config_name, _ in CONFIGS:
            outcome = results[config_name]
            assert outcome["report"] == baseline["report"], (
                f"{shape_name}/{config_name}: verdict differs from baseline"
            )
            reduction = baseline["peak_bytes"] / outcome["peak_bytes"]
            # Best paired ratio across interleaved trials — drift-immune
            # the same way E16 scores its best paired speedup.
            wall_ratio = min(
                mine / theirs
                for mine, theirs in zip(
                    outcome["seconds"], baseline["seconds"]
                )
            )
            rows.append(
                [
                    f"{shape_name} / {config_name}",
                    f"{outcome['peak_bytes']:,} B",
                    f"{reduction:.2f}x",
                    f"{outcome['best']:.3f}s",
                    f"{wall_ratio:.2f}x",
                ]
            )
            if config_name != "kernel v2 (int64)":
                assert reduction >= MIN_MEMORY_REDUCTION, (
                    f"{shape_name}/{config_name}: peak reduction "
                    f"{reduction:.2f}x below {MIN_MEMORY_REDUCTION}x"
                )
                assert wall_ratio <= MAX_WALL_RATIO, (
                    f"{shape_name}/{config_name}: wall ratio "
                    f"{wall_ratio:.2f}x above {MAX_WALL_RATIO}x"
                )
        instances.append(
            {
                "case": shape_name,
                "v2_peak_bytes": baseline["peak_bytes"],
                "narrow_peak_bytes": results["v3 narrow"]["peak_bytes"],
                "streaming_peak_bytes": results["v3 streaming"]["peak_bytes"],
                "narrow_reduction": (
                    baseline["peak_bytes"]
                    / results["v3 narrow"]["peak_bytes"]
                ),
                "streaming_reduction": (
                    baseline["peak_bytes"]
                    / results["v3 streaming"]["peak_bytes"]
                ),
                "v2_seconds": baseline["seconds"],
                "narrow_seconds": results["v3 narrow"]["seconds"],
                "streaming_seconds": results["v3 streaming"]["seconds"],
                "streaming_shards": STREAM_SHARDS,
                "peak_rss_mb": _peak_rss_mb(),
            }
        )

    report(
        "e20_memory",
        render_table(
            ["configuration", "tracked peak", "reduction", "wall (best)",
             "ratio"],
            rows,
            title="E20: kernel v3 memory model vs the v2 baseline "
            "(kernel.mem.peak_bytes)",
        ),
    )
    bench_timings(
        "kernel_v3_memory",
        {
            "min_reduction_required": MIN_MEMORY_REDUCTION,
            "max_wall_ratio": MAX_WALL_RATIO,
            "trials": TRIALS,
            "instances": instances,
        },
    )


def test_e20_bit_identical_grid():
    """Verdicts across dtype x streaming x shards, shm on and off."""
    if not sweeps.HAVE_NUMPY:
        import pytest

        pytest.skip("numpy is not installed")

    design = build_diffusing_design(star_tree(7))
    baseline = check_tolerance(
        design.program, design.candidate.invariant, TRUE, engine="packed"
    )
    had_no_shm = os.environ.get("REPRO_KERNEL_NO_SHM")
    try:
        for no_shm in (False, True):
            if no_shm:
                os.environ["REPRO_KERNEL_NO_SHM"] = "1"
            for dtype in (None, "int64"):
                for memory_budget in (None, 1):
                    for shards in (None, 3):
                        design = build_diffusing_design(star_tree(7))
                        outcome, _, _, _ = _measure(
                            design.program,
                            design.candidate.invariant,
                            dtype=dtype,
                            memory_budget=memory_budget,
                            shards=shards,
                        )
                        assert outcome == baseline, (
                            f"verdict differs at dtype={dtype} "
                            f"budget={memory_budget} shards={shards} "
                            f"no_shm={no_shm}"
                        )
    finally:
        if had_no_shm is None:
            os.environ.pop("REPRO_KERNEL_NO_SHM", None)
        else:
            os.environ["REPRO_KERNEL_NO_SHM"] = had_no_shm


# ----------------------------------------------------------------------
# 10^7-state ring: python benchmarks/bench_e20_memory.py --ring
# ----------------------------------------------------------------------

#: The ring instance: dijkstra-ring(7, K=10), exactly 10^7 states.
RING_NODES = 7
RING_K = 10

#: Peak-bytes budget for the v3 child — far below the materialized
#: estimate at 10^7 states, so the streaming path must engage.
RING_BUDGET = 128 << 20

#: Verdict fields the two children must agree on exactly.
RING_VERDICT_FIELDS = (
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
)


def ring_child(config: str) -> int:
    """Verify the ring in this (fresh) process and print a JSON line.

    ``config`` is ``v2`` (int64 codes, materialized CSR — the caller
    additionally disables shared memory to reproduce the pre-v3 kernel)
    or ``v3`` (narrow dtypes, streaming under :data:`RING_BUDGET`).
    Isolation matters: ``ru_maxrss`` is a whole-process high-water mark,
    so each configuration must be the only verification its process
    ever ran.
    """
    from repro.protocols.token_ring import build_dijkstra_ring

    program, invariant = build_dijkstra_ring(RING_NODES, RING_K)
    options = (
        {"dtype": "int64"}
        if config == "v2"
        else {"memory_budget": RING_BUDGET}
    )
    verdict, seconds, peak_bytes, streamed = _measure(
        program, invariant, max_states=10**9, **options
    )
    print(
        json.dumps(
            {
                "config": config,
                "seconds": seconds,
                "peak_rss_mb": _peak_rss_mb(),
                "tracked_peak_bytes": peak_bytes,
                "streamed": streamed,
                "verdict": verdict.to_json(),
            }
        )
    )
    return 0


def run_ring() -> int:
    """Subprocess-isolated peak-RSS comparison on the 10^7-state ring."""
    size = RING_K**RING_NODES
    print(f"kernel v3 memory demo: dijkstra-ring({RING_NODES}, K={RING_K})")
    print(f"  state space: {size:,} states")
    children = {}
    for config in ("v2", "v3"):
        env = os.environ.copy()
        if config == "v2":
            # The pre-v3 kernel had no shared-memory transfer either.
            env["REPRO_KERNEL_NO_SHM"] = "1"
        print(f"  running {config} child ...", flush=True)
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--ring-child", config],
            capture_output=True,
            text=True,
            env=env,
        )
        if proc.returncode != 0:
            print(f"FAIL: {config} child exited {proc.returncode}",
                  file=sys.stderr)
            sys.stderr.write(proc.stderr)
            return 1
        children[config] = json.loads(proc.stdout.strip().splitlines()[-1])
        child = children[config]
        print(
            f"    {config}: {child['seconds']:.1f}s, "
            f"peak RSS {child['peak_rss_mb']} MB, "
            f"streamed={child['streamed']}"
        )

    v2, v3 = children["v2"], children["v3"]
    reduction = v2["peak_rss_mb"] / max(1, v3["peak_rss_mb"])
    wall_ratio = v3["seconds"] / v2["seconds"]
    print(f"  peak-RSS reduction: {reduction:.2f}x  wall ratio: "
          f"{wall_ratio:.2f}x")

    failures = []
    if v2["verdict"] != v3["verdict"]:
        failures.append("v3 verdict differs from the v2 baseline")
    for field in RING_VERDICT_FIELDS:
        if field not in v2["verdict"]:
            failures.append(f"verdict field missing: {field}")
    if v2["verdict"].get("total_states") != size or not v2["verdict"].get("ok"):
        failures.append("unexpected baseline verdict")
    if v2["streamed"]:
        failures.append("v2 baseline unexpectedly streamed")
    if not v3["streamed"]:
        failures.append(
            f"v3 child did not stream under memory_budget={RING_BUDGET}"
        )
    if reduction < MIN_MEMORY_REDUCTION:
        failures.append(
            f"peak-RSS reduction {reduction:.2f}x below "
            f"{MIN_MEMORY_REDUCTION}x"
        )
    if wall_ratio > MAX_WALL_RATIO:
        failures.append(
            f"wall ratio {wall_ratio:.2f}x above {MAX_WALL_RATIO}x"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    from conftest import record_verification_timings

    record_verification_timings(
        "kernel_v3_memory_ring",
        {
            "case": f"dijkstra-ring({RING_NODES}, K={RING_K})",
            "states": size,
            "memory_budget": RING_BUDGET,
            "v2_seconds": v2["seconds"],
            "v3_seconds": v3["seconds"],
            "v2_peak_rss_mb": v2["peak_rss_mb"],
            "v3_peak_rss_mb": v3["peak_rss_mb"],
            "peak_rss_mb": max(v2["peak_rss_mb"], v3["peak_rss_mb"]),
            "reduction": reduction,
            "wall_ratio": wall_ratio,
            "ok": v3["verdict"]["ok"],
            "stabilizing": v3["verdict"]["stabilizing"],
        },
    )
    print("kernel v3 memory demo passed: identical verdicts, "
          f"{reduction:.2f}x lower peak RSS")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ring",
        action="store_true",
        help="run the 10^7-state subprocess-isolated peak-RSS comparison",
    )
    parser.add_argument(
        "--ring-child",
        metavar="CONFIG",
        choices=("v2", "v3"),
        help=argparse.SUPPRESS,
    )
    arguments = parser.parse_args()
    if arguments.ring_child:
        raise SystemExit(ring_child(arguments.ring_child))
    if arguments.ring:
        raise SystemExit(run_ring())
    import pytest

    raise SystemExit(pytest.main([__file__, "-q"]))
