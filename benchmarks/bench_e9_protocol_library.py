"""E9 — the method generalizes: certificates and stabilization across the
protocol library.

The paper presents a *method*, not just three programs. This experiment
applies the full pipeline — design, certificate (or stair / model-check),
simulation at scale — to every protocol in the library, including the
extensions the paper never saw, and reports which validation route
certifies each one.

All exhaustive checks run through the cached verification service; a
final section times the whole library verification suite sequentially,
then through the process pool at ``workers=4`` (cold shared disk cache),
then again cache-warm, asserting bit-identical verdicts throughout and
recording the wall-clocks in ``BENCH_verification.json``.
"""

import shutil
import time
from pathlib import Path

from repro.analysis import render_table
from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
)
from repro.protocols.four_state_ring import (
    build_four_state_line,
    four_state_invariant,
)
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    graph_coloring_invariant,
)
from repro.protocols.independent_set import build_mis_program, mis_invariant
from repro.protocols.library import library_tasks
from repro.protocols.matching import build_matching_program, matching_invariant
from repro.protocols.mp_token_ring import build_mp_token_ring
from repro.protocols.reset import build_reset_program, reset_target
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    spanning_tree_invariant,
    spanning_tree_stair,
)
from repro.protocols.token_ring import (
    build_token_ring_design,
    build_dijkstra_ring,
    window_states as ring_window,
)
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import (
    chain_tree,
    cycle_graph,
    random_connected_graph,
    random_tree,
)
from repro.verification import (
    VerificationService,
    batch_report,
    check_stair,
    run_batch,
)

TRIALS = 15

PARALLEL_WORKERS = 4

#: Fields compared across the sequential / parallel-cold / parallel-warm
#: runs of the library suite (timing and cache fields excluded).
VERDICT_FIELDS = (
    "case",
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
)


def _verdicts(records):
    return [{field: record[field] for field in VERDICT_FIELDS} for record in records]


def test_e9_protocol_library(benchmark, report, bench_timings):
    benchmark(
        lambda: build_coloring_design(chain_tree(4), k=2).validate(
            list(build_coloring_design(chain_tree(4), k=2).program.state_space())
        )
    )

    service = VerificationService()
    rows = []

    # diffusing — Theorem 1
    design = build_diffusing_design(chain_tree(4))
    cert = service.validate_design(
        design, design.program.state_space(), case="diffusing"
    )
    tree = random_tree(50, seed=3)
    big = build_diffusing_design(tree)
    stats = stabilization_trials(
        big.program, diffusing_invariant(tree), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=11,
    )
    rows.append(["diffusing", "Theorem 1", cert["ok"], 50,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # token ring — Theorem 3 (+ Dijkstra instance at scale)
    design = build_token_ring_design(4)
    cert = service.validate_design(
        design, ring_window(4, 0, 3), case="token ring", states_key="window[0,3]"
    )
    program, spec = build_dijkstra_ring(30, k=31)
    stats = stabilization_trials(
        program, spec, lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=12,
    )
    rows.append(["token ring", "Theorem 3", cert["ok"], 30,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # coloring — Theorem 1
    design = build_coloring_design(chain_tree(4), k=2)
    cert = service.validate_design(
        design, design.program.state_space(), case="tree coloring"
    )
    tree = random_tree(60, seed=5)
    big = build_coloring_design(tree, k=3)
    stats = stabilization_trials(
        big.program, coloring_invariant(tree), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=13,
    )
    rows.append(["tree coloring", "Theorem 1", cert["ok"], 60,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # leader election — Theorem 2
    design = build_leader_election_design(chain_tree(4))
    cert = service.validate_design(
        design, design.program.state_space(), case="leader election"
    )
    tree = random_tree(60, seed=6)
    big = build_leader_election_design(tree)
    stats = stabilization_trials(
        big.program, election_invariant(tree), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=14,
    )
    rows.append(["leader election", "Theorem 2", cert["ok"], 60,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # spanning tree — convergence stair
    graph = random_connected_graph(5, 2, seed=7)
    program = build_spanning_tree_program(graph, 0)
    stair = check_stair(program, spanning_tree_stair(graph, 0),
                        program.state_space())
    big_graph = random_connected_graph(40, 20, seed=8)
    big_program = build_spanning_tree_program(big_graph, 0)
    stats = stabilization_trials(
        big_program, spanning_tree_invariant(big_graph, 0),
        lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=15,
    )
    rows.append(["BFS spanning tree", "convergence stair", stair.ok, 40,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # matching — model checking only
    graph = random_connected_graph(5, 2, seed=9)
    program = build_matching_program(graph)
    check = service.verify_tolerance(
        program, matching_invariant(graph), case="maximal matching"
    )
    big_graph = random_connected_graph(30, 12, seed=10)
    big_program = build_matching_program(big_graph)
    stats = stabilization_trials(
        big_program, matching_invariant(big_graph), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=16,
    )
    rows.append(["maximal matching", "model checking", check.ok, 30,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # maximal independent set — model checking only
    graph = cycle_graph(5)
    program = build_mis_program(graph)
    check = service.verify_tolerance(
        program, mis_invariant(graph), case="maximal independent set"
    )
    big_graph = random_connected_graph(40, 25, seed=11)
    big_program = build_mis_program(big_graph)
    stats = stabilization_trials(
        big_program, mis_invariant(big_graph), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=17,
    )
    rows.append(["maximal independent set", "model checking", check.ok, 40,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # greedy graph coloring — model checking (central daemon)
    graph = cycle_graph(4)
    program = build_graph_coloring_program(graph)
    check = service.verify_tolerance(
        program, graph_coloring_invariant(graph), case="greedy graph coloring"
    )
    big_graph = random_connected_graph(40, 40, seed=12)
    big_program = build_graph_coloring_program(big_graph)
    stats = stabilization_trials(
        big_program, graph_coloring_invariant(big_graph),
        lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=18,
    )
    rows.append(["greedy graph coloring", "model checking", check.ok, 40,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # message-passing token ring — model checking
    program, spec = build_mp_token_ring(3, 3)
    check = service.verify_tolerance(program, spec, case="mp token ring")
    big_program, big_spec = build_mp_token_ring(20, 22)
    stats = stabilization_trials(
        big_program, big_spec, lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=19,
    )
    rows.append(["mp token ring", "model checking", check.ok, 20,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # four-state line — model checking (reconstructed protocol)
    program = build_four_state_line(5)
    check = service.verify_tolerance(
        program, four_state_invariant(program), case="four-state line"
    )
    big_program = build_four_state_line(20)
    stats = stabilization_trials(
        big_program, four_state_invariant(big_program),
        lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=20,
    )
    rows.append(["four-state line", "model checking", check.ok, 20,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    # distributed reset — model checking of the composition
    tree = chain_tree(3)
    program = build_reset_program(tree, app_values=2)
    check = service.verify_tolerance(
        program, reset_target(tree), case="distributed reset"
    )
    big_tree = random_tree(30, seed=13)
    big_program = build_reset_program(big_tree, app_values=4)
    stats = stabilization_trials(
        big_program, reset_target(big_tree), lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=200_000, base_seed=21,
    )
    rows.append(["distributed reset", "model checking", check.ok, 30,
                 f"{stats.stabilization_rate:.0%}", round(stats.steps.mean, 1)])

    table = render_table(
        ["protocol", "certification route", "certified", "sim size",
         "stabilized", "mean steps"],
        rows,
        title=f"E9: the protocol library ({TRIALS} corrupted starts per protocol)",
    )
    report("e9_protocol_library", table)
    assert all(row[2] for row in rows)
    assert all(row[4] == "100%" for row in rows)

    # ------------------------------------------------------------------
    # Library verification suite: sequential vs parallel vs cache-warm
    # ------------------------------------------------------------------
    tasks = library_tasks()
    cache_dir = Path(__file__).parent / "results" / ".vcache_e9"
    shutil.rmtree(cache_dir, ignore_errors=True)

    started = time.perf_counter()
    sequential = run_batch(tasks, workers=1)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_cold = run_batch(
        tasks, workers=PARALLEL_WORKERS, cache_dir=str(cache_dir)
    )
    parallel_cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_warm = run_batch(
        tasks, workers=PARALLEL_WORKERS, cache_dir=str(cache_dir)
    )
    parallel_warm_seconds = time.perf_counter() - started

    assert _verdicts(sequential) == _verdicts(parallel_cold) == _verdicts(
        parallel_warm
    )
    assert all(record["cached"] for record in parallel_warm)
    assert parallel_warm_seconds < parallel_cold_seconds

    timing_lines = render_table(
        ["run", "workers", "wall-clock", "vs sequential"],
        [
            ["sequential", 1, f"{sequential_seconds:.2f}s", "1.00x"],
            ["parallel cold", PARALLEL_WORKERS, f"{parallel_cold_seconds:.2f}s",
             f"{sequential_seconds / parallel_cold_seconds:.2f}x"],
            ["parallel warm", PARALLEL_WORKERS, f"{parallel_warm_seconds:.2f}s",
             f"{sequential_seconds / parallel_warm_seconds:.2f}x"],
        ],
        title="E9 addendum: library verification suite through the service",
    )
    report("e9_verification_timings", timing_lines)
    cold_metrics = batch_report(
        parallel_cold,
        wall_clock_seconds=parallel_cold_seconds,
        workers=PARALLEL_WORKERS,
    )
    bench_timings(
        "e9",
        {
            "workers": PARALLEL_WORKERS,
            "sequential_seconds": sequential_seconds,
            "parallel_cold_seconds": parallel_cold_seconds,
            "parallel_warm_seconds": parallel_warm_seconds,
            "metrics": cold_metrics.as_dict(),
            "instances": [
                {
                    "case": cold["case"],
                    "sequential_seconds": seq["call_seconds"],
                    "parallel_cold_seconds": cold["call_seconds"],
                    "parallel_warm_seconds": warm["call_seconds"],
                    "ok": cold["ok"],
                }
                for seq, cold, warm in zip(
                    sequential, parallel_cold, parallel_warm
                )
            ],
        },
    )
