"""E18 — the verification daemon under a mixed request load.

The daemon PR's acceptance bar: replay at least 500 mixed
``/verify`` + ``/lint`` requests against a **live** ``repro serve``
daemon (real sockets, concurrent keep-alive clients), and record
throughput, p50/p99 latency and the cache hit-rate in
``BENCH_verification.json`` under the ``service`` suite. Dedup is
verified separately: a burst of identical concurrent requests on a cold
daemon must cause exactly one verification.

The load is deterministic — a fixed roster of library instances cycled
round-robin across client threads — so the hit-rate is a property of
the daemon (first touch of each distinct instance misses, every later
touch hits some layer), not of a random seed.

Run standalone as a CI smoke (seconds, asserts a nonzero hit-rate)::

    PYTHONPATH=src python benchmarks/bench_e18_service.py --quick
"""

import http.client
import json
import tempfile
import threading
import time

from repro.analysis import render_table
from repro.verification.server import DaemonThread

#: The deterministic request roster: distinct instances cycled by every
#: client thread. 12 distinct verify targets + 4 lint targets, so a
#: 1000-request replay sees ~16 misses and ~98% cache hits.
VERIFY_BODIES = [
    {"case": "dijkstra-ring", "size": 3},
    {"case": "dijkstra-ring", "size": 4},
    {"case": "mis-cycle", "size": 4},
    {"case": "mis-cycle", "size": 5},
    {"case": "matching-cycle", "size": 3},
    {"case": "matching-cycle", "size": 4},
    {"case": "coloring-chain", "size": 3},
    {"case": "diffusing-chain", "size": 3},
    {"case": "diffusing-star", "size": 3},
    {"case": "leader-election-star", "size": 3},
    {"case": "four-state-line", "size": 4},
    {"case": "graph-coloring-cycle", "size": 4},
]
LINT_BODIES = [
    {"case": "coloring-chain"},
    {"case": "dijkstra-ring"},
    {"case": "diffusing-chain"},
    {"case": "mis-cycle"},
]

#: One request in four is a lint; the rest verify.
def _request_plan(total):
    plan = []
    for index in range(total):
        if index % 4 == 3:
            plan.append(("/lint", LINT_BODIES[index % len(LINT_BODIES)]))
        else:
            plan.append(("/verify", VERIFY_BODIES[index % len(VERIFY_BODIES)]))
    return plan


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _replay(handle, total, clients):
    """Fire ``total`` planned requests from ``clients`` keep-alive threads.

    Returns ``(latencies_sorted, wall_seconds, failures)``.
    """
    plan = _request_plan(total)
    latencies = []
    failures = []
    lock = threading.Lock()
    cursor = iter(range(total))

    def worker():
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=120)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                path, body = plan[index]
                started = time.perf_counter()
                conn.request(
                    "POST", path, json.dumps(body),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if response.status != 200 or not payload.get("ok", False):
                        failures.append((path, body, response.status))
        finally:
            conn.close()

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return sorted(latencies), wall, failures


def _verify_dedup(burst=16):
    """Cold daemon + ``burst`` identical concurrent requests = 1 computation."""
    handle = DaemonThread(workers=1, batch_window=0.25).start()
    try:
        results = []

        def fire():
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=120
            )
            try:
                conn.request(
                    "POST", "/verify",
                    json.dumps({"case": "mis-cycle", "size": 5}),
                    {"Content-Type": "application/json"},
                )
                results.append(json.loads(conn.getresponse().read()))
            finally:
                conn.close()

        threads = [threading.Thread(target=fire) for _ in range(burst)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        computed = handle.daemon.requests["computed"]
        assert computed == 1, (
            f"{burst} identical concurrent requests caused {computed} "
            "verifications; in-flight dedup is broken"
        )
        assert all(record["ok"] for record in results)
        return {
            "burst": burst,
            "computed": computed,
            "deduped": handle.daemon.requests["deduped"],
        }
    finally:
        handle.stop()


def _run_load(total, clients, workers):
    """One full load experiment against a fresh store-backed daemon."""
    with tempfile.TemporaryDirectory() as cache_dir:
        handle = DaemonThread(
            workers=workers, cache_dir=cache_dir, batch_window=0.01
        ).start()
        try:
            latencies, wall, failures = _replay(handle, total, clients)
            assert not failures, f"failed requests: {failures[:5]}"
            stats = handle.daemon.stats()
        finally:
            handle.stop()
    hit_rate = stats["cache_hit_rate"]
    assert hit_rate > 0, "replay of a cycled roster must produce cache hits"
    return {
        "requests": total,
        "clients": clients,
        "workers": workers,
        "throughput_rps": total / wall,
        "wall_seconds": wall,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "max_seconds": latencies[-1],
        "hit_rate": hit_rate,
        "service": {
            key: stats["service"][key]
            for key in ("hits", "hits_memory", "hits_disk", "misses")
        },
        "store": {
            key: stats["store"][key]
            for key in ("entries", "shards", "hits", "misses", "writes")
        },
        "requests_by_kind": {
            key: stats["requests"][key]
            for key in ("verify", "lint", "deduped", "computed", "batches")
        },
    }


def test_e18_service_load(report, bench_timings):
    dedup = _verify_dedup()
    run = _run_load(total=1000, clients=8, workers=2)

    rows = [
        ["requests replayed", str(run["requests"])],
        ["client threads", str(run["clients"])],
        ["pool workers", str(run["workers"])],
        ["throughput", f"{run['throughput_rps']:.0f} req/s"],
        ["p50 latency", f"{run['p50_seconds'] * 1000:.2f} ms"],
        ["p99 latency", f"{run['p99_seconds'] * 1000:.2f} ms"],
        ["cache hit-rate", f"{run['hit_rate']:.3f}"],
        ["distinct verifications", str(run["requests_by_kind"]["computed"])],
        [
            "dedup burst",
            f"{dedup['burst']} identical -> {dedup['computed']} computation",
        ],
    ]
    report(
        "e18_service",
        render_table(
            ["metric", "value"],
            rows,
            title="E18: verification daemon under mixed load",
        ),
    )
    bench_timings("service", {"load": run, "dedup": dedup})


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e18_service.py --quick
# ----------------------------------------------------------------------


def run_quick() -> int:
    """Fast daemon smoke: dedup burst plus a small replay.

    Returns a process exit code; prints the headline numbers.
    """
    print("service perf smoke: dedup burst + 120-request replay")
    try:
        dedup = _verify_dedup(burst=8)
        print(
            f"  dedup: {dedup['burst']} identical concurrent -> "
            f"{dedup['computed']} computation ({dedup['deduped']} coalesced)"
        )
        run = _run_load(total=120, clients=4, workers=1)
    except AssertionError as error:
        print(f"  FAILED: {error}")
        return 1
    print(
        f"  replay: {run['requests']} requests, "
        f"{run['throughput_rps']:.0f} req/s, "
        f"p50 {run['p50_seconds'] * 1000:.1f} ms, "
        f"p99 {run['p99_seconds'] * 1000:.1f} ms, "
        f"hit-rate {run['hit_rate']:.3f}"
    )
    if run["hit_rate"] <= 0:
        print("  FAILED: zero cache hit-rate")
        return 1
    print("service perf smoke: OK")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the seconds-scale CI smoke instead of the full load",
    )
    arguments = parser.parse_args()
    if arguments.quick:
        sys.exit(run_quick())
    from conftest import record_verification_timings

    dedup_result = _verify_dedup()
    load_result = _run_load(total=1000, clients=8, workers=2)
    record_verification_timings(
        "service", {"load": load_result, "dedup": dedup_result}
    )
    print(json.dumps({"load": load_result, "dedup": dedup_result}, indent=2))
