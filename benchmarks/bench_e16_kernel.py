"""E16 — packed exploration kernel vs the dict engine.

The packed kernel (:mod:`repro.kernel`) replaces dict-backed ``State``
objects with mixed-radix integer codes, compiles guards and statements
into closures over flat value lists, and memoizes each table-eligible
action's successor over its read-support projection. The acceptance bar
from the kernel PR: a **cold** full verification (kernel compilation
included) of the diffusing protocol must be at least ``MIN_SPEEDUP``x
faster than the dict engine on both the star-7 and balanced-2x2 tree
shapes — and produce a bit-identical :class:`ToleranceReport` on every
case of the protocol library.

Kernel v2 adds the vectorized frontier sweeps
(:mod:`repro.kernel.sweeps`): the same shapes must verify at least
``MIN_VECTOR_SPEEDUP``x faster again than the scalar packed sweep, and
sharded runs (``shards=N``) must be bit-identical to unsharded ones.

Timings land in ``BENCH_verification.json`` under the ``kernel`` and
``kernel_v2`` suites.

Run standalone as a CI perf smoke (small instances, seconds)::

    PYTHONPATH=src python benchmarks/bench_e16_kernel.py --quick --shards 4

The 10^8-state demonstration (dijkstra-ring of 8 nodes with K = 10,
exactly 100_000_000 states — far above what the scalar sweeps can cover
in reasonable time) is gated behind an explicit flag because it runs
for minutes and peaks at tens of GB of RSS::

    PYTHONPATH=src python benchmarks/bench_e16_kernel.py --demo-1e8
"""

import time

from repro.analysis import render_table
from repro.core.predicates import TRUE
from repro.kernel import sweeps
from repro.protocols.diffusing import build_diffusing_design
from repro.protocols.library import build_case, case_names
from repro.topology import balanced_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance

#: The cold-verification speedup the kernel PR promises per shape.
MIN_SPEEDUP = 5.0

#: The additional speedup of the vectorized sweep over the scalar packed
#: sweep (kernel v2's acceptance bar), cold, on the same shapes.
MIN_VECTOR_SPEEDUP = 5.0

#: The acceptance shapes: 14 variables, 16384 states each.
SHAPES = (
    ("diffusing star-7", lambda: star_tree(7)),
    ("diffusing balanced-2x2", lambda: balanced_tree(2, 2)),
)

#: Cold trials per shape; the best ratio is scored (both runs are cold
#: every trial, so noise can only understate the speedup).
TRIALS = 3


def _peak_rss_mb() -> int:
    """The process's peak RSS in MB (``ru_maxrss`` high-water mark).

    A whole-process high-water figure: per-entry values are therefore
    monotone within one run and record the worst case *observed by* that
    entry, not its isolated footprint (E20 measures isolated footprints
    in subprocesses).
    """
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024


def _cold_pair(program, invariant):
    """Back-to-back cold dict and packed verifications of one instance.

    A fresh program object is built per trial, so the packed time
    includes kernel compilation (codec, RW probes, guard compilation) —
    this is the cold end-to-end cost a first-time caller pays.
    """
    started = time.perf_counter()
    dict_report = check_tolerance(
        program, invariant, TRUE, list(program.state_space()), engine="dict"
    )
    dict_seconds = time.perf_counter() - started
    started = time.perf_counter()
    packed_report = check_tolerance(program, invariant, TRUE, engine="packed")
    packed_seconds = time.perf_counter() - started
    assert packed_report == dict_report, "engines disagree"
    return dict_seconds, packed_seconds


def _library_verdicts_identical(names):
    """Assert packed == dict on every named library case; return rows."""
    rows = []
    for name in names:
        program, invariant = build_case(name)
        dict_report = check_tolerance(
            program, invariant, TRUE, list(program.state_space()), engine="dict"
        )
        packed_report = check_tolerance(program, invariant, TRUE, engine="packed")
        assert packed_report == dict_report, f"{name}: engines disagree"
        rows.append((name, packed_report.total_states, packed_report.ok))
    return rows


def test_e16_kernel_speedup(benchmark, report, bench_timings):
    small = build_diffusing_design(star_tree(4))
    benchmark(
        lambda: check_tolerance(
            small.program, small.candidate.invariant, TRUE, engine="packed"
        )
    )

    rows = []
    instances = []
    for shape_name, make_tree in SHAPES:
        trials = []
        for _ in range(TRIALS):
            design = build_diffusing_design(make_tree())
            dict_seconds, packed_seconds = _cold_pair(
                design.program, design.candidate.invariant
            )
            trials.append((dict_seconds, packed_seconds))
        best_dict, best_packed = min(trials), min(t[1] for t in trials)
        speedup = max(d / p for d, p in trials)
        rows.append(
            [
                shape_name,
                f"{best_dict[0]:.3f}s",
                f"{best_packed:.3f}s",
                f"{speedup:.1f}x",
            ]
        )
        instances.append(
            {
                "case": shape_name,
                "dict_seconds": [d for d, _ in trials],
                "packed_seconds": [p for _, p in trials],
                "speedup": speedup,
                "peak_rss_mb": _peak_rss_mb(),
            }
        )
        assert speedup >= MIN_SPEEDUP, (
            f"{shape_name}: packed engine should be at least "
            f"{MIN_SPEEDUP:.0f}x faster cold, got {speedup:.1f}x"
        )

    library_rows = _library_verdicts_identical(case_names())
    rows.append(["library sweep", f"{len(library_rows)} cases", "identical", ""])

    report(
        "e16_kernel",
        render_table(
            ["instance", "dict (cold)", "packed (cold)", "speedup"],
            rows,
            title="E16: packed kernel vs dict engine, cold full verification",
        ),
    )
    bench_timings(
        "kernel",
        {
            "min_speedup_required": MIN_SPEEDUP,
            "trials": TRIALS,
            "instances": instances,
            "library_cases_identical": len(library_rows),
        },
    )


def _scalar_vs_vectorized(program, invariant, *, shards=None):
    """Cold scalar-sweep and vectorized-sweep packed verifications."""
    threshold = sweeps.VECTOR_MIN_STATES
    try:
        sweeps.VECTOR_MIN_STATES = 1 << 62  # force the scalar sweep
        started = time.perf_counter()
        scalar_report = check_tolerance(program, invariant, TRUE, engine="packed")
        scalar_seconds = time.perf_counter() - started
        sweeps.VECTOR_MIN_STATES = 0  # force the vectorized sweep
        started = time.perf_counter()
        vector_report = check_tolerance(
            program, invariant, TRUE, engine="packed", shards=shards
        )
        vector_seconds = time.perf_counter() - started
    finally:
        sweeps.VECTOR_MIN_STATES = threshold
    assert vector_report == scalar_report, "sweeps disagree"
    return scalar_seconds, vector_seconds


def test_e16_kernel_v2_vectorized_speedup(report, bench_timings):
    """Kernel v2: the vectorized sweep vs the scalar packed sweep."""
    if not sweeps.HAVE_NUMPY:
        import pytest

        pytest.skip("numpy is not installed")

    rows = []
    instances = []
    for shape_name, make_tree in SHAPES:
        trials = []
        for _ in range(TRIALS):
            design = build_diffusing_design(make_tree())
            trials.append(
                _scalar_vs_vectorized(design.program, design.candidate.invariant)
            )
        best_scalar = min(s for s, _ in trials)
        best_vector = min(v for _, v in trials)
        speedup = max(s / v for s, v in trials)
        # Sharding must not change the report (one cold check per shape).
        design = build_diffusing_design(make_tree())
        _scalar_vs_vectorized(
            design.program, design.candidate.invariant, shards=4
        )
        rows.append(
            [
                shape_name,
                f"{best_scalar:.3f}s",
                f"{best_vector:.3f}s",
                f"{speedup:.1f}x",
            ]
        )
        instances.append(
            {
                "case": shape_name,
                "scalar_seconds": [s for s, _ in trials],
                "vectorized_seconds": [v for _, v in trials],
                "speedup": speedup,
                "peak_rss_mb": _peak_rss_mb(),
            }
        )
        assert speedup >= MIN_VECTOR_SPEEDUP, (
            f"{shape_name}: vectorized sweep should be at least "
            f"{MIN_VECTOR_SPEEDUP:.0f}x faster than the scalar sweep, "
            f"got {speedup:.1f}x"
        )

    report(
        "e16_kernel_v2",
        render_table(
            ["instance", "scalar sweep", "vectorized", "speedup"],
            rows,
            title="E16 (kernel v2): vectorized vs scalar packed sweep, cold",
        ),
    )
    bench_timings(
        "kernel_v2",
        {
            "min_speedup_required": MIN_VECTOR_SPEEDUP,
            "trials": TRIALS,
            "instances": instances,
        },
    )


# ----------------------------------------------------------------------
# 10^8-state demonstration: python benchmarks/bench_e16_kernel.py --demo-1e8
# ----------------------------------------------------------------------

#: The demonstration instance: 10^8 states exactly.
DEMO_RING_NODES = 8
DEMO_RING_K = 10


def run_demo_1e8(shards: int | None = None) -> int:
    """Verify a 10^8-state instance end to end with the sharded sweeps.

    dijkstra-ring(8, K=10) has exactly ``10**8`` states. Every action is
    a two-variable table-mode action and the bad region is acyclic, so
    the whole verification — masks, successor CSR, closures, deadlock
    scan, Kahn peel — stays on the vectorized path. The scalar sweeps
    (dict or packed) would walk those hundred million states one at a
    time in Python; extrapolating their measured per-state cost puts
    them at hours for the same instance.
    """
    from repro.protocols.token_ring import build_dijkstra_ring

    program, invariant = build_dijkstra_ring(DEMO_RING_NODES, DEMO_RING_K)
    size = DEMO_RING_K ** DEMO_RING_NODES
    print(f"kernel v2 demo: dijkstra-ring({DEMO_RING_NODES}, K={DEMO_RING_K})")
    print(f"  state space: {size:,} states")
    started = time.perf_counter()
    report = check_tolerance(
        program,
        invariant,
        TRUE,
        engine="packed",
        max_states=10**9,
        shards=shards,
    )
    seconds = time.perf_counter() - started
    peak_mb = _peak_rss_mb()
    print(
        f"  verified in {seconds:.1f}s (peak RSS {peak_mb} MB): "
        f"ok={report.ok} stabilizing={report.stabilizing} "
        f"states={report.total_states:,}"
    )
    if report.total_states != size or not report.ok:
        print("FAIL: unexpected report")
        return 1
    from conftest import record_verification_timings

    record_verification_timings(
        "kernel_v2_demo",
        {
            "case": f"dijkstra-ring({DEMO_RING_NODES}, K={DEMO_RING_K})",
            "states": size,
            "shards": "auto" if shards is None else shards,
            "seconds": seconds,
            "peak_rss_mb": peak_mb,
            "ok": report.ok,
            "stabilizing": report.stabilizing,
        },
    )
    return 0


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e16_kernel.py --quick
# ----------------------------------------------------------------------

#: Small library cases for the CI smoke — seconds, not minutes.
QUICK_CASES = ("diffusing-chain", "coloring-chain", "mp-token-ring")


def run_quick(shards: int | None = None) -> int:
    """Fast engine-parity smoke: identical verdicts, packed not slower.

    Returns a process exit code. The speedup bar here is deliberately
    1.0x (packed must simply not lose): the instances are small enough
    that constant overheads dominate, and the real ``MIN_SPEEDUP`` bar
    is enforced by the full E16 run on the 16384-state shapes.

    With ``shards``, each case is additionally verified through the
    sharded vectorized sweep (forced even on these small spaces) and the
    report must be identical to both scalar engines.
    """
    failures = []
    sharded = f" + sharded x{shards}" if shards else ""
    print(f"kernel perf smoke: {len(QUICK_CASES)} cases, dict vs packed{sharded}")
    for name in QUICK_CASES:
        # Best of three cold trials per engine: the instances are small
        # enough that a single sub-millisecond run is scheduler noise.
        dict_seconds = packed_seconds = float("inf")
        for _ in range(3):
            program, invariant = build_case(name)
            started = time.perf_counter()
            dict_report = check_tolerance(
                program, invariant, TRUE, list(program.state_space()),
                engine="dict",
            )
            dict_seconds = min(dict_seconds, time.perf_counter() - started)
            started = time.perf_counter()
            packed_report = check_tolerance(
                program, invariant, TRUE, engine="packed"
            )
            packed_seconds = min(packed_seconds, time.perf_counter() - started)
            if packed_report != dict_report:
                failures.append(f"{name}: packed verdict differs from dict")
                break
        if shards and not failures:
            program, invariant = build_case(name)
            sharded_report = check_tolerance(
                program, invariant, TRUE, engine="packed", shards=shards
            )
            if sharded_report != dict_report:
                failures.append(
                    f"{name}: sharded (shards={shards}) verdict differs"
                )
        ratio = dict_seconds / packed_seconds
        print(
            f"  {name:<22} dict={dict_seconds:7.3f}s "
            f"packed={packed_seconds:7.3f}s  {ratio:5.1f}x"
        )
        if packed_seconds > dict_seconds:
            failures.append(
                f"{name}: packed engine slower than dict "
                f"({packed_seconds:.3f}s > {dict_seconds:.3f}s)"
            )
    import os

    leftovers = (
        [f for f in os.listdir("/dev/shm") if f.startswith("rk3")]
        if os.path.isdir("/dev/shm")
        else []
    )
    if leftovers:
        failures.append(f"leaked shared-memory segments: {leftovers}")
    if failures:
        import sys

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"kernel perf smoke passed: identical verdicts{sharded}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast parity/perf smoke instead of the full benchmark",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="also verify through the sharded vectorized sweep",
    )
    parser.add_argument(
        "--demo-1e8",
        action="store_true",
        help="verify the 10^8-state dijkstra-ring(8, K=10) instance",
    )
    arguments = parser.parse_args()
    if arguments.demo_1e8:
        raise SystemExit(run_demo_1e8(arguments.shards))
    if arguments.quick:
        raise SystemExit(run_quick(arguments.shards))
    import pytest

    raise SystemExit(pytest.main([__file__, "-q"]))
