"""E16 — packed exploration kernel vs the dict engine.

The packed kernel (:mod:`repro.kernel`) replaces dict-backed ``State``
objects with mixed-radix integer codes, compiles guards and statements
into closures over flat value lists, and memoizes each table-eligible
action's successor over its read-support projection. The acceptance bar
from the kernel PR: a **cold** full verification (kernel compilation
included) of the diffusing protocol must be at least ``MIN_SPEEDUP``x
faster than the dict engine on both the star-7 and balanced-2x2 tree
shapes — and produce a bit-identical :class:`ToleranceReport` on every
case of the protocol library.

Timings land in ``BENCH_verification.json`` under the ``kernel`` suite.

Run standalone as a CI perf smoke (small instances, seconds)::

    PYTHONPATH=src python benchmarks/bench_e16_kernel.py --quick
"""

import time

from repro.analysis import render_table
from repro.core.predicates import TRUE
from repro.protocols.diffusing import build_diffusing_design
from repro.protocols.library import build_case, case_names
from repro.topology import balanced_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance

#: The cold-verification speedup the kernel PR promises per shape.
MIN_SPEEDUP = 5.0

#: The acceptance shapes: 14 variables, 16384 states each.
SHAPES = (
    ("diffusing star-7", lambda: star_tree(7)),
    ("diffusing balanced-2x2", lambda: balanced_tree(2, 2)),
)

#: Cold trials per shape; the best ratio is scored (both runs are cold
#: every trial, so noise can only understate the speedup).
TRIALS = 3


def _cold_pair(program, invariant):
    """Back-to-back cold dict and packed verifications of one instance.

    A fresh program object is built per trial, so the packed time
    includes kernel compilation (codec, RW probes, guard compilation) —
    this is the cold end-to-end cost a first-time caller pays.
    """
    started = time.perf_counter()
    dict_report = check_tolerance(
        program, invariant, TRUE, list(program.state_space()), engine="dict"
    )
    dict_seconds = time.perf_counter() - started
    started = time.perf_counter()
    packed_report = check_tolerance(program, invariant, TRUE, engine="packed")
    packed_seconds = time.perf_counter() - started
    assert packed_report == dict_report, "engines disagree"
    return dict_seconds, packed_seconds


def _library_verdicts_identical(names):
    """Assert packed == dict on every named library case; return rows."""
    rows = []
    for name in names:
        program, invariant = build_case(name)
        dict_report = check_tolerance(
            program, invariant, TRUE, list(program.state_space()), engine="dict"
        )
        packed_report = check_tolerance(program, invariant, TRUE, engine="packed")
        assert packed_report == dict_report, f"{name}: engines disagree"
        rows.append((name, packed_report.total_states, packed_report.ok))
    return rows


def test_e16_kernel_speedup(benchmark, report, bench_timings):
    small = build_diffusing_design(star_tree(4))
    benchmark(
        lambda: check_tolerance(
            small.program, small.candidate.invariant, TRUE, engine="packed"
        )
    )

    rows = []
    instances = []
    for shape_name, make_tree in SHAPES:
        trials = []
        for _ in range(TRIALS):
            design = build_diffusing_design(make_tree())
            dict_seconds, packed_seconds = _cold_pair(
                design.program, design.candidate.invariant
            )
            trials.append((dict_seconds, packed_seconds))
        best_dict, best_packed = min(trials), min(t[1] for t in trials)
        speedup = max(d / p for d, p in trials)
        rows.append(
            [
                shape_name,
                f"{best_dict[0]:.3f}s",
                f"{best_packed:.3f}s",
                f"{speedup:.1f}x",
            ]
        )
        instances.append(
            {
                "case": shape_name,
                "dict_seconds": [d for d, _ in trials],
                "packed_seconds": [p for _, p in trials],
                "speedup": speedup,
            }
        )
        assert speedup >= MIN_SPEEDUP, (
            f"{shape_name}: packed engine should be at least "
            f"{MIN_SPEEDUP:.0f}x faster cold, got {speedup:.1f}x"
        )

    library_rows = _library_verdicts_identical(case_names())
    rows.append(["library sweep", f"{len(library_rows)} cases", "identical", ""])

    report(
        "e16_kernel",
        render_table(
            ["instance", "dict (cold)", "packed (cold)", "speedup"],
            rows,
            title="E16: packed kernel vs dict engine, cold full verification",
        ),
    )
    bench_timings(
        "kernel",
        {
            "min_speedup_required": MIN_SPEEDUP,
            "trials": TRIALS,
            "instances": instances,
            "library_cases_identical": len(library_rows),
        },
    )


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e16_kernel.py --quick
# ----------------------------------------------------------------------

#: Small library cases for the CI smoke — seconds, not minutes.
QUICK_CASES = ("diffusing-chain", "coloring-chain", "mp-token-ring")


def run_quick() -> int:
    """Fast engine-parity smoke: identical verdicts, packed not slower.

    Returns a process exit code. The speedup bar here is deliberately
    1.0x (packed must simply not lose): the instances are small enough
    that constant overheads dominate, and the real ``MIN_SPEEDUP`` bar
    is enforced by the full E16 run on the 16384-state shapes.
    """
    failures = []
    print(f"kernel perf smoke: {len(QUICK_CASES)} cases, dict vs packed")
    for name in QUICK_CASES:
        # Best of three cold trials per engine: the instances are small
        # enough that a single sub-millisecond run is scheduler noise.
        dict_seconds = packed_seconds = float("inf")
        for _ in range(3):
            program, invariant = build_case(name)
            started = time.perf_counter()
            dict_report = check_tolerance(
                program, invariant, TRUE, list(program.state_space()),
                engine="dict",
            )
            dict_seconds = min(dict_seconds, time.perf_counter() - started)
            started = time.perf_counter()
            packed_report = check_tolerance(
                program, invariant, TRUE, engine="packed"
            )
            packed_seconds = min(packed_seconds, time.perf_counter() - started)
            if packed_report != dict_report:
                failures.append(f"{name}: packed verdict differs from dict")
                break
        ratio = dict_seconds / packed_seconds
        print(
            f"  {name:<22} dict={dict_seconds:7.3f}s "
            f"packed={packed_seconds:7.3f}s  {ratio:5.1f}x"
        )
        if packed_seconds > dict_seconds:
            failures.append(
                f"{name}: packed engine slower than dict "
                f"({packed_seconds:.3f}s > {dict_seconds:.3f}s)"
            )
    if failures:
        import sys

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("kernel perf smoke passed: identical verdicts, packed not slower")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast parity/perf smoke instead of the full benchmark",
    )
    arguments = parser.parse_args()
    if arguments.quick:
        raise SystemExit(run_quick())
    import pytest

    raise SystemExit(pytest.main([__file__, "-q"]))
