"""E1 — the Section 4/6 x/y/z example: three designs, three outcomes.

Paper claims reproduced:
- Section 4: fixing ``x = y`` by changing y and ``x > z`` by changing z
  yields an out-tree constraint graph (Theorem 1 applies).
- Section 6, second example: fixing both constraints by changing x, with
  the ``x = y`` repair decreasing x, admits a linear order (Theorem 2).
- Section 6, first example: with the ``x = y`` repair increasing x,
  "executing one can violate the constraint of the other ... and so on"
  — no linear order exists and the program oscillates forever.

The table reports, per design: graph class, certificate verdict, model-
checked convergence under weak and no fairness, and the worst-case steps
to converge (unbounded = an oscillation exists).
"""

from repro.analysis import render_table
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
    xyz_invariant,
)
from repro.verification import (
    check_convergence,
    explore,
    worst_case_convergence_steps,
)

BOUND = 3


def analyze(build):
    design = build(BOUND)
    window = window_states(BOUND)
    certificate = design.validate(window)
    ts = explore(design.program, window)
    invariant = xyz_invariant()
    weak = check_convergence(design.program, ts.states, invariant,
                             fairness="weak", system=ts)
    unfair = check_convergence(design.program, ts.states, invariant,
                               fairness="none", system=ts)
    worst = worst_case_convergence_steps(design.program, ts.states, invariant,
                                         system=ts)
    return design, certificate, weak, unfair, worst


def test_e1_three_designs(benchmark, report):
    designs = [build_out_tree_design, build_ordered_design, build_oscillating_design]

    # Benchmark the full analysis of the ordered (Theorem 2) design.
    benchmark(lambda: analyze(build_ordered_design))

    rows = []
    for build in designs:
        design, certificate, weak, unfair, worst = analyze(build)
        rows.append(
            [
                design.name,
                design.graph.classification(),
                certificate.selected.theorem.split(" (")[0],
                certificate.ok,
                weak.ok,
                unfair.ok,
                "unbounded" if worst is None else worst,
            ]
        )
    table = render_table(
        ["design", "graph", "theorem tried", "certified", "converges (weak)",
         "converges (unfair)", "worst-case steps"],
        rows,
        title=f"E1: x/y/z designs over window [-{BOUND}, {BOUND}]^3",
    )
    report("e1_three_constraint", table)

    # The paper's claims, as assertions.
    assert rows[0][3] and rows[1][3] and not rows[2][3]
    assert rows[0][4] and rows[1][4] and not rows[2][4]
    assert rows[2][6] == "unbounded"
