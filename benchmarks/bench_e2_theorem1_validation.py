"""E2 — Theorem 1's conditions hold for the diffusing computation.

Paper claim (Section 5): "each of these closure actions preserves each
constraint in S" and "the constraint graph will be an out-tree. From
Theorem 1, it follows that the resulting program will be true-tolerant
for S" — i.e. stabilizing.

The table discharges every Theorem 1 condition exhaustively, per tree
shape and size, and reports the number of preservation obligations
checked (closure actions x constraints) plus the wall-clock cost of the
full certificate.
"""

import time

from repro.analysis import render_table
from repro.protocols.diffusing import build_diffusing_design
from repro.topology import balanced_tree, chain_tree, random_tree, star_tree

SHAPES = [
    ("chain-3", lambda: chain_tree(3)),
    ("chain-5", lambda: chain_tree(5)),
    ("star-5", lambda: star_tree(5)),
    ("star-7", lambda: star_tree(7)),
    ("balanced-2x2 (7)", lambda: balanced_tree(2, 2)),
    ("random-6", lambda: random_tree(6, seed=11)),
]


def certify(make_tree):
    tree = make_tree()
    design = build_diffusing_design(tree)
    states = list(design.program.state_space())
    started = time.perf_counter()
    certificate = design.validate(states).selected
    elapsed = time.perf_counter() - started
    return tree, design, states, certificate, elapsed


def test_e2_theorem1_conditions(benchmark, report):
    benchmark(lambda: certify(SHAPES[0][1]))

    rows = []
    for name, make_tree in SHAPES:
        tree, design, states, certificate, elapsed = certify(make_tree)
        obligations = len(design.candidate.program.actions) * len(
            design.candidate.constraints
        )
        conditions_ok = sum(1 for c in certificate.conditions if c.ok)
        rows.append(
            [
                name,
                len(tree),
                len(states),
                design.graph.classification(),
                obligations,
                f"{conditions_ok}/{len(certificate.conditions)}",
                certificate.ok,
                f"{elapsed:.2f}s",
            ]
        )
    table = render_table(
        ["tree", "nodes", "states", "graph", "preservation obligations",
         "conditions ok", "certified", "time"],
        rows,
        title="E2: Theorem 1 validation of the diffusing computation",
    )
    report("e2_theorem1_validation", table)
    assert all(row[6] for row in rows)
