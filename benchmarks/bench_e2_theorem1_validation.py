"""E2 — Theorem 1's conditions hold for the diffusing computation.

Paper claim (Section 5): "each of these closure actions preserves each
constraint in S" and "the constraint graph will be an out-tree. From
Theorem 1, it follows that the resulting program will be true-tolerant
for S" — i.e. stabilizing.

The table discharges every Theorem 1 condition exhaustively, per tree
shape and size, and reports the number of preservation obligations
checked (closure actions x constraints) plus the wall-clock cost of the
full certificate. Certification runs through the verification service:
each shape is validated cold, then re-requested to confirm the
content-addressed cache answers the repeat in place of recomputation.
"""

import time

from repro.analysis import render_table
from repro.protocols.diffusing import build_diffusing_design
from repro.topology import balanced_tree, chain_tree, random_tree, star_tree
from repro.verification import VerificationService

SHAPES = [
    ("chain-3", lambda: chain_tree(3)),
    ("chain-5", lambda: chain_tree(5)),
    ("star-5", lambda: star_tree(5)),
    ("star-7", lambda: star_tree(7)),
    ("balanced-2x2 (7)", lambda: balanced_tree(2, 2)),
    ("random-6", lambda: random_tree(6, seed=11)),
]


def certify(service, shape_name, make_tree):
    tree = make_tree()
    design = build_diffusing_design(tree)
    states = list(design.program.state_space())
    started = time.perf_counter()
    record = service.validate_design(
        design, states, case=f"diffusing {shape_name}", states_key=shape_name
    )
    elapsed = time.perf_counter() - started
    return tree, design, states, record, elapsed


def test_e2_theorem1_conditions(benchmark, report, bench_timings):
    bench_service = VerificationService()
    benchmark(lambda: certify(bench_service, *SHAPES[0]))

    service = VerificationService()
    rows = []
    instances = []
    for name, make_tree in SHAPES:
        tree, design, states, record, elapsed = certify(service, name, make_tree)
        _, _, _, warm, warm_elapsed = certify(service, name, make_tree)
        assert warm == record  # cache hit: identical record, no recompute
        assert warm_elapsed < elapsed
        obligations = len(design.candidate.program.actions) * len(
            design.candidate.constraints
        )
        rows.append(
            [
                name,
                len(tree),
                len(states),
                design.graph.classification(),
                obligations,
                f"{record['conditions_ok']}/{record['conditions']}",
                record["ok"],
                f"{elapsed:.2f}s",
                f"{warm_elapsed * 1000:.1f}ms",
            ]
        )
        instances.append(
            {
                "case": record["case"],
                "states": len(states),
                "theorem": record["theorem"],
                "cold_seconds": elapsed,
                "warm_seconds": warm_elapsed,
                "ok": record["ok"],
            }
        )
    table = render_table(
        ["tree", "nodes", "states", "graph", "preservation obligations",
         "conditions ok", "certified", "cold", "warm"],
        rows,
        title="E2: Theorem 1 validation of the diffusing computation "
        "(through the verification service)",
    )
    report("e2_theorem1_validation", table)
    bench_timings("e2", {"instances": instances, **service.stats()})
    assert all(row[6] for row in rows)
