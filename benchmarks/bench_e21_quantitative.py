"""E21 — quantitative tolerance league table over the protocol library.

For every registered protocol this experiment runs the full quantitative
analysis (:func:`repro.quantitative.quantify`): random-daemon expected
convergence time, the fault-rate-weighted expectation, the adversarial
worst-case span, and the masking-distance-style score — and renders them
as one league table, ranked by score. On the toy sizes it also pins the
CSR value iteration against the dense reference solve, so the league
numbers are known-correct, not merely fast.

Timings land in ``BENCH_verification.json`` under the ``quantitative``
suite. The CI perf smoke runs the differential check plus the cache-key
separation of quantified verdicts::

    PYTHONPATH=src python benchmarks/bench_e21_quantitative.py --quick
"""

import json
import math
import time

from repro.analysis import render_table
from repro.protocols.library import CASES, build_case
from repro.quantitative import (
    DENSE_AGREEMENT_RTOL,
    HAVE_NUMPY,
    dense_hitting_times,
    hitting_times,
    quantify,
)

#: Instances small enough that the dense O(states^3) reference stays
#: cheap; the league table itself runs each case's registered default.
DIFFERENTIAL_SIZES = {
    "diffusing-chain": 3,
    "dijkstra-ring": 3,
    "coloring-chain": 3,
    "mis-cycle": 3,
}


def _fmt(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:.3f}"


def league_table() -> list[dict]:
    """Quantify every library protocol at its registered default size."""
    rows = []
    for name, entry in CASES.items():
        program, invariant = build_case(name, entry.default_size)
        started = time.perf_counter()
        report = quantify(program, invariant, case=f"{name} (n={entry.default_size})")
        rows.append(
            {
                "case": name,
                "size": entry.default_size,
                "states": report.states,
                "mean_steps": report.mean_steps,
                "weighted_mean_steps": report.weighted_mean_steps,
                "worst_case_steps": report.worst_case_steps,
                "score": report.score,
                "path": report.path,
                "converged": report.converged,
                "seconds": time.perf_counter() - started,
            }
        )
    rows.sort(key=lambda row: row["score"], reverse=True)
    return rows


def differential_check() -> int:
    """Pin the CSR value iteration against the dense solve; return #cases."""
    checked = 0
    for name, size in DIFFERENTIAL_SIZES.items():
        program, invariant = build_case(name, size)
        states = list(program.state_space())
        fast = hitting_times(program, states, invariant)
        dense = dense_hitting_times(program, states, invariant)
        for got, want in zip(fast.expectations, dense.expectations):
            if math.isinf(want):
                assert math.isinf(got), f"{name}: finite where dense is inf"
            else:
                assert abs(got - want) <= DENSE_AGREEMENT_RTOL * (1.0 + abs(want)), (
                    f"{name}: CSR {got} vs dense {want}"
                )
        checked += 1
    return checked


def cache_key_separation() -> None:
    """A quantified verdict must not collide with the plain verdict."""
    import repro
    from repro.verification import VerificationService

    service = VerificationService()
    plain = repro.verify("coloring-chain", size=3, service=service)
    quantified = repro.verify("coloring-chain", size=3, quantify=True,
                              service=service)
    assert plain.quantitative is None
    assert quantified.cached is False, "quantify hit the plain cache entry"
    assert quantified.quantitative is not None
    again = repro.verify("coloring-chain", size=3, quantify=True,
                         service=service)
    assert again.cached and again.quantitative == quantified.quantitative


def test_e21_quantitative_league(benchmark, report, bench_timings):
    program, invariant = build_case("dijkstra-ring", 3)
    states = list(program.state_space())
    benchmark(lambda: hitting_times(program, states, invariant))

    if HAVE_NUMPY:
        assert differential_check() == len(DIFFERENTIAL_SIZES)
    cache_key_separation()

    rows = league_table()
    assert all(row["converged"] for row in rows)
    assert all(0.0 <= row["score"] < 1.0 for row in rows)
    table = render_table(
        ["protocol", "n", "states", "E[steps]", "weighted E",
         "worst case", "score", "path", "seconds"],
        [
            [
                row["case"],
                row["size"],
                row["states"],
                _fmt(row["mean_steps"]),
                _fmt(row["weighted_mean_steps"]),
                _fmt(row["worst_case_steps"]),
                f"{row['score']:.4f}",
                row["path"],
                f"{row['seconds']:.3f}",
            ]
            for row in rows
        ],
        title="E21: quantitative tolerance league (ranked by score)",
    )
    report("e21_quantitative", table)
    bench_timings("quantitative", {"league": rows})


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e21_quantitative.py --quick
# ----------------------------------------------------------------------


def run_quick() -> int:
    """Seconds-scale smoke: differential agreement + cache-key separation."""
    print("quantitative perf smoke: CSR-vs-dense differential + cache keys")
    try:
        if HAVE_NUMPY:
            checked = differential_check()
            print(f"  differential: {checked} protocols within "
                  f"rtol {DENSE_AGREEMENT_RTOL}")
        else:
            print("  differential: skipped (no numpy; scalar path only)")
        cache_key_separation()
        print("  cache keys: quantify records separate from plain verdicts")
        rows = league_table()
    except AssertionError as error:
        print(f"  FAILED: {error}")
        return 1
    slowest = max(rows, key=lambda row: row["seconds"])
    print(f"  league: {len(rows)} protocols, all converged; slowest "
          f"{slowest['case']} at {slowest['seconds']:.3f}s ({slowest['path']})")
    print("quantitative perf smoke: OK")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the seconds-scale CI smoke instead of the full league",
    )
    arguments = parser.parse_args()
    if arguments.quick:
        sys.exit(run_quick())
    from conftest import record_verification_timings

    if HAVE_NUMPY:
        differential_check()
    league = league_table()
    record_verification_timings("quantitative", {"league": league})
    print(json.dumps({"league": league}, indent=2))
