"""E14 — daemon granularity: central vs synchronous execution.

The paper's model (Section 2) executes one enabled action per step; its
concluding remarks raise refinement toward real distributed execution.
Synchrony is the other daemon axis: every process steps at once. This
experiment classifies each protocol under three daemons — weakly fair
central, unfair central, and synchronous — all decided exactly.

The headline contrast: the paper's designs and the tree-based extensions
converge under *all three* (their repair actions copy from a neighbor
whose own action cannot simultaneously invalidate the copy), while the
symmetric greedy graph coloring converges under any central daemon yet
oscillates synchronously from a large fraction of states — two
same-colored neighbors recompute the same smallest free color and move
together forever. Symmetry breaking (ids, trees, randomization) is
precisely what separates the two columns.
"""

from repro.analysis import render_table
from repro.core import TRUE
from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    graph_coloring_invariant,
)
from repro.protocols.independent_set import build_mis_program, mis_invariant
from repro.protocols.matching import build_matching_program, matching_invariant
from repro.protocols.token_ring import build_dijkstra_ring
from repro.topology import chain_tree, complete_graph, cycle_graph, path_graph, star_tree
from repro.verification import check_synchronous_convergence
from repro.verification.checker import _check_tolerance as check_tolerance


def cases():
    tree = chain_tree(3)
    design = build_diffusing_design(tree)
    yield "diffusing (chain-3)", design.program, diffusing_invariant(tree)

    program, spec = build_dijkstra_ring(4, 4)
    yield "token ring (4, K=4)", program, spec

    tree = star_tree(4)
    design = build_coloring_design(tree, k=2)
    yield "tree coloring (star-4)", design.program, coloring_invariant(tree)

    graph = path_graph(4)
    yield "matching (path-4)", build_matching_program(graph), matching_invariant(graph)

    graph = cycle_graph(4)
    yield "MIS (cycle-4)", build_mis_program(graph), mis_invariant(graph)

    for graph, label in [
        (path_graph(2), "greedy coloring (K2)"),
        (cycle_graph(4), "greedy coloring (cycle-4)"),
        (complete_graph(3), "greedy coloring (K3)"),
    ]:
        yield label, build_graph_coloring_program(graph), graph_coloring_invariant(graph)


def test_e14_daemon_granularity(benchmark, report):
    graph = cycle_graph(4)
    program = build_graph_coloring_program(graph)
    states = list(program.state_space())
    benchmark(
        lambda: check_synchronous_convergence(
            program, states, graph_coloring_invariant(graph)
        )
    )

    rows = []
    for name, prog, invariant in cases():
        all_states = list(prog.state_space())
        weak = check_tolerance(prog, invariant, TRUE, all_states, fairness="weak").ok
        unfair = check_tolerance(prog, invariant, TRUE, all_states, fairness="none").ok
        sync = check_synchronous_convergence(prog, all_states, invariant)
        fraction = (
            "-" if sync.ok else f"{sync.oscillating_starts / sync.checked:.0%}"
        )
        rows.append(
            [
                name,
                len(all_states),
                weak,
                unfair,
                sync.ok,
                fraction,
                len(sync.worst_cycle) if sync.worst_cycle else "-",
            ]
        )
    table = render_table(
        ["protocol", "states", "central (weak)", "central (unfair)",
         "synchronous", "oscillating starts", "limit-cycle length"],
        rows,
        title="E14: convergence per daemon granularity (exact verdicts)",
    )
    report("e14_daemon_granularity", table)

    greedy = [row for row in rows if row[0].startswith("greedy")]
    others = [row for row in rows if not row[0].startswith("greedy")]
    assert all(row[2] and row[3] and row[4] for row in others)
    assert all(row[2] and row[3] and not row[4] for row in greedy)
