"""Run the experiment suite, or a fast parallel-verification smoke test.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_all.py          # full E1..E9 suite
    PYTHONPATH=src python benchmarks/run_all.py --quick  # ~seconds smoke

The full run executes every ``bench_*.py`` experiment under pytest,
regenerating ``benchmarks/results/*.txt`` and the verification timing
suites in ``BENCH_verification.json``.

``--quick`` skips the heavy experiments and instead drives the
verification service end to end on a small slice of the protocol
library: the same tasks are verified sequentially and through the
process pool at ``workers=2`` with a shared disk cache, the verdict
records are required to be identical, and the pool is run a second time
to confirm the warm pass is answered entirely from the cache. Its
timings land in the ``quick`` suite of ``BENCH_verification.json``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

QUICK_CASES = ["coloring-chain", "leader-election-star", "mp-token-ring"]
QUICK_WORKERS = 2

#: Fields that must match between sequential and parallel verdicts
#: (timing and cache provenance excluded).
VERDICT_FIELDS = (
    "case",
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
)


def _verdicts(records: list[dict]) -> list[dict]:
    return [{field: record[field] for field in VERDICT_FIELDS} for record in records]


def run_quick() -> int:
    from repro.protocols.library import library_tasks
    from repro.verification import batch_report, run_batch, verdicts_ok

    from bench_e16_kernel import run_quick as run_kernel_quick
    from bench_e17_compositional import run_quick as run_compositional_quick
    from bench_e21_quantitative import run_quick as run_quantitative_quick
    from conftest import record_verification_timings

    # Packed-kernel parity first: identical verdicts, packed not slower.
    kernel_status = run_kernel_quick()
    print()

    # Compositional certifier: differential agreement plus the n=200 chain.
    compositional_status = run_compositional_quick()
    print()

    # Quantitative tolerance: CSR-vs-dense differential + cache keys.
    quantitative_status = run_quantitative_quick()
    print()

    # Kernel v3: every packed sweep must account its memory — the
    # kernel.mem.peak_bytes counter is part of the observability
    # contract (docs/PERFORMANCE.md), so its absence is a failure.
    from repro.observability.metrics import MetricsRegistry
    from repro.protocols.library import build_case
    from repro.verification.service import VerificationService

    mem_metrics = MetricsRegistry()
    program, invariant = build_case(QUICK_CASES[0])
    VerificationService(metrics=mem_metrics).verify_tolerance(
        program, invariant, engine="packed", case="mem-smoke"
    )
    mem_peak = mem_metrics.report().counters.get("kernel.mem.peak_bytes", 0)
    print(f"packed sweep memory accounting: kernel.mem.peak_bytes={mem_peak}")
    print()

    tasks = library_tasks(names=QUICK_CASES)
    print(f"quick smoke: {len(tasks)} library cases, "
          f"sequential vs workers={QUICK_WORKERS}")

    started = time.perf_counter()
    sequential = run_batch(tasks, workers=1)
    sequential_seconds = time.perf_counter() - started
    print(f"  sequential            {sequential_seconds:6.2f}s")

    with tempfile.TemporaryDirectory(prefix="vcache-quick-") as cache_dir:
        started = time.perf_counter()
        parallel = run_batch(tasks, workers=QUICK_WORKERS, cache_dir=cache_dir)
        parallel_seconds = time.perf_counter() - started
        print(f"  workers={QUICK_WORKERS} (cold cache) {parallel_seconds:6.2f}s")

        started = time.perf_counter()
        warm = run_batch(tasks, workers=QUICK_WORKERS, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - started
        print(f"  workers={QUICK_WORKERS} (warm cache) {warm_seconds:6.2f}s")

    cold_metrics = batch_report(
        parallel, wall_clock_seconds=parallel_seconds, workers=QUICK_WORKERS
    )
    warm_metrics = batch_report(
        warm, wall_clock_seconds=warm_seconds, workers=QUICK_WORKERS
    )

    failures = []
    if _verdicts(sequential) != _verdicts(parallel):
        failures.append("parallel verdicts differ from sequential")
    if _verdicts(sequential) != _verdicts(warm):
        failures.append("warm verdicts differ from sequential")
    if not all(record["cached"] for record in warm):
        failures.append("warm pass was not fully served from the cache")
    if not verdicts_ok(sequential):
        failures.append("a library case failed verification")
    # Per-worker timings must account for every task: the worker.* timer
    # totals sum to the overall task timer total.
    worker_seconds = sum(
        stats["total"]
        for name, stats in cold_metrics.timers.items()
        if name.startswith("worker.")
    )
    if abs(worker_seconds - cold_metrics.timers["task"]["total"]) > 1e-6:
        failures.append("per-worker timings do not sum to the task total")

    for record in sequential:
        print(f"    {record['case']:<28} states={record['total_states']:<6} "
              f"{'ok' if record['ok'] else 'FAIL'}")
    workers_used = sorted(
        name.removeprefix("worker.")
        for name in cold_metrics.timers
        if name.startswith("worker.")
    )
    print(f"  cold pass used {len(workers_used)} worker(s): "
          f"{', '.join(workers_used)}")

    record_verification_timings(
        "quick",
        {
            "workers": QUICK_WORKERS,
            "cases": [record["case"] for record in sequential],
            "sequential_seconds": sequential_seconds,
            "parallel_cold_seconds": parallel_seconds,
            "parallel_warm_seconds": warm_seconds,
            "metrics": {
                "cold": cold_metrics.as_dict(),
                "warm": warm_metrics.as_dict(),
            },
        },
    )

    if kernel_status != 0:
        failures.append("kernel perf smoke failed (see above)")
    if mem_peak <= 0:
        failures.append(
            "packed sweep did not report kernel.mem.peak_bytes"
        )
    if compositional_status != 0:
        failures.append("compositional perf smoke failed (see above)")
    if quantitative_status != 0:
        failures.append("quantitative perf smoke failed (see above)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("quick smoke passed: parallel == sequential, warm pass fully cached")
    return 0


def run_full(pytest_args: list[str]) -> int:
    import pytest

    benches = sorted(str(path) for path in BENCH_DIR.glob("bench_*.py"))
    return pytest.main([*benches, "-q", *pytest_args])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast workers=2 verification smoke instead of the "
        "full experiment suite",
    )
    args, passthrough = parser.parse_known_args(argv)
    if args.quick:
        return run_quick()
    return run_full(passthrough)


if __name__ == "__main__":
    raise SystemExit(main())
