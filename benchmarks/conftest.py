"""Shared benchmark utilities.

Every benchmark prints its experiment table through ``report`` so the
rows appear on the terminal (outside pytest's capture) and are appended
to ``benchmarks/results/<experiment>.txt`` for later diffing against
EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print text to the real terminal and persist it under results/."""

    def _report(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
