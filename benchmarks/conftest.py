"""Shared benchmark utilities.

Every benchmark prints its experiment table through ``report`` so the
rows appear on the terminal (outside pytest's capture) and are appended
to ``benchmarks/results/<experiment>.txt`` for later diffing against
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-instance verification wall-clock timings, merged across suites so
#: the perf trajectory of the verification service has durable data.
BENCH_VERIFICATION_JSON = Path(__file__).parent.parent / "BENCH_verification.json"


@pytest.fixture
def report(capsys):
    """Print text to the real terminal and persist it under results/."""

    def _report(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report


def record_verification_timings(suite: str, payload: dict) -> None:
    """Merge one suite's timing payload into ``BENCH_verification.json``."""
    data: dict = {}
    if BENCH_VERIFICATION_JSON.exists():
        try:
            data = json.loads(BENCH_VERIFICATION_JSON.read_text())
        except ValueError:
            data = {}
    data[suite] = {"recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"), **payload}
    BENCH_VERIFICATION_JSON.write_text(json.dumps(data, indent=2, sort_keys=True))


@pytest.fixture
def bench_timings():
    """Record a suite's per-instance verification timings."""
    return record_verification_timings
