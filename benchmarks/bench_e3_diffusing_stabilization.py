"""E3 — the diffusing computation stabilizes from arbitrary corruption.

Paper claim (Section 5.1): the program "should tolerate faults that
arbitrarily corrupt the state of any number of nodes"; being stabilizing,
from *any* state every computation converges to S and the green/red wave
cycle resumes.

The sweep measures stabilization cost (steps and rounds to re-establish
S, under a seeded random daemon) from uniformly random states, across
tree sizes and shapes. Expected shape: steps grow roughly linearly with
the number of nodes; rounds track tree height (a chain needs more rounds
than a star of the same size).
"""

from repro.analysis import render_table
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import balanced_tree, chain_tree, random_tree, star_tree

TRIALS = 30

SWEEP = [
    ("chain", 7, lambda: chain_tree(7)),
    ("chain", 15, lambda: chain_tree(15)),
    ("chain", 31, lambda: chain_tree(31)),
    ("star", 15, lambda: star_tree(15)),
    ("star", 31, lambda: star_tree(31)),
    ("balanced-2", 15, lambda: balanced_tree(2, 3)),
    ("balanced-2", 31, lambda: balanced_tree(2, 4)),
    ("balanced-2", 63, lambda: balanced_tree(2, 5)),
    ("random", 63, lambda: random_tree(63, seed=5)),
    ("random", 127, lambda: random_tree(127, seed=5)),
]


def measure(make_tree, *, trials=TRIALS, measure_rounds=True):
    tree = make_tree()
    design = build_diffusing_design(tree)
    return tree, stabilization_trials(
        design.program,
        diffusing_invariant(tree),
        lambda seed: RandomScheduler(seed),
        trials=trials,
        max_steps=4000 * len(tree),
        base_seed=33,
        measure_rounds=measure_rounds,
    )


def test_e3_stabilization_sweep(benchmark, report):
    benchmark(lambda: measure(lambda: balanced_tree(2, 3), trials=3,
                              measure_rounds=False))

    rows = []
    for shape, size, make_tree in SWEEP:
        tree, stats = measure(make_tree)
        rows.append(
            [
                shape,
                size,
                tree.height(),
                f"{stats.stabilization_rate:.0%}",
                round(stats.steps.mean, 1),
                round(stats.steps.p95, 1),
                round(stats.rounds.mean, 1) if stats.rounds else "-",
            ]
        )
    table = render_table(
        ["shape", "nodes", "height", "stabilized", "mean steps", "p95 steps",
         "mean rounds"],
        rows,
        title=(
            f"E3: diffusing-computation stabilization from random corruption "
            f"({TRIALS} trials per row, random daemon)"
        ),
    )
    report("e3_diffusing_stabilization", table)
    assert all(row[3] == "100%" for row in rows)
