"""E15 — lint cost vs verification cost across the protocol library.

The linter's value proposition is that it checks the paper's side
conditions *before* any state space is built, so it must be cheap
relative to the work it can short-circuit. This experiment lints every
library case, verifies the same instance cold through the verification
service, and reports the ratio. The acceptance bar from the staticcheck
PR: linting the whole library is at least 10x faster than cold-verifying
it.

Timings land in ``BENCH_verification.json`` under the ``staticcheck``
suite so the lint-cost trajectory is tracked alongside the verification
service's.
"""

import time

from repro.analysis import render_table
from repro.protocols.library import CASES, build_case
from repro.staticcheck import lint_case
from repro.verification import VerificationService

#: The lint-vs-verify speedup the PR promises (per whole-library pass).
MIN_SPEEDUP = 10.0


def test_e15_staticcheck_cost(benchmark, report, bench_timings):
    benchmark(lambda: lint_case("diffusing-chain"))

    service = VerificationService()
    rows = []
    instances = []
    lint_total = 0.0
    verify_total = 0.0
    for name, case in CASES.items():
        size = case.default_size
        started = time.perf_counter()
        lint_report = lint_case(name, size)
        lint_seconds = time.perf_counter() - started

        program, invariant = build_case(name, size)
        started = time.perf_counter()
        verdict = service.verify_tolerance(
            program, invariant, case=f"e15 {name} (n={size})"
        )
        verify_seconds = time.perf_counter() - started

        assert lint_report.strict_ok, f"{name} has lint findings"
        assert not verdict.cached
        lint_total += lint_seconds
        verify_total += verify_seconds
        ratio = verify_seconds / lint_seconds if lint_seconds > 0 else float("inf")
        rows.append(
            [
                f"{name} (n={size})",
                f"{lint_seconds * 1000:.1f}ms",
                f"{verify_seconds * 1000:.1f}ms",
                f"{ratio:.0f}x",
                "clean" if lint_report.strict_ok else "findings",
            ]
        )
        instances.append(
            {
                "case": f"{name} (n={size})",
                "lint_seconds": lint_seconds,
                "verify_cold_seconds": verify_seconds,
                "ok": verdict.record["ok"],
                "strict_ok": lint_report.strict_ok,
                "diagnostics": len(lint_report.diagnostics),
            }
        )

    speedup = verify_total / lint_total
    rows.append(
        [
            "TOTAL",
            f"{lint_total * 1000:.1f}ms",
            f"{verify_total * 1000:.1f}ms",
            f"{speedup:.0f}x",
            "",
        ]
    )
    report(
        "e15_staticcheck",
        render_table(
            ["case", "lint", "verify (cold)", "speedup", "verdict"],
            rows,
            title="E15: lint cost vs cold verification cost",
        ),
    )
    bench_timings(
        "staticcheck",
        {
            "lint_total_seconds": lint_total,
            "verify_total_seconds": verify_total,
            "speedup": speedup,
            "instances": instances,
        },
    )
    # The whole point of the precheck: it must be much cheaper than what
    # it short-circuits.
    assert speedup >= MIN_SPEEDUP, (
        f"lint should be at least {MIN_SPEEDUP:.0f}x faster than cold "
        f"verification, got {speedup:.1f}x"
    )
