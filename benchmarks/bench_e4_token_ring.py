"""E4 — the token ring: single privilege, circulation, stabilization.

Paper claims (Section 7.1):
(i)  exactly one node is privileged at any invariant state;
(ii) each privileged node eventually yields the privilege to its
     successor;
(iii) the program tolerates faults whereby nodes spontaneously become
     privileged or unprivileged.

Part A verifies (i)+(iii) exhaustively on Dijkstra's K-state instance and
locates the minimal stabilizing K per ring size — the classic K >= N
threshold (ring size N+1) emerges from the model checker.
Part B measures (ii)+(iii) at scale by simulation: stabilization steps
from random corruption and the privilege-rotation period afterwards.
"""

from repro.analysis import render_table
from repro.core import TRUE
from repro.protocols.token_ring import build_dijkstra_ring, privileged_nodes
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials, run
from repro.topology import Ring
from repro.verification.checker import _check_tolerance as check_tolerance

TRIALS = 25


def minimal_k(size: int) -> tuple[int, list[tuple[int, bool]]]:
    verdicts = []
    found = None
    for k in range(2, size + 2):
        program, spec = build_dijkstra_ring(size, k)
        ok = check_tolerance(program, spec, TRUE, program.state_space()).ok
        verdicts.append((k, ok))
        if ok and found is None:
            found = k
    return found, verdicts


def test_e4a_minimal_k(benchmark, report):
    benchmark(lambda: minimal_k(3))

    rows = []
    for size in (3, 4, 5, 6):
        found, verdicts = minimal_k(size)
        rows.append(
            [
                size,
                size - 1,
                found,
                " ".join(f"K={k}:{'ok' if ok else 'x'}" for k, ok in verdicts),
            ]
        )
    table = render_table(
        ["ring size (N+1)", "N (Dijkstra bound)", "minimal stabilizing K",
         "exhaustive verdicts"],
        rows,
        title="E4a: minimal K for Dijkstra's ring (exhaustive, weak fairness)",
    )
    report("e4a_minimal_k", table)
    assert all(row[2] == row[1] for row in rows)  # K = N exactly


def test_e4b_stabilization_and_rotation(benchmark, report):
    def one_trial():
        program, spec = build_dijkstra_ring(10, k=11)
        return stabilization_trials(
            program, spec, lambda s: RandomScheduler(s),
            trials=2, max_steps=50_000, base_seed=3,
        )

    benchmark(one_trial)

    rows = []
    for size in (5, 10, 20, 40):
        program, spec = build_dijkstra_ring(size, k=size + 1)
        stats = stabilization_trials(
            program, spec, lambda s: RandomScheduler(s),
            trials=TRIALS, max_steps=100_000, base_seed=9,
        )
        # Rotation: once legitimate, how many steps for the privilege to
        # return to node 0? In the ring each step moves it by one, so the
        # period should be exactly the ring size.
        ring = Ring(size)
        initial = program.make_state({f"x.{j}": 0 for j in range(size)})
        trace = run(program, initial, RandomScheduler(1), max_steps=3 * size)
        holders = [
            privileged_nodes(ring, state)[0]
            for state in trace.computation.states()
        ]
        returns = [i for i, h in enumerate(holders) if h == 0]
        period = returns[1] - returns[0] if len(returns) > 1 else None
        rows.append(
            [
                size,
                f"{stats.stabilization_rate:.0%}",
                round(stats.steps.mean, 1),
                round(stats.steps.p95, 1),
                period,
            ]
        )
    table = render_table(
        ["ring size", "stabilized", "mean steps", "p95 steps",
         "privilege rotation period"],
        rows,
        title=(
            f"E4b: K-state ring stabilization from random corruption "
            f"({TRIALS} trials, K = size + 1) and steady-state rotation"
        ),
    )
    report("e4b_token_ring_stabilization", table)
    assert all(row[1] == "100%" for row in rows)
    assert all(row[4] == row[0] for row in rows)
