"""E12 — the message-passing refinement of the token ring (the Section
7.1 reader exercise).

"Refinement of this program into one where the neighboring processes
communicate via message passing is left as an exercise to the reader."

The counter-flushing solution (see
:mod:`repro.protocols.mp_token_ring`) is verified and measured:

- Part A: exhaustive stabilization verdicts over ring size × counter
  modulus K, locating the minimal K. Unlike the shared-memory ring
  (minimal K = N, experiment E4a), the message-passing ring needs the
  counter to out-run stale values parked in *channels* as well as nodes,
  and the threshold shifts accordingly.
- Part B: recovery cost from the three protocol-specific faults — token
  loss, token duplication, and full corruption — at simulation scale.
"""

import random

from repro.analysis import render_table
from repro.core import TRUE
from repro.faults import LambdaFault, ScheduledFaults
from repro.protocols.mp_token_ring import build_mp_token_ring, channel_var
from repro.scheduler import RandomScheduler
from repro.simulation import run, stabilization_trials
from repro.verification.checker import _check_tolerance as check_tolerance

TRIALS = 20


def test_e12a_minimal_k(benchmark, report):
    benchmark(
        lambda: check_tolerance(
            *_ring_and_spec(3, 3), TRUE, _states(3, 3)
        )
    )

    rows = []
    for n in (2, 3, 4):
        verdicts = []
        for k in range(2, n + 2):
            program, spec = build_mp_token_ring(n, k)
            ok = check_tolerance(program, spec, TRUE, program.state_space()).ok
            verdicts.append((k, ok))
        minimal = next((k for k, ok in verdicts if ok), None)
        rows.append(
            [
                n,
                minimal,
                " ".join(f"K={k}:{'ok' if ok else 'x'}" for k, ok in verdicts),
            ]
        )
    # n = 5: K = 3 is known to fail; K >= 4 exceeds the exhaustive budget,
    # so report the failing verdict plus simulation evidence for K = 6.
    program, spec = build_mp_token_ring(5, 3)
    k3 = check_tolerance(program, spec, TRUE, program.state_space()).ok
    program, spec = build_mp_token_ring(5, 6)
    stats = stabilization_trials(
        program, spec, lambda s: RandomScheduler(s),
        trials=TRIALS, max_steps=50_000, base_seed=4,
    )
    rows.append(
        [5, ">=4 (sim: K=6 ok)", f"K=3:{'ok' if k3 else 'x'} "
         f"K=6:sim {stats.stabilization_rate:.0%}"]
    )
    table = render_table(
        ["ring size", "minimal stabilizing K", "verdicts"],
        rows,
        title="E12a: minimal K for the message-passing ring (exhaustive)",
    )
    report("e12a_mp_minimal_k", table)
    exact = {row[0]: row[1] for row in rows[:3]}
    assert exact == {2: 2, 3: 2, 4: 3}


def _ring_and_spec(n, k):
    return build_mp_token_ring(n, k)


def _states(n, k):
    program, _ = build_mp_token_ring(n, k)
    return list(program.state_space())


def test_e12b_fault_recovery(benchmark, report):
    def one_recovery():
        program, spec = build_mp_token_ring(6, 8)
        lose = LambdaFault(
            "lose",
            lambda s, rng: s.update({channel_var(j): None for j in range(6)}),
        )
        return run(
            program,
            _legitimate(program, 6),
            RandomScheduler(1),
            max_steps=2000,
            target=spec,
            faults=ScheduledFaults({10: lose}),
            fault_rng=random.Random(0),
        )

    benchmark(one_recovery)

    rows = []
    for size in (6, 12, 24):
        program, spec = build_mp_token_ring(size, size + 2)

        def make_fault(kind, size=size):
            if kind == "token loss":
                return LambdaFault(
                    "lose",
                    lambda s, rng: s.update(
                        {channel_var(j): None for j in range(size)}
                    ),
                )
            if kind == "duplication":
                return LambdaFault(
                    "dup",
                    lambda s, rng: s.update(
                        {channel_var(rng.randrange(size)): rng.randrange(size + 2)}
                    ),
                )
            from repro.faults import corrupt_everything

            return corrupt_everything(program)

        for kind in ("token loss", "duplication", "full corruption"):
            recoveries = []
            failures = 0
            for trial in range(TRIALS):
                result = run(
                    program,
                    _legitimate(program, size),
                    RandomScheduler(trial),
                    max_steps=50_000,
                    target=spec,
                    faults=ScheduledFaults({25: make_fault(kind)}),
                    fault_rng=random.Random(trial),
                )
                if result.stabilized and result.stabilization_index is not None:
                    recoveries.append(result.stabilization_index - 26)
                else:
                    failures += 1
            mean = sum(recoveries) / len(recoveries) if recoveries else float("nan")
            rows.append(
                [size, kind, TRIALS - failures, round(max(0.0, mean), 1)]
            )
    table = render_table(
        ["ring size", "fault", "recovered (of 20)", "mean recovery steps"],
        rows,
        title="E12b: message-passing ring recovery per fault class",
    )
    report("e12b_mp_fault_recovery", table)
    assert all(row[2] == TRIALS for row in rows)


def _legitimate(program, n):
    from repro.protocols.mp_token_ring import x_var

    values = {}
    for j in range(n):
        values[x_var(j)] = 1 if j == 0 else 0
        values[channel_var(j)] = 1 if j == 0 else None
    return program.make_state(values)
