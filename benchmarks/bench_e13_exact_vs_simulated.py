"""E13 — exact Markov analysis vs. simulation (simulator validation).

Under the seeded random daemon the programs are Markov chains, so the
expected stabilization time from a uniformly random corrupted state has
an exact closed-form answer (an absorbing hitting time). This experiment
solves it exactly per instance and compares against the Monte-Carlo
estimate from the simulation harness — the agreement validates both the
simulator (scheduling, seeding, stabilization accounting) and the
analysis (chain construction).

It exists because it caught a real bug during development: the trial
harness originally seeded the corrupted initial state and the scheduler
from the same stream, correlating the two and biasing the estimates by
several percent. The fix (independent derived streams) is asserted here.
"""

from repro.analysis import render_table
from repro.quantitative import hitting_times
from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.mp_token_ring import build_mp_token_ring
from repro.protocols.token_ring import build_dijkstra_ring
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import balanced_tree, chain_tree

TRIALS = 800


def cases():
    tree = chain_tree(3)
    design = build_diffusing_design(tree)
    yield "diffusing (chain-3)", design.program, diffusing_invariant(tree)

    tree = balanced_tree(2, 1)
    design = build_diffusing_design(tree)
    yield "diffusing (star-3)", design.program, diffusing_invariant(tree)

    program, spec = build_dijkstra_ring(4, k=5)
    yield "dijkstra ring (4, K=5)", program, spec

    program, spec = build_mp_token_ring(3, 3)
    yield "mp token ring (3, K=3)", program, spec

    tree = chain_tree(4)
    design = build_coloring_design(tree, k=2)
    yield "coloring (chain-4, k=2)", design.program, coloring_invariant(tree)


def test_e13_exact_vs_simulated(benchmark, report):
    program, spec = build_dijkstra_ring(3, 4)
    states = list(program.state_space())
    benchmark(lambda: hitting_times(program, states, spec))

    rows = []
    for name, prog, invariant in cases():
        all_states = list(prog.state_space())
        exact = hitting_times(prog, all_states, invariant)
        stats = stabilization_trials(
            prog,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=TRIALS,
            max_steps=100_000,
            base_seed=29,
        )
        relative_error = abs(stats.steps.mean - exact.mean) / max(exact.mean, 1e-9)
        rows.append(
            [
                name,
                len(all_states),
                round(exact.mean, 3),
                round(exact.maximum, 1),
                round(stats.steps.mean, 3),
                f"{relative_error:.1%}",
            ]
        )
    table = render_table(
        ["instance", "states", "exact E[steps]", "exact worst E",
         f"simulated mean ({TRIALS} trials)", "relative error"],
        rows,
        title="E13: exact Markov hitting times vs Monte-Carlo simulation",
    )
    report("e13_exact_vs_simulated", table)
    for row in rows:
        assert float(row[5].rstrip("%")) < 10.0  # within sampling noise
