"""E11 — atomicity refinement: the Section 8 open problem, measured.

Paper (Section 8): the reflect action "has high atomicity and may
therefore be unsuitable for a distributed implementation. In [6], we
present a refinement of this system that yields actions with low
atomicity and preserves the property of convergence. We study refinement
issues in a companion paper."

This experiment shows *why* a companion paper is needed: the naive
caching refinement (cache neighbor variables, act on the caches) does
NOT preserve convergence — the model checker exhibits weakly-fair
livelocks — while a copy-priority daemon (protocol actions fire only
after the caches quiesce) recovers stabilization, and in practice a
random daemon converges anyway because the livelock needs an
adversarially coordinated schedule.

Columns: exact verdicts (weak-fair convergence of original vs refined),
livelock SCC size, and empirical stabilization rates of the refined
program under random and copy-priority daemons.
"""

import random

from repro.analysis import render_table
from repro.core import TRUE
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.refinement import refine_with_caches
from repro.scheduler import PriorityScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import balanced_tree, chain_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance

TRIALS = 15

SHAPES = [
    ("chain-3 (full refinement)", lambda: chain_tree(3), 0),
    ("star-3 (full refinement)", lambda: star_tree(3), 0),
    ("star-3 (reflect only)", lambda: star_tree(3), 1),
    ("star-4 (reflect only)", lambda: star_tree(4), 1),
]


def exact_verdicts(make_tree, max_remote):
    tree = make_tree()
    design = build_diffusing_design(tree)
    invariant = diffusing_invariant(tree)
    original_ok = check_tolerance(
        design.program, invariant, TRUE, design.program.state_space()
    ).ok
    refined = refine_with_caches(design.program, max_remote_processes=max_remote)
    refined_report = check_tolerance(
        refined, invariant, TRUE, refined.state_space()
    )
    livelock = (
        len(refined_report.convergence.counterexample.states)
        if refined_report.convergence.counterexample is not None
        else 0
    )
    return tree, design, refined, original_ok, refined_report.ok, livelock


def empirical_rates(refined, invariant, *, trials=TRIALS):
    outcomes = {}
    for label, make_scheduler in [
        ("random", lambda s: RandomScheduler(s)),
        (
            "priority",
            lambda s: PriorityScheduler(
                lambda name: name.startswith("copy."), RandomScheduler(s)
            ),
        ),
    ]:
        good = 0
        for trial in range(trials):
            result = run(
                refined,
                refined.random_state(random.Random(trial * 7 + 1)),
                make_scheduler(trial),
                max_steps=60_000,
                target=invariant,
                stop_on_target=True,
            )
            good += result.stabilized
        outcomes[label] = good / trials
    return outcomes


def test_e11_refinement(benchmark, report):
    benchmark(lambda: exact_verdicts(lambda: chain_tree(3), 0))

    rows = []
    for name, make_tree, max_remote in SHAPES:
        tree, design, refined, original_ok, refined_ok, livelock = exact_verdicts(
            make_tree, max_remote
        )
        rates = empirical_rates(refined, diffusing_invariant(tree))
        rows.append(
            [
                name,
                len(refined.variables) - len(design.program.variables),
                original_ok,
                refined_ok,
                livelock if livelock else "-",
                f"{rates['random']:.0%}",
                f"{rates['priority']:.0%}",
            ]
        )

    # A larger instance, priority daemon only (exact check infeasible).
    tree = balanced_tree(2, 2)
    design = build_diffusing_design(tree)
    refined = refine_with_caches(design.program, max_remote_processes=1)
    rates = empirical_rates(refined, diffusing_invariant(tree))
    rows.append(
        [
            "balanced-7 (reflect only)",
            len(refined.variables) - len(design.program.variables),
            True,
            "(too large)",
            "-",
            f"{rates['random']:.0%}",
            f"{rates['priority']:.0%}",
        ]
    )

    table = render_table(
        [
            "instance",
            "cache vars",
            "original converges (weak)",
            "refined converges (weak)",
            "livelock SCC size",
            "refined sim: random",
            "refined sim: priority",
        ],
        rows,
        title="E11: naive caching refinement vs convergence (Section 8)",
    )
    report("e11_refinement", table)

    exact_rows = rows[:4]
    assert all(row[2] is True for row in exact_rows)
    assert all(row[3] is False for row in exact_rows)  # the headline finding
    assert all(row[6] == "100%" for row in rows)  # priority daemon recovers
