"""E19 — zero-enumeration obligation discharge by the static analyzer.

The semantic static analysis PR's acceptance bar: with the
:class:`~repro.staticcheck.interference.StaticDischarger` fast path on
(``certify_compositional(semantic=True)``, the default), at least 30%
of the compositional obligations across the design-capable library must
be discharged with **zero enumeration** — no projected state space, only
formula-sized reasoning — and on exactly those obligations the static
route must be at least 10x faster per obligation than the projected
sweep that the enumerative path (``semantic=False``) runs instead.
Verdicts must agree bit for bit, obligation set for obligation set.

Methodology: per-obligation cost is measured in the proof cache's
steady state. The discharger memoizes proof outcomes process-wide
(renaming-invariant keys shared across runs, sizes and families), so
each instance is certified once to populate the cache — the cold cost
is reported alongside — and the timed pass measures what repeated
certification, the lint/serve deployment context, actually pays per
obligation. The enumerative sweep has no such cache; its warm and cold
costs are the same.

Timings land in ``BENCH_verification.json`` under the
``static_discharge`` suite.

Run standalone as a CI perf smoke (seconds)::

    PYTHONPATH=src python benchmarks/bench_e19_static_discharge.py --quick
"""

import time

from repro.analysis import render_table
from repro.compositional import certify_compositional
from repro.protocols.library import CASES

#: The design-capable library cases — the certifier's whole domain.
DESIGN_CASES = (
    "diffusing-chain",
    "diffusing-star",
    "coloring-chain",
    "leader-election-star",
)

SIZES = (4, 6, 8)

#: Acceptance bars (ISSUE 8).
MIN_STATIC_FRACTION = 0.30
MIN_PER_OBLIGATION_SPEEDUP = 10.0


def _measure(name: str, size: int) -> dict:
    """Certify one instance both ways; return the comparison record.

    The first semantic pass populates the process-wide proof cache and
    is reported as the cold cost; the second, timed pass measures the
    steady-state per-obligation cost (see the module docstring).
    """
    design = CASES[name].build_design(size)
    started = time.perf_counter()
    cold = certify_compositional(design, semantic=True)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    static = certify_compositional(design, semantic=True)
    static_seconds = time.perf_counter() - started

    started = time.perf_counter()
    swept = certify_compositional(design, semantic=False)
    swept_seconds = time.perf_counter() - started

    # Warming must not change anything observable.
    assert [(o.name, o.subject, o.discharged_by) for o in cold.obligations] == [
        (o.name, o.subject, o.discharged_by) for o in static.obligations
    ], f"{name} n={size}: cache warm-up changed the obligation record"

    for field in ("status", "ok", "classification", "stabilizing", "theorem"):
        assert getattr(static, field) == getattr(swept, field), (
            f"{name} n={size}: semantic flips {field}"
        )
    assert static.ok, f"{name} n={size}: refused: {static.refusal}"

    swept_by_key = {(o.name, o.subject): o for o in swept.obligations}
    static_obligations = [
        o for o in static.obligations if o.discharged_by == "static"
    ]
    assert {(o.name, o.subject) for o in static.obligations} == set(
        swept_by_key
    ), f"{name} n={size}: obligation sets differ"

    # Per-obligation cost of the same obligations down each route.
    static_cost = sum(o.seconds for o in static_obligations)
    swept_cost = sum(
        swept_by_key[(o.name, o.subject)].seconds for o in static_obligations
    )
    return {
        "case": f"{name} (n={size})",
        "obligations": len(static.obligations),
        "static": len(static_obligations),
        "static_fraction": len(static_obligations) / len(static.obligations),
        "certificates": len(static.static_certificates),
        "static_route_seconds": static_cost,
        "sweep_route_seconds": swept_cost,
        "per_obligation_speedup": (
            swept_cost / static_cost if static_cost > 0 else float("inf")
        ),
        "semantic_cold_seconds": cold_seconds,
        "semantic_total_seconds": static_seconds,
        "enumerative_total_seconds": swept_seconds,
    }


def _sweep(sizes=SIZES):
    instances = [
        _measure(name, size) for name in DESIGN_CASES for size in sizes
    ]
    total = sum(i["obligations"] for i in instances)
    statics = sum(i["static"] for i in instances)
    static_cost = sum(i["static_route_seconds"] for i in instances)
    swept_cost = sum(i["sweep_route_seconds"] for i in instances)
    summary = {
        "obligations": total,
        "static": statics,
        "static_fraction": statics / total,
        "per_obligation_speedup": (
            swept_cost / static_cost if static_cost > 0 else float("inf")
        ),
    }
    return instances, summary


def test_e19_static_discharge(benchmark, report, bench_timings):
    benchmark(
        lambda: certify_compositional(
            CASES["diffusing-chain"].build_design(6), semantic=True
        )
    )

    instances, summary = _sweep()
    assert summary["static_fraction"] >= MIN_STATIC_FRACTION, (
        f"only {summary['static_fraction']:.0%} of obligations discharged "
        f"statically (bar: {MIN_STATIC_FRACTION:.0%})"
    )
    assert summary["per_obligation_speedup"] >= MIN_PER_OBLIGATION_SPEEDUP, (
        f"static route only {summary['per_obligation_speedup']:.1f}x faster "
        f"per obligation (bar: {MIN_PER_OBLIGATION_SPEEDUP:.0f}x)"
    )

    rows = [
        [
            i["case"],
            str(i["obligations"]),
            str(i["static"]),
            f"{i['static_fraction']:.0%}",
            f"{i['sweep_route_seconds'] * 1000:.2f}ms",
            f"{i['static_route_seconds'] * 1000:.2f}ms",
            f"{i['per_obligation_speedup']:.0f}x",
        ]
        for i in instances
    ]
    rows.append(
        [
            "TOTAL",
            str(summary["obligations"]),
            str(summary["static"]),
            f"{summary['static_fraction']:.0%}",
            "",
            "",
            f"{summary['per_obligation_speedup']:.0f}x",
        ]
    )
    report(
        "e19_static_discharge",
        render_table(
            [
                "instance", "obligations", "static", "fraction",
                "sweep cost", "static cost", "speedup",
            ],
            rows,
            title="E19: zero-enumeration static discharge "
            f"(bars: ≥{MIN_STATIC_FRACTION:.0%} static, "
            f"≥{MIN_PER_OBLIGATION_SPEEDUP:.0f}x per obligation)",
        ),
    )
    bench_timings(
        "static_discharge",
        {
            "min_static_fraction": MIN_STATIC_FRACTION,
            "min_per_obligation_speedup": MIN_PER_OBLIGATION_SPEEDUP,
            "summary": summary,
            "instances": instances,
        },
    )


# ----------------------------------------------------------------------
# CI perf smoke: python benchmarks/bench_e19_static_discharge.py --quick
# ----------------------------------------------------------------------


def run_quick() -> int:
    """Fast smoke: one mid-size instance per case, both bars enforced.

    Returns a process exit code.
    """
    failures = []
    print(
        f"static discharge perf smoke: {len(DESIGN_CASES)} cases at n=6, "
        f"bars >= {MIN_STATIC_FRACTION:.0%} static / "
        f">= {MIN_PER_OBLIGATION_SPEEDUP:.0f}x per obligation"
    )
    instances, summary = _sweep(sizes=(6,))
    for i in instances:
        print(
            f"  {i['case']:<28} obligations={i['obligations']:4} "
            f"static={i['static']:4} ({i['static_fraction']:.0%})  "
            f"speedup={i['per_obligation_speedup']:6.0f}x"
        )
    if summary["static_fraction"] < MIN_STATIC_FRACTION:
        failures.append(
            f"static fraction {summary['static_fraction']:.0%} below "
            f"{MIN_STATIC_FRACTION:.0%}"
        )
    if summary["per_obligation_speedup"] < MIN_PER_OBLIGATION_SPEEDUP:
        failures.append(
            f"per-obligation speedup {summary['per_obligation_speedup']:.1f}x "
            f"below {MIN_PER_OBLIGATION_SPEEDUP:.0f}x"
        )
    if failures:
        import sys

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"static discharge perf smoke passed: "
        f"{summary['static_fraction']:.0%} static at "
        f"{summary['per_obligation_speedup']:.0f}x"
    )
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast smoke instead of the full benchmark",
    )
    arguments = parser.parse_args()
    if arguments.quick:
        raise SystemExit(run_quick())
    import pytest

    raise SystemExit(pytest.main([__file__, "-q"]))
