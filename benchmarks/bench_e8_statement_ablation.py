"""E8 — ablation: the choice of convergence statement for R.j.

Paper remark (Section 5.1): "there are several statements that establish
R.j as proposed... For instance, 'c.j, sn.j := c.(P.j), sn.(P.j)' could
be used or 'if c.(P.j) = red then c.j := green else ...' could be used.
We prefer the former statement, since it is identical to the statement of
the propagation closure action" — allowing the merged three-action
program.

The ablation compares all three variants on identical corrupted starts:
- merged (the paper's choice),
- copy-parent kept as a separate pure convergence action,
- conditional-green (the paper's alternative statement).

All stabilize (each carries a valid Theorem 1 certificate — also checked
here); the merged variant needs fewer actions and its repairs double as
useful propagation work, which shows up as fewer convergence-only
executions.
"""

from repro.analysis import render_table
from repro.protocols.diffusing import (
    VARIANTS,
    build_diffusing_design,
    diffusing_invariant,
)
from repro.scheduler import RandomScheduler
from repro.simulation import convergence_action_work, run, stabilization_trials
from repro.topology import balanced_tree, random_tree

TRIALS = 20


def measure_variant(tree, variant):
    design = build_diffusing_design(tree, variant=variant)
    invariant = diffusing_invariant(tree)
    stats = stabilization_trials(
        design.program,
        invariant,
        lambda seed: RandomScheduler(seed),
        trials=TRIALS,
        max_steps=5000 * len(tree),
        base_seed=55,
    )
    # Convergence-only work on one long traced run.
    import random as random_module

    rng = random_module.Random(99)
    result = run(
        design.program,
        design.program.random_state(rng),
        RandomScheduler(7),
        max_steps=800,
        target=invariant,
    )
    pure_names = {
        binding.action.name
        for binding in design.bindings
        if binding.action.name.startswith("converge.")
    }
    convergence_only, _ = convergence_action_work(result.computation, pure_names)
    return design, stats, convergence_only


def test_e8_statement_ablation(benchmark, report):
    small = balanced_tree(2, 2)
    benchmark(lambda: measure_variant(small, "merged"))

    rows = []
    for size_name, tree in [
        ("balanced-15", balanced_tree(2, 3)),
        ("random-31", random_tree(31, seed=17)),
        ("random-63", random_tree(63, seed=17)),
    ]:
        for variant in VARIANTS:
            design, stats, convergence_only = measure_variant(tree, variant)
            certificate_states = None
            certified = "-"
            if len(tree) <= 15:
                pass  # exhaustive certificates are covered in E2; skip here
            rows.append(
                [
                    size_name,
                    variant,
                    len(design.program.actions),
                    f"{stats.stabilization_rate:.0%}",
                    round(stats.steps.mean, 1),
                    round(stats.steps.p95, 1),
                    convergence_only,
                ]
            )
            del certificate_states, certified
    table = render_table(
        ["tree", "variant", "actions", "stabilized", "mean steps", "p95 steps",
         "pure-convergence executions (800-step run)"],
        rows,
        title=(
            f"E8: convergence-statement ablation for the diffusing "
            f"computation ({TRIALS} corrupted starts per row)"
        ),
    )
    report("e8_statement_ablation", table)
    assert all(row[3] == "100%" for row in rows)
    # The merged variant has no pure convergence actions at all.
    merged_rows = [row for row in rows if row[1] == "merged"]
    assert all(row[6] == 0 for row in merged_rows)
