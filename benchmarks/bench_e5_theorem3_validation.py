"""E5 — Theorem 3's layer conditions hold for the paper's token ring.

Paper claim (Section 7.1): partitioning S's conjuncts into two layers —
the inequalities x.j >= x.(j+1) and the equalities x.j = x.(j+1) — and
serving both with the single merged action x.j != x.(j+1) -> x.(j+1) :=
x.j satisfies Theorem 3, "hence the resulting program is true-tolerant
for S".

The certificate is checked exhaustively over finite windows of counter
values (the obligations are local, so a window exhibiting every ordering
pattern of adjacent counters suffices; widening the window does not
change any verdict — also shown in the table).
"""

import time

from repro.analysis import render_table
from repro.protocols.token_ring import build_token_ring_design, window_states
from repro.core import validate_theorem3


def certify(n_nodes: int, lo: int, hi: int):
    design = build_token_ring_design(n_nodes)
    states = window_states(n_nodes, lo, hi)
    started = time.perf_counter()
    certificate = validate_theorem3(
        design.candidate, design.layers, design.nodes, states
    )
    elapsed = time.perf_counter() - started
    return design, states, certificate, elapsed


def test_e5_theorem3_conditions(benchmark, report):
    benchmark(lambda: certify(3, 0, 2))

    rows = []
    for n_nodes, lo, hi in [(3, 0, 2), (3, 0, 4), (4, 0, 3), (5, 0, 3), (6, 0, 2)]:
        design, states, certificate, elapsed = certify(n_nodes, lo, hi)
        per_layer = [
            graph.classification()
            for graph in (
                design.graph.subgraph(design.layers[0]),
                design.graph.subgraph(design.layers[1]),
            )
        ]
        ok_count = sum(1 for c in certificate.conditions if c.ok)
        rows.append(
            [
                n_nodes,
                f"[{lo},{hi}]",
                len(states),
                per_layer[0],
                per_layer[1],
                f"{ok_count}/{len(certificate.conditions)}",
                certificate.ok,
                f"{elapsed:.2f}s",
            ]
        )
    table = render_table(
        ["ring size", "window", "states", "layer-0 graph", "layer-1 graph",
         "conditions ok", "certified", "time"],
        rows,
        title="E5: Theorem 3 validation of the paper's token-ring design",
    )
    report("e5_theorem3_validation", table)
    assert all(row[6] for row in rows)
