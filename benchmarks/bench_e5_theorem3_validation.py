"""E5 — Theorem 3's layer conditions hold for the paper's token ring.

Paper claim (Section 7.1): partitioning S's conjuncts into two layers —
the inequalities x.j >= x.(j+1) and the equalities x.j = x.(j+1) — and
serving both with the single merged action x.j != x.(j+1) -> x.(j+1) :=
x.j satisfies Theorem 3, "hence the resulting program is true-tolerant
for S".

The certificate is checked exhaustively over finite windows of counter
values (the obligations are local, so a window exhibiting every ordering
pattern of adjacent counters suffices; widening the window does not
change any verdict — also shown in the table). Certification runs
through the verification service with ``theorem="3"`` forced and a
window-labelled cache key, and each window is re-requested warm to
confirm the cache answers the repeat.
"""

import time

from repro.analysis import render_table
from repro.protocols.token_ring import build_token_ring_design, window_states
from repro.verification import VerificationService


def certify(service, n_nodes: int, lo: int, hi: int):
    design = build_token_ring_design(n_nodes)
    states = window_states(n_nodes, lo, hi)
    started = time.perf_counter()
    record = service.validate_design(
        design,
        states,
        theorem="3",
        case=f"token ring n={n_nodes} window[{lo},{hi}]",
        states_key=f"window[{lo},{hi}]",
    )
    elapsed = time.perf_counter() - started
    return design, states, record, elapsed


def test_e5_theorem3_conditions(benchmark, report, bench_timings):
    bench_service = VerificationService()
    benchmark(lambda: certify(bench_service, 3, 0, 2))

    service = VerificationService()
    rows = []
    instances = []
    for n_nodes, lo, hi in [(3, 0, 2), (3, 0, 4), (4, 0, 3), (5, 0, 3), (6, 0, 2)]:
        design, states, record, elapsed = certify(service, n_nodes, lo, hi)
        _, _, warm, warm_elapsed = certify(service, n_nodes, lo, hi)
        assert warm == record  # cache hit: identical record, no recompute
        assert record["theorem"].startswith("Theorem 3")
        per_layer = [
            graph.classification()
            for graph in (
                design.graph.subgraph(design.layers[0]),
                design.graph.subgraph(design.layers[1]),
            )
        ]
        rows.append(
            [
                n_nodes,
                f"[{lo},{hi}]",
                len(states),
                per_layer[0],
                per_layer[1],
                f"{record['conditions_ok']}/{record['conditions']}",
                record["ok"],
                f"{elapsed:.2f}s",
                f"{warm_elapsed * 1000:.1f}ms",
            ]
        )
        instances.append(
            {
                "case": record["case"],
                "states": len(states),
                "theorem": record["theorem"],
                "cold_seconds": elapsed,
                "warm_seconds": warm_elapsed,
                "ok": record["ok"],
            }
        )
    table = render_table(
        ["ring size", "window", "states", "layer-0 graph", "layer-1 graph",
         "conditions ok", "certified", "cold", "warm"],
        rows,
        title="E5: Theorem 3 validation of the paper's token-ring design "
        "(through the verification service)",
    )
    report("e5_theorem3_validation", table)
    bench_timings("e5", {"instances": instances, **service.stats()})
    assert all(row[6] for row in rows)
