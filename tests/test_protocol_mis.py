"""Tests for the stabilizing maximal-independent-set protocol."""

import random

import pytest

from repro.core import TRUE
from repro.protocols.independent_set import (
    build_mis_program,
    member_var,
    members,
    mis_invariant,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
)
from repro.verification.checker import _check_tolerance as check_tolerance


class TestExhaustive:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: path_graph(5),
            lambda: cycle_graph(5),
            lambda: complete_graph(4),
            lambda: random_connected_graph(6, 3, seed=2),
        ],
        ids=["path5", "cycle5", "complete4", "random6"],
    )
    def test_stabilizing_weak_and_unfair(self, make_graph):
        graph = make_graph()
        program = build_mis_program(graph)
        states = list(program.state_space())
        invariant = mis_invariant(graph)
        assert check_tolerance(program, invariant, TRUE, states, fairness="weak").ok
        assert check_tolerance(program, invariant, TRUE, states, fairness="none").ok

    def test_silent_in_legitimate_states(self):
        graph = path_graph(4)
        program = build_mis_program(graph)
        invariant = mis_invariant(graph)
        for state in program.state_space():
            if invariant(state):
                assert program.is_terminal(state), state


class TestInvariant:
    def test_independence_checked(self):
        graph = path_graph(3)
        invariant = mis_invariant(graph)
        program = build_mis_program(graph)
        both_in = program.make_state(
            {member_var(0): True, member_var(1): True, member_var(2): False}
        )
        assert not invariant(both_in)

    def test_maximality_checked(self):
        graph = path_graph(3)
        invariant = mis_invariant(graph)
        program = build_mis_program(graph)
        empty = program.make_state(
            {member_var(j): False for j in graph.nodes}
        )
        assert not invariant(empty)

    def test_alternating_set_on_path(self):
        graph = path_graph(5)
        invariant = mis_invariant(graph)
        program = build_mis_program(graph)
        state = program.make_state(
            {member_var(j): j % 2 == 0 for j in graph.nodes}
        )
        assert invariant(state)


class TestSimulation:
    def test_converges_at_scale(self):
        graph = random_connected_graph(30, 20, seed=9)
        program = build_mis_program(graph)
        invariant = mis_invariant(graph)
        rng = random.Random(3)
        for trial in range(6):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=50_000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized
            final_members = members(graph, result.computation.final_state)
            for u, v in graph.edges():
                assert not (u in final_members and v in final_members)

    def test_deterministic_daemon_converges(self):
        graph = cycle_graph(7)
        program = build_mis_program(graph)
        invariant = mis_invariant(graph)
        result = run(
            program,
            program.make_state({member_var(j): True for j in graph.nodes}),
            FirstEnabledScheduler(),
            max_steps=1000,
            target=invariant,
            stop_on_target=True,
        )
        assert result.stabilized
