"""Tests for the message-passing channel substrate."""

import pytest

from repro.core import State
from repro.messaging import FifoChannel, SlotChannel


class TestSlotChannel:
    def test_variable_domain(self):
        channel = SlotChannel("ch", [0, 1, 2], process=0)
        assert None in channel.variable.domain
        assert 2 in channel.variable.domain
        assert 3 not in channel.variable.domain
        assert channel.variable.process == 0

    def test_empty_and_head(self):
        channel = SlotChannel("ch", [0, 1])
        assert channel.is_empty(State({"ch": None}))
        assert not channel.is_empty(State({"ch": 1}))
        assert channel.head(State({"ch": 1})) == 1
        assert channel.head(State({"ch": None})) is None

    def test_receive_effect_is_none(self):
        assert SlotChannel("ch", [0]).receive_effect() is None


class TestFifoChannel:
    def test_domain_enumerates_queues(self):
        channel = FifoChannel("q", ["a", "b"], capacity=2)
        domain = channel.variable.domain
        assert () in domain
        assert ("a",) in domain
        assert ("a", "b") in domain
        assert ("a", "b", "a") not in domain  # over capacity
        assert domain.size() == 1 + 2 + 4

    def test_send_appends(self):
        channel = FifoChannel("q", [0, 1], capacity=2)
        state = State({"q": (0,)})
        assert channel.after_send(state, 1) == (0, 1)

    def test_send_to_full_drops(self):
        channel = FifoChannel("q", [0, 1], capacity=2)
        state = State({"q": (0, 1)})
        assert channel.after_send(state, 0) == (0, 1)

    def test_receive_pops_head(self):
        channel = FifoChannel("q", [0, 1], capacity=2)
        state = State({"q": (0, 1)})
        assert channel.head(state) == 0
        assert channel.after_receive(state) == (1,)

    def test_receive_from_empty_rejected(self):
        channel = FifoChannel("q", [0], capacity=1)
        with pytest.raises(ValueError, match="empty"):
            channel.after_receive(State({"q": ()}))

    def test_fullness(self):
        channel = FifoChannel("q", [0], capacity=1)
        assert channel.is_full(State({"q": (0,)}))
        assert not channel.is_full(State({"q": ()}))
        assert channel.is_empty(State({"q": ()}))

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            FifoChannel("q", [0], capacity=0)
