"""Tests for the x/y/z running example (paper Sections 4 and 6).

The example's whole point is the contrast between three convergence
designs for the same constraint set {x != y, x <= z}: an out-tree design
(Theorem 1), an ordered same-target design (Theorem 2), and an
oscillating design that fails both the theorem conditions *and* actual
convergence.
"""

import pytest

from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
    xyz_invariant,
)
from repro.core import State
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.verification import check_convergence, explore, worst_case_convergence_steps

WINDOW = window_states(3)
S = xyz_invariant()


class TestGraphShapes:
    def test_out_tree_shape(self):
        graph = build_out_tree_design().graph
        assert graph.classification() == "out-tree"
        edges = {(e.source.name, e.target.name) for e in graph.edges}
        assert edges == {("x", "y"), ("x", "z")}

    def test_ordered_shape(self):
        graph = build_ordered_design().graph
        assert graph.classification() == "self-looping"
        targets = {e.target.name for e in graph.edges}
        assert targets == {"x"}

    def test_oscillating_shares_the_ordered_shape(self):
        # The graphs are identical in shape — only the statements differ.
        good = build_ordered_design().graph
        bad = build_oscillating_design().graph
        assert good.classification() == bad.classification() == "self-looping"


class TestCertificates:
    def test_out_tree_validates(self):
        report = build_out_tree_design().validate(WINDOW)
        assert report.ok and "Theorem 1" in report.selected.theorem

    def test_ordered_validates(self):
        report = build_ordered_design().validate(WINDOW)
        assert report.ok and "Theorem 2" in report.selected.theorem

    def test_oscillating_rejected(self):
        report = build_oscillating_design().validate(WINDOW)
        assert not report.ok
        assert any(
            "linear order" in c.name for c in report.selected.failures()
        )


class TestModelChecking:
    @pytest.mark.parametrize(
        "build", [build_out_tree_design, build_ordered_design],
        ids=["out-tree", "ordered"],
    )
    def test_good_designs_converge_even_unfairly(self, build):
        design = build(3)
        ts = explore(design.program, WINDOW)
        result = check_convergence(
            design.program, ts.states, S, fairness="none", system=ts
        )
        assert result.ok

    def test_oscillating_design_diverges(self):
        design = build_oscillating_design(3)
        ts = explore(design.program, WINDOW)
        result = check_convergence(
            design.program, ts.states, S, fairness="weak", system=ts
        )
        assert not result.ok
        # The paper's oscillation: the two convergence actions alternate.
        cycle = result.counterexample.states
        assert len(cycle) == 2

    def test_good_designs_quiesce_quickly(self):
        # Worst case over the whole window is tiny: each action fires at
        # most a couple of times (the paper's termination argument).
        design = build_ordered_design(3)
        ts = explore(design.program, WINDOW)
        steps = worst_case_convergence_steps(design.program, ts.states, S, system=ts)
        assert steps is not None
        assert steps <= 3


class TestConcreteOscillation:
    def test_paper_style_ping_pong(self):
        # From x = y = z the bad design bounces between fixing c1 and c2.
        design = build_oscillating_design()
        program = design.program
        initial = State({"x": 0, "y": 0, "z": 0})
        result = run(program, initial, FirstEnabledScheduler(), max_steps=50)
        assert result.steps == 50  # never quiesces
        assert not any(S(state) for state in result.computation.states())

    def test_good_design_from_same_state_quiesces(self):
        design = build_ordered_design()
        program = design.program
        initial = State({"x": 0, "y": 0, "z": 0})
        result = run(program, initial, FirstEnabledScheduler(), max_steps=50)
        assert result.terminated
        assert S(result.computation.final_state)

    def test_random_runs_establish_invariant(self):
        design = build_out_tree_design()
        program = design.program
        for seed in range(10):
            initial = program.random_state(__import__("random").Random(seed))
            result = run(
                program,
                initial,
                RandomScheduler(seed),
                max_steps=100,
                target=S,
                stop_on_target=True,
            )
            assert result.reached_target
