"""Unit tests for the simulation engine."""

import random

from repro.core import Predicate, State
from repro.faults import LambdaFault, ScheduledFaults
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run

N_ZERO = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
N_THREE = Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",))


class TestBasicRuns:
    def test_step_budget_respected(self, counter_program):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=10,
        )
        assert result.steps == 10
        assert not result.terminated
        assert len(result.computation) == 10

    def test_terminal_state_ends_run(self):
        from repro.core import IntegerRangeDomain, Program, Variable

        silent = Program("silent", [Variable("n", IntegerRangeDomain(0, 3))], [])
        result = run(silent, State({"n": 1}), FirstEnabledScheduler(), max_steps=10)
        assert result.terminated
        assert result.steps == 0
        assert result.computation.terminated

    def test_stop_on_target(self, counter_program):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=100,
            target=N_THREE,
            stop_on_target=True,
        )
        assert result.reached_target
        assert result.steps == 3
        assert result.target_index == 3
        assert result.computation.final_state["n"] == 3

    def test_target_already_holding(self, counter_program):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=100,
            target=N_ZERO,
            stop_on_target=True,
        )
        assert result.steps == 0
        assert result.target_index == 0
        assert result.stabilization_index == 0


class TestStabilizationMeasurement:
    def test_stabilization_index_tracks_last_violation(self, counter_program):
        # n cycles 0..3 repeatedly; with the window ending at n = 2 the
        # target n = 0 was reached but did not stabilize.
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=18,
            target=N_ZERO,
        )
        assert result.reached_target
        assert result.stabilization_index is None

    def test_stabilized_when_target_holds_to_end(self, counter_program):
        result = run(
            counter_program,
            State({"n": 1}),
            FirstEnabledScheduler(),
            max_steps=2,
            target=N_THREE,
        )
        # Steps: 1 -> 2 -> 3; target first holds at index 2 and holds at
        # the end of the recorded window.
        assert result.stabilization_index == 2
        assert result.stabilized


class TestFaultInjection:
    def test_scheduled_fault_applied(self, counter_program):
        bump = LambdaFault("bump", lambda s, rng: s.update({"n": 3}))
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=5,
            faults=ScheduledFaults({2: bump}),
        )
        assert result.fault_count == 1
        # Fault steps appear in the trace as action-less steps.
        fault_steps = [s for s in result.computation.steps if not s.actions]
        assert len(fault_steps) == 1
        assert fault_steps[0].state["n"] == 3

    def test_fault_rng_reproducible(self, two_var_program):
        scramble = LambdaFault(
            "scramble", lambda s, rng: s.update({"a": rng.randint(0, 2)})
        )
        outcomes = []
        for _ in range(2):
            result = run(
                two_var_program,
                State({"a": 0, "b": 0}),
                RandomScheduler(1),
                max_steps=6,
                faults=ScheduledFaults({1: scramble, 3: scramble}),
                fault_rng=random.Random(9),
            )
            outcomes.append(list(result.computation.states()))
        assert outcomes[0] == outcomes[1]


class TestTraceRecording:
    def test_record_trace_off_keeps_final_state(self, counter_program):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=7,
            target=N_THREE,
            record_trace=False,
        )
        # Only the final state is appended.
        assert len(result.computation) == 1
        assert result.computation.final_state["n"] == (7 % 4)

    def test_no_duplicate_final_state_on_immediate_termination(self):
        from repro.core import IntegerRangeDomain, Program, Variable

        silent = Program("silent", [Variable("n", IntegerRangeDomain(0, 3))], [])
        result = run(
            silent,
            State({"n": 1}),
            FirstEnabledScheduler(),
            max_steps=10,
            record_trace=False,
        )
        # A zero-step run used to append the initial state again; the
        # trace must hold the single visited state exactly once.
        assert result.terminated
        assert len(result.computation) == 0
        assert list(result.computation.states()) == [State({"n": 1})]
        assert result.computation.final_state == State({"n": 1})

    def test_no_duplicate_when_target_holds_initially(self, counter_program):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=100,
            target=N_ZERO,
            stop_on_target=True,
            record_trace=False,
        )
        assert result.steps == 0
        assert result.target_index == 0
        assert result.stabilization_index == 0
        assert len(result.computation) == 0
        assert list(result.computation.states()) == [State({"n": 0})]

    def test_stop_on_target_without_trace_keeps_final_state(
        self, counter_program
    ):
        result = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=100,
            target=N_THREE,
            stop_on_target=True,
            record_trace=False,
        )
        assert result.reached_target
        assert result.target_index == 3
        assert len(result.computation) == 1
        assert result.computation.final_state == State({"n": 3})

    def test_faults_counted_and_final_state_kept_without_trace(
        self, counter_program
    ):
        bump = LambdaFault("bump", lambda s, rng: s.update({"n": 3}))
        with_trace = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=5,
            target=N_ZERO,
            faults=ScheduledFaults({2: bump}),
        )
        without = run(
            counter_program,
            State({"n": 0}),
            FirstEnabledScheduler(),
            max_steps=5,
            target=N_ZERO,
            faults=ScheduledFaults({2: bump}),
            record_trace=False,
        )
        # Fault events contribute trace-time indices identically in both
        # modes, and the truncated trace still ends at the right state.
        assert without.fault_count == with_trace.fault_count == 1
        assert without.steps == with_trace.steps
        assert without.target_index == with_trace.target_index
        assert without.stabilization_index == with_trace.stabilization_index
        assert without.computation.final_state == with_trace.computation.final_state
        assert len(without.computation) == 1

    def test_metrics_identical_with_and_without_trace(self, counter_program):
        with_trace = run(
            counter_program,
            State({"n": 1}),
            FirstEnabledScheduler(),
            max_steps=2,
            target=N_THREE,
        )
        without = run(
            counter_program,
            State({"n": 1}),
            FirstEnabledScheduler(),
            max_steps=2,
            target=N_THREE,
            record_trace=False,
        )
        assert with_trace.target_index == without.target_index
        assert with_trace.stabilization_index == without.stabilization_index
