"""Unit tests for trace/state rendering helpers."""

from repro.core import State
from repro.scheduler import Computation
from repro.verification import (
    format_computation,
    format_state,
    format_state_diff,
    format_states,
)


class TestFormatState:
    def test_sorted_pairs(self):
        text = format_state(State({"b": 2, "a": 1}))
        assert text.index("a=1") < text.index("b=2")

    def test_wraps_long_states(self):
        state = State({f"v{i}": i for i in range(10)})
        text = format_state(state, per_line=4)
        assert len(text.splitlines()) == 3


class TestFormatStateDiff:
    def test_only_changes_listed(self):
        before = State({"x": 1, "y": 2})
        after = State({"x": 5, "y": 2})
        diff = format_state_diff(before, after)
        assert "x: 1 -> 5" in diff
        assert "y" not in diff

    def test_no_change(self):
        state = State({"x": 1})
        assert format_state_diff(state, state) == "(no change)"


class TestFormatStates:
    def test_limit_respected(self):
        states = [State({"x": i}) for i in range(15)]
        text = format_states(states, limit=3)
        assert "and 12 more" in text


class TestFormatComputation:
    def test_renders_steps_with_diffs(self, counter_program):
        inc = counter_program.action("inc")
        computation = Computation(initial=State({"n": 0}))
        computation.append((inc,), State({"n": 1}))
        computation.append((inc,), State({"n": 2}))
        text = format_computation(computation)
        assert "initial state" in text
        assert "step 1 [inc]: n: 0 -> 1" in text
        assert "step 2 [inc]: n: 1 -> 2" in text

    def test_terminated_marker(self):
        computation = Computation(initial=State({"n": 0}), terminated=True)
        assert "terminated" in format_computation(computation)

    def test_step_limit(self, counter_program):
        inc = counter_program.action("inc")
        reset = counter_program.action("reset")
        computation = Computation(initial=State({"n": 0}))
        value = 0
        for i in range(40):
            if value < 3:
                value += 1
                computation.append((inc,), State({"n": value}))
            else:
                value = 0
                computation.append((reset,), State({"n": 0}))
        text = format_computation(computation, limit=5)
        assert "more steps" in text
