"""Unit tests for computation traces."""

from repro.core import Predicate, State
from repro.scheduler import Computation


def trace_states(values):
    """A computation over a single variable n visiting the given values."""
    computation = Computation(initial=State({"n": values[0]}))
    for value in values[1:]:
        computation.append((), State({"n": value}))
    return computation


N_ZERO = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
N_SMALL = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))


class TestQueries:
    def test_states_iteration(self):
        computation = trace_states([3, 2, 1])
        assert [s["n"] for s in computation.states()] == [3, 2, 1]
        assert len(computation) == 2

    def test_final_state(self):
        assert trace_states([3, 2, 0]).final_state == State({"n": 0})
        assert trace_states([5]).final_state == State({"n": 5})

    def test_state_at(self):
        computation = trace_states([3, 2, 1])
        assert computation.state_at(0)["n"] == 3
        assert computation.state_at(2)["n"] == 1

    def test_first_index_where(self):
        computation = trace_states([3, 2, 0, 0])
        assert computation.first_index_where(N_ZERO) == 2
        assert computation.first_index_where(
            Predicate(lambda s: s["n"] == 9, name="n = 9", support=("n",))
        ) is None

    def test_eventually(self):
        assert trace_states([2, 1, 0]).eventually(N_ZERO)
        assert not trace_states([2, 1]).eventually(N_ZERO)

    def test_holds_from(self):
        computation = trace_states([3, 1, 0, 1])
        assert computation.holds_from(N_SMALL, 1)
        assert not computation.holds_from(N_ZERO, 1)

    def test_stabilization_index(self):
        # Violated at indices 0 and 2, fine afterwards.
        computation = trace_states([5, 0, 5, 0, 0])
        assert computation.stabilization_index(N_ZERO) == 3

    def test_stabilization_index_none_when_final_state_violates(self):
        computation = trace_states([0, 0, 5])
        assert computation.stabilization_index(N_ZERO) is None

    def test_stabilization_index_zero_when_always_held(self):
        assert trace_states([0, 0]).stabilization_index(N_ZERO) == 0


class TestActionAccounting:
    def test_action_counts(self, counter_program):
        inc = counter_program.action("inc")
        reset = counter_program.action("reset")
        computation = Computation(initial=State({"n": 2}))
        computation.append((inc,), State({"n": 3}))
        computation.append((reset,), State({"n": 0}))
        computation.append((inc,), State({"n": 1}))
        counts = computation.action_counts()
        assert counts["inc"] == 2
        assert counts["reset"] == 1
        assert computation.executed_action_names() == {"inc", "reset"}

    def test_fault_steps_have_empty_actions(self):
        computation = trace_states([1, 2])
        assert computation.action_counts() == {}


class TestFairnessAudit:
    def test_continuously_enabled_never_executed_flagged(self, counter_program):
        inc = counter_program.action("inc")
        # inc stays enabled (n < 3 throughout) but only... build a trace
        # where only states with n < 3 occur and inc never executes.
        computation = Computation(initial=State({"n": 0}))
        computation.append((), State({"n": 1}))
        computation.append((), State({"n": 0}))
        assert computation.fairness_violations(counter_program) == ["inc"]

    def test_executed_action_not_flagged(self, counter_program):
        inc = counter_program.action("inc")
        computation = Computation(initial=State({"n": 0}))
        computation.append((inc,), State({"n": 1}))
        assert computation.fairness_violations(counter_program) == []

    def test_disabled_somewhere_not_flagged(self, counter_program):
        # reset is disabled at n = 0, so it is not continuously enabled.
        computation = Computation(initial=State({"n": 0}))
        computation.append((), State({"n": 3}))
        assert "reset" not in computation.fairness_violations(counter_program)

    def test_terminated_trace_never_flagged(self, counter_program):
        computation = Computation(initial=State({"n": 0}), terminated=True)
        assert computation.fairness_violations(counter_program) == []


class TestMaximality:
    def test_terminated_at_terminal_state_is_maximal(self):
        from repro.core import IntegerRangeDomain, Program, Variable

        silent = Program("silent", [Variable("n", IntegerRangeDomain(0, 3))], [])
        computation = Computation(initial=State({"n": 0}), terminated=True)
        assert computation.is_maximal(silent)

    def test_cut_off_trace_not_maximal(self, counter_program):
        computation = Computation(initial=State({"n": 0}))
        assert not computation.is_maximal(counter_program)
