"""Tests for DOT export and paper-style program listings."""

import pytest

from repro.analysis import constraint_graph_dot, transition_system_dot
from repro.core import render_program
from repro.protocols.three_constraint import build_out_tree_design
from repro.protocols.token_ring import build_token_ring_design
from repro.verification import build_transition_system


class TestConstraintGraphDot:
    def test_contains_nodes_edges_and_classification(self):
        graph = build_out_tree_design().graph
        dot = constraint_graph_dot(graph, title="xyz")
        assert dot.startswith('digraph "xyz" {')
        assert '"x" -> "y"' in dot
        assert '"x" -> "z"' in dot
        assert "out-tree" in dot
        assert dot.rstrip().endswith("}")

    def test_constraint_names_label_edges(self):
        dot = constraint_graph_dot(build_out_tree_design().graph)
        assert 'label="c1"' in dot
        assert 'label="c2"' in dot


class TestTransitionSystemDot:
    def test_renders_small_system(self, counter_program):
        ts = build_transition_system(
            counter_program, counter_program.state_space()
        )
        from repro.core import Predicate

        zero = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        dot = transition_system_dot(ts, highlight=zero)
        assert dot.count("->") == sum(len(e) for e in ts.edges)
        assert "fillcolor=lightgrey" in dot  # the highlighted state

    def test_size_guard(self, counter_program):
        ts = build_transition_system(
            counter_program, counter_program.state_space()
        )
        with pytest.raises(ValueError, match="refusing"):
            transition_system_dot(ts, max_states=2)


class TestRenderProgram:
    def test_token_ring_listing(self):
        program = build_token_ring_design(3).program
        listing = render_program(program)
        assert listing.startswith("program token-ring[3]")
        assert "x.0 : integer;" in listing
        assert "x.0 = x.N" in listing  # the initiate guard's display name
        assert "begin" in listing and listing.endswith("end")
        # One guard line per action.
        assert listing.count("->") == len(program.actions)

    def test_counter_listing(self, counter_program):
        listing = render_program(counter_program)
        assert "n : 0..3;" in listing
        assert "[inc]" in listing and "[reset]" in listing

    def test_enum_and_boolean_domains(self, chain3):
        from repro.protocols.diffusing import build_diffusing_design

        listing = render_program(build_diffusing_design(chain3).program)
        assert "c.0 : {green, red};" in listing
        assert "sn.0 : boolean;" in listing
