"""Tests for synchronous-daemon orbit analysis."""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    ValidationError,
    Variable,
)
from repro.verification import (
    check_synchronous_convergence,
    synchronous_orbit,
)


def flip_flop_program() -> Program:
    """Two processes copying each other's negation: synchronous 2-cycle."""
    domain = IntegerRangeDomain(0, 1)
    actions = []
    for mine, theirs in (("a", "b"), ("b", "a")):
        actions.append(
            Action(
                f"match.{mine}",
                Predicate(
                    lambda s, mine=mine, theirs=theirs: s[mine] != s[theirs],
                    name=f"{mine} != {theirs}",
                    support=(mine, theirs),
                ),
                Assignment({mine: lambda s, theirs=theirs: s[theirs]}),
                reads=(mine, theirs),
                process=mine,
            )
        )
    return Program(
        "flip-flop",
        [Variable("a", domain, process="a"), Variable("b", domain, process="b")],
        actions,
    )


AGREE = Predicate(lambda s: s["a"] == s["b"], name="a = b", support=("a", "b"))


class TestOrbit:
    def test_fixed_point(self):
        program = flip_flop_program()
        orbit = synchronous_orbit(program, State({"a": 1, "b": 1}))
        assert orbit.cycle == (State({"a": 1, "b": 1}),)
        assert orbit.converged_state == State({"a": 1, "b": 1})
        assert orbit.reaches(AGREE)

    def test_two_cycle(self):
        # Both copy simultaneously: (0,1) -> (1,0) -> (0,1) ...
        program = flip_flop_program()
        orbit = synchronous_orbit(program, State({"a": 0, "b": 1}))
        assert len(orbit.cycle) == 2
        assert orbit.converged_state is None
        assert not orbit.reaches(AGREE)

    def test_tail_then_cycle(self, counter_program):
        # The counter under the synchronous daemon cycles 0->1->2->3->0.
        orbit = synchronous_orbit(counter_program, State({"n": 2}))
        assert len(orbit.cycle) == 4
        assert orbit.tail == ()

    def test_conflict_detection_mode(self):
        domain = IntegerRangeDomain(0, 1)
        a1 = Action(
            "a1",
            Predicate(lambda s: s["x"] == 0, name="x = 0", support=("x",)),
            Assignment({"x": 1}),
            reads=("x",),
            process="p",
        )
        a2 = Action(
            "a2",
            Predicate(lambda s: s["x"] == 0, name="x = 0", support=("x",)),
            Assignment({"x": 0}),
            reads=("x",),
            process="p",
        )
        program = Program("conflicted", [Variable("x", domain, process="p")], [a1, a2])
        with pytest.raises(ValidationError, match="two enabled actions"):
            synchronous_orbit(program, State({"x": 0}), on_conflict="error")
        # Default mode resolves by program order: a1 fires.
        orbit = synchronous_orbit(program, State({"x": 0}))
        assert orbit.cycle == (State({"x": 1}),)

    def test_unknown_conflict_mode(self, counter_program):
        with pytest.raises(ValidationError, match="on_conflict"):
            synchronous_orbit(counter_program, State({"n": 0}), on_conflict="maybe")


class TestAggregateCheck:
    def test_flip_flop_oscillates_from_disagreeing_starts(self):
        program = flip_flop_program()
        report = check_synchronous_convergence(
            program, program.state_space(), AGREE
        )
        assert not report.ok
        assert report.oscillating_starts == 2  # (0,1) and (1,0)
        assert len(report.worst_cycle) == 2
        assert report.witness_start is not None

    def test_diffusing_converges_synchronously(self, chain3):
        from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant

        design = build_diffusing_design(chain3)
        report = check_synchronous_convergence(
            design.program,
            design.program.state_space(),
            diffusing_invariant(chain3),
        )
        assert report.ok
        assert report.checked == 64

    def test_token_ring_converges_synchronously(self):
        from repro.protocols.token_ring import build_dijkstra_ring

        program, spec = build_dijkstra_ring(4, 4)
        report = check_synchronous_convergence(
            program, program.state_space(), spec
        )
        assert report.ok
