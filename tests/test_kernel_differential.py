"""Differential tests: packed engine vs dict engine, verdict for verdict.

The packed kernel's contract is *bit-identical* results — the same
``ToleranceReport`` (including closure witnesses and convergence
counterexamples in the same order), the same transition systems, and the
same error messages — across the whole protocol library and a set of
crafted failing instances that exercise every counterexample path.
"""

import pytest

from repro.core import (
    Action,
    Assignment,
    FALSE,
    IntegerDomain,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.core.predicates import TRUE
from repro.kernel import PackedUnsupported
from repro.protocols.library import build_case, case_names
from repro.verification.checker import _check_tolerance as check_tolerance
from repro.verification.explorer import build_transition_system


def _both(program, invariant, fault_span, states=None, *, fairness="weak"):
    """Run both engines and assert the reports are equal; return one."""
    states = list(states) if states is not None else None
    dict_report = check_tolerance(
        program,
        invariant,
        fault_span,
        states,
        fairness=fairness,
        engine="dict",
    )
    packed_report = check_tolerance(
        program,
        invariant,
        fault_span,
        states,
        fairness=fairness,
        engine="packed",
    )
    assert packed_report == dict_report
    return dict_report


@pytest.mark.parametrize("name", case_names())
def test_library_stabilization_reports_identical(name):
    program, invariant = build_case(name)
    report = _both(program, invariant, TRUE)
    assert report.ok, f"{name} should verify"


@pytest.mark.parametrize("name", case_names())
def test_library_transition_systems_identical(name):
    program, _ = build_case(name)
    states = list(program.state_space())
    packed = build_transition_system(program, states, engine="packed")
    plain = build_transition_system(program, states, engine="dict")
    assert len(packed) == len(plain)
    assert list(packed.states) == list(plain.states)
    assert packed.edges == plain.edges
    assert packed.escapes == plain.escapes


def test_explicit_state_list_exercises_subset_path():
    # Passing the state list (instead of None) routes the packed engine
    # through its encode/memoize path rather than the full-space sweep.
    program, invariant = build_case("diffusing-chain")
    report = _both(program, invariant, TRUE, program.state_space())
    assert report.ok


def _counter(hi=3) -> Program:
    inc = Action(
        "inc",
        Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
        process="p",
    )
    reset = Action(
        "reset",
        Predicate(lambda s: s["n"] == hi, name=f"n = {hi}", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
        process="p",
    )
    return Program(
        "counter", [Variable("n", IntegerRangeDomain(0, hi), process="p")], [inc, reset]
    )


class TestFailingVerdictsIdentical:
    def test_s_closure_witnesses(self):
        # S = (n = 0) is not closed: 0 --inc--> 1 is the witness.
        program = _counter()
        invariant = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        report = _both(program, invariant, TRUE)
        assert not report.ok
        assert not report.s_closure.ok
        witness = report.s_closure.witnesses[0]
        assert witness.before == State({"n": 0})
        assert witness.action_name == "inc"
        assert witness.after == State({"n": 1})

    def test_convergence_cycle_counterexample_weak(self):
        # The counter loops forever; S = FALSE makes every state bad, so
        # the single always-enabled cycle is a weak-fairness trap.
        program = _counter()
        report = _both(program, FALSE, TRUE)
        assert not report.ok
        assert report.convergence.counterexample is not None
        assert report.convergence.counterexample.kind == "cycle"

    def test_convergence_cycle_counterexample_unfair(self):
        program = _counter()
        report = _both(program, FALSE, TRUE, fairness="none")
        assert not report.ok
        assert report.convergence.counterexample is not None
        assert report.convergence.counterexample.kind == "cycle"

    def test_convergence_deadlock_counterexample(self):
        # Only a decrement: n = 0 is a deadlock outside S = (n = 2).
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "dec-only", [Variable("n", IntegerRangeDomain(0, 2), process="p")], [dec]
        )
        invariant = Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",))
        report = _both(program, invariant, TRUE)
        assert not report.ok
        assert report.convergence.counterexample is not None
        assert report.convergence.counterexample.kind == "deadlock"
        assert report.convergence.counterexample.states == (State({"n": 0}),)

    def test_unclosed_fault_span_fails_without_counterexample(self):
        # T = (n <= 1) is not closed (1 --inc--> 2): convergence relative
        # to T is undefined and reported failed, on both engines.
        program = _counter()
        invariant = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        span = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        report = _both(program, invariant, span)
        assert not report.ok
        assert not report.t_closure.ok
        assert report.convergence.counterexample is None

    def test_strict_subset_of_closed_span_raises_identically(self):
        # T = TRUE is closed but the supplied states miss a successor:
        # both engines must refuse with the same message.
        program = _counter()
        invariant = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        subset = [State({"n": 0}), State({"n": 1})]
        with pytest.raises(ValueError) as dict_error:
            check_tolerance(program, invariant, TRUE, subset, engine="dict")
        with pytest.raises(ValueError) as packed_error:
            check_tolerance(program, invariant, TRUE, subset, engine="packed")
        assert str(packed_error.value) == str(dict_error.value)

    def test_raw_successor_t_closure_witness(self):
        # The increment overflows its domain at n = 3; T = (n <= 3) fails
        # on the raw successor State(n=4), producing identical witnesses.
        inc = Action(
            "inc",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "overflowing",
            [Variable("n", IntegerRangeDomain(0, 3), process="p")],
            [inc],
        )
        span = Predicate(lambda s: s["n"] <= 3, name="n <= 3", support=("n",))
        report = _both(program, FALSE, span)
        assert not report.t_closure.ok
        witness = report.t_closure.witnesses[0]
        assert witness.before == State({"n": 3})
        assert witness.after == State({"n": 4})


class TestAutoEngine:
    def test_auto_matches_dict_on_unpackable_program(self):
        count = Action(
            "count",
            Predicate(lambda s: s["n"] < 3, name="n < 3", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "unbounded",
            [Variable("n", IntegerDomain(), process="p")],
            [count],
        )
        invariant = Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",))
        states = [State({"n": v}) for v in range(4)]
        auto = check_tolerance(program, invariant, TRUE, states)
        plain = check_tolerance(program, invariant, TRUE, states, engine="dict")
        assert auto == plain
        with pytest.raises(PackedUnsupported):
            check_tolerance(program, invariant, TRUE, states, engine="packed")


class TestServiceAndBatch:
    def test_service_records_match_across_engines(self):
        from repro.verification.service import VerificationService

        program, invariant = build_case("coloring-chain")
        packed = VerificationService().verify_tolerance(
            program, invariant, engine="packed", case="c"
        )
        plain = VerificationService().verify_tolerance(
            program, invariant, engine="dict", case="c"
        )
        assert packed.record["engine"] == "packed"
        assert plain.record["engine"] == "dict"
        ignore = ("engine", "seconds")
        assert {k: v for k, v in packed.record.items() if k not in ignore} == {
            k: v for k, v in plain.record.items() if k not in ignore
        }
        assert packed.report == plain.report

    def test_batch_task_ships_packed_states(self):
        from repro.verification.parallel import (
            VerificationTask,
            pack_states,
            run_batch,
        )

        program, invariant = build_case("coloring-chain")
        task = VerificationTask(
            case="coloring-chain (packed states)",
            builder="repro.protocols.library:build_case",
            args=("coloring-chain",),
            states_key="full-explicit",
            packed_states=pack_states(program, list(program.state_space())),
        )
        baseline = VerificationTask(
            case="coloring-chain (packed states)",
            builder="repro.protocols.library:build_case",
            args=("coloring-chain",),
        )
        shipped, direct = run_batch([task, baseline], workers=1)
        assert shipped["ok"] and direct["ok"]
        for field in ("total_states", "span_states", "bad_states", "ok"):
            assert shipped[field] == direct[field]
