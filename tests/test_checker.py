"""Unit tests for the full T-tolerance checker."""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    TRUE,
    Variable,
)
from repro.verification.checker import _check_tolerance as check_tolerance


def make_program(actions):
    return Program("p", [Variable("n", IntegerRangeDomain(0, 5))], actions)


S_ZERO = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
T_SMALL = Predicate(lambda s: s["n"] <= 3, name="n <= 3", support=("n",))


def clamp_to_zero(guard_hi: int = 5) -> Action:
    return Action(
        "to-zero",
        Predicate(
            lambda s: 0 < s["n"] <= guard_hi,
            name=f"0 < n <= {guard_hi}",
            support=("n",),
        ),
        Assignment({"n": 0}),
        reads=("n",),
    )


class TestStabilizing:
    def test_stabilizing_program(self):
        program = make_program([clamp_to_zero()])
        report = check_tolerance(
            program, S_ZERO, TRUE, program.state_space()
        )
        assert report.ok
        assert report.stabilizing
        assert report.classification == "nonmasking"
        assert "T-tolerant" in report.describe()

    def test_masking_classification_when_s_equals_t(self):
        program = make_program([])
        report = check_tolerance(program, S_ZERO, S_ZERO, [State({"n": 0})])
        assert report.ok
        assert report.classification == "masking"


class TestNonmaskingWithProperSpan:
    def test_convergence_only_from_span(self):
        # The repair action works only inside the span n <= 3; states 4, 5
        # are outside T so they do not matter.
        program = make_program([clamp_to_zero(guard_hi=3)])
        report = check_tolerance(
            program, S_ZERO, T_SMALL, program.state_space()
        )
        assert report.ok
        assert not report.stabilizing
        assert report.convergence.span_states == 4

    def test_s_must_imply_t(self):
        # S = (n = 5) is not inside T = (n <= 3).
        s_five = Predicate(lambda s: s["n"] == 5, name="n = 5", support=("n",))
        program = make_program([])
        report = check_tolerance(program, s_five, T_SMALL, program.state_space())
        assert not report.ok
        assert not report.implication_ok


class TestFailures:
    def test_open_invariant_fails_closure(self):
        leak = Action(
            "leak",
            Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",)),
            Assignment({"n": 1}),
            reads=("n",),
        )
        program = make_program([leak, clamp_to_zero()])
        report = check_tolerance(program, S_ZERO, TRUE, program.state_space())
        assert not report.ok
        assert not report.s_closure.ok

    def test_open_fault_span_fails_without_crash(self):
        escape = Action(
            "escape",
            Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",)),
            Assignment({"n": 4}),
            reads=("n",),
        )
        program = make_program([escape, clamp_to_zero()])
        report = check_tolerance(program, S_ZERO, T_SMALL, program.state_space())
        assert not report.ok
        assert not report.t_closure.ok
        # Convergence is reported failed (undefined relative to open T)
        # rather than raising.
        assert not report.convergence.ok

    def test_non_converging_program_fails(self):
        stuck = make_program([])  # deadlocks outside S
        report = check_tolerance(stuck, S_ZERO, TRUE, stuck.state_space())
        assert not report.ok
        assert report.s_closure.ok and report.t_closure.ok
        assert not report.convergence.ok

    def test_partial_state_set_rejected(self):
        program = make_program([clamp_to_zero()])
        # Supply a strict subset whose successors leave it while T (TRUE)
        # is closed: the checker demands the full extension.
        inc = Action(
            "inc",
            Predicate(lambda s: s["n"] < 5, name="n < 5", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
        )
        program = make_program([inc])
        with pytest.raises(ValueError, match="full extension"):
            check_tolerance(program, S_ZERO, TRUE, [State({"n": 2})])

    def test_fairness_parameter_forwarded(self):
        spin = Action(
            "spin",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"]}),
            reads=("n",),
        )
        program = make_program([clamp_to_zero(), spin])
        weak = check_tolerance(program, S_ZERO, TRUE, program.state_space(), fairness="weak")
        unfair = check_tolerance(program, S_ZERO, TRUE, program.state_space(), fairness="none")
        assert weak.ok
        assert not unfair.ok
