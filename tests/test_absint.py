"""Tests for the abstract interpreter (repro.staticcheck.absint).

Two families: algebraic laws of the reduced-product lattice, and
soundness of the transfer functions checked differentially against
exhaustive concrete evaluation on small domains — every concrete result
must be admitted by the abstract one, and every definite three-valued
answer must agree with the truth table.
"""

import pytest

from repro.core.domains import FiniteDomain, IntegerRangeDomain
from repro.core.expr import C, V, ite, max_, min_
from repro.staticcheck.absint import (
    BOTTOM,
    DEFAULT_CASE_BUDGET,
    TOP,
    AbstractContext,
    AbstractValue,
    assume,
    eval_bool,
    eval_expr,
    exprs_equal,
    simplify,
    substitute,
)

# A small but structurally varied sample of lattice points.
SAMPLE = [
    BOTTOM,
    TOP,
    AbstractValue.of(0),
    AbstractValue.of(1),
    AbstractValue.of(0, 1),
    AbstractValue.of(0, 2, 4),
    AbstractValue.of(1, 3),
    AbstractValue.of("red", "green"),
    AbstractValue.interval(0, 5),
    AbstractValue.interval(2, 9),
    AbstractValue.interval(None, 7),
    AbstractValue.interval(3, None),
]

# No bool probe: Python's True == 1 makes finite sets admit True while
# the interval component (integers only) rejects it — a representation
# quirk, not a lattice property; concrete domains never mix the two.
CONCRETE_PROBES = [-2, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, "red", "blue"]


class TestLatticeLaws:
    @pytest.mark.parametrize("a", SAMPLE)
    def test_join_meet_idempotent(self, a):
        assert a.join(a).leq(a) and a.leq(a.join(a))
        assert a.meet(a).leq(a) and a.leq(a.meet(a))

    @pytest.mark.parametrize("a", SAMPLE)
    @pytest.mark.parametrize("b", SAMPLE)
    def test_join_is_upper_bound(self, a, b):
        assert a.leq(a.join(b))
        assert b.leq(a.join(b))

    @pytest.mark.parametrize("a", SAMPLE)
    @pytest.mark.parametrize("b", SAMPLE)
    def test_meet_is_lower_bound(self, a, b):
        assert a.meet(b).leq(a)
        assert a.meet(b).leq(b)

    @pytest.mark.parametrize("a", SAMPLE)
    @pytest.mark.parametrize("b", SAMPLE)
    def test_join_admits_union_of_concretisations(self, a, b):
        joined = a.join(b)
        for value in CONCRETE_PROBES:
            if a.admits(value) or b.admits(value):
                assert joined.admits(value)

    @pytest.mark.parametrize("a", SAMPLE)
    @pytest.mark.parametrize("b", SAMPLE)
    def test_meet_admits_intersection_exactly_on_probes(self, a, b):
        met = a.meet(b)
        for value in CONCRETE_PROBES:
            if a.admits(value) and b.admits(value):
                assert met.admits(value)
            # The converse (met admits => both admit) holds for the
            # finite-set component; interval meets may over-approximate
            # only through parity, which admits() accounts for.
            if a.values is not None and b.values is not None:
                assert met.admits(value) == (a.admits(value) and b.admits(value))

    @pytest.mark.parametrize("a", SAMPLE)
    def test_top_and_bottom_are_extremes(self, a):
        assert BOTTOM.leq(a)
        assert a.leq(TOP)

    @pytest.mark.parametrize("a", SAMPLE)
    @pytest.mark.parametrize("b", SAMPLE)
    def test_leq_agrees_with_admits_on_probes(self, a, b):
        if a.leq(b):
            for value in CONCRETE_PROBES:
                if a.admits(value):
                    assert b.admits(value)

    def test_bottom_is_bottom(self):
        assert BOTTOM.is_bottom
        assert AbstractValue.of().is_bottom
        assert AbstractValue.interval(5, 3).is_bottom
        assert not TOP.is_bottom

    def test_singleton(self):
        one = AbstractValue.of(7)
        assert one.is_singleton
        assert one.singleton == 7
        with pytest.raises(ValueError):
            AbstractValue.of(1, 2).singleton

    def test_from_domain_enumerates_finite(self):
        value = AbstractValue.from_domain(IntegerRangeDomain(0, 3))
        assert value.values == frozenset({0, 1, 2, 3})
        assert value.lo == 0 and value.hi == 3

    def test_large_domain_keeps_bounds_only(self):
        value = AbstractValue.from_domain(IntegerRangeDomain(0, 10_000))
        assert value.values is None
        assert (value.lo, value.hi) == (0, 10_000)


# Expressions over x in 0..3, y in 0..2 — small enough for the full
# truth table, varied enough to cross every transfer function.
X_DOMAIN = IntegerRangeDomain(0, 3)
Y_DOMAIN = IntegerRangeDomain(0, 2)
x, y = V("x"), V("y")

ARITH_EXPRS = [
    x + y,
    x - y,
    x * y,
    (x + C(1)) % C(3),
    ite(x > y, x, y),
    min_(x, y, C(2)),
    max_(x, y),
    ite(x == C(0), y + C(5), x * C(2)),
]

BOOL_EXPRS = [
    x == y,
    x != y,
    x < y,
    x <= y,
    x > y,
    x >= C(0),
    (x == C(0)) & (y != C(1)),
    (x > C(2)) | (y == C(0)),
    ~(x == y),
    (x + y) >= C(0),
    (x + y) > C(5),
    (x != C(0)) & (x > C(5)),  # unsat over 0..3
]


def _states():
    for vx in X_DOMAIN.values():
        for vy in Y_DOMAIN.values():
            yield {"x": vx, "y": vy}


@pytest.fixture(scope="module")
def context():
    return AbstractContext({"x": X_DOMAIN, "y": Y_DOMAIN})


class TestTransferSoundness:
    @pytest.mark.parametrize("expr", ARITH_EXPRS, ids=[str(e) for e in ARITH_EXPRS])
    def test_abstract_admits_every_concrete_result(self, expr, context):
        abstract = eval_expr(expr, context.env)
        for state in _states():
            assert abstract.admits(expr(state)), (
                f"{expr} = {expr(state)} at {state} not admitted by {abstract}"
            )

    @pytest.mark.parametrize("expr", BOOL_EXPRS, ids=[str(e) for e in BOOL_EXPRS])
    def test_definite_truth_matches_truth_table(self, expr, context):
        verdict = eval_bool(expr, context.env)
        truth_table = {bool(expr(state)) for state in _states()}
        if verdict is True:
            assert truth_table == {True}
        elif verdict is False:
            assert truth_table == {False}
        # None (don't know) is always sound.

    @pytest.mark.parametrize("expr", BOOL_EXPRS, ids=[str(e) for e in BOOL_EXPRS])
    def test_assume_keeps_every_satisfying_state(self, expr, context):
        for truth in (True, False):
            refined = assume(expr, context.env, truth)
            for state in _states():
                if bool(expr(state)) is truth:
                    for name, value in state.items():
                        assert refined[name].admits(value)

    @pytest.mark.parametrize("expr", BOOL_EXPRS, ids=[str(e) for e in BOOL_EXPRS])
    def test_prove_valid_agrees_with_truth_table(self, expr, context):
        proof = context.prove_valid(expr)
        if proof is not None:
            assert all(bool(expr(state)) for state in _states())
            assert proof.rule in {"simplify", "abstract", "case-split"}
            assert proof.cases <= DEFAULT_CASE_BUDGET

    @pytest.mark.parametrize("expr", BOOL_EXPRS, ids=[str(e) for e in BOOL_EXPRS])
    def test_prove_unsat_agrees_with_truth_table(self, expr, context):
        proof = context.prove_unsat(expr)
        if proof is not None:
            assert not any(bool(expr(state)) for state in _states())

    def test_the_sampled_routes_are_all_reachable(self, context):
        # simplify: reflexivity collapses to a constant.
        assert context.prove_valid(x == x).rule == "simplify"
        # abstract: definite over the domain bounds, no structure.
        assert context.prove_valid(x >= C(0)).rule == "abstract"
        # case-split: needs the truth table (x=0 ⟺ x<1 over 0..3).
        split = context.prove_valid((x == C(0)) | (x >= C(1)))
        assert split is not None and split.cases > 0

    def test_find_witness_returns_a_model(self, context):
        witness = context.find_witness((x == C(2)) & (y == C(1)))
        assert witness == {"x": 2, "y": 1}
        assert context.find_witness((x != C(0)) & (x > C(5))) is None

    def test_budget_exhaustion_is_dont_know(self):
        big = AbstractContext({"x": IntegerRangeDomain(0, 99_999)})
        # Valid, but the table is unaffordable and the bounds can't
        # decide the disjunction — must return None, never a wrong answer.
        assert big.prove_valid((x == C(0)) | (x >= C(1)), budget=8) is None

    def test_opaque_domain_degrades_to_top(self):
        context = AbstractContext({})
        assert eval_expr(x + y, context.env) == TOP
        assert eval_bool(x == y, context.env) is None

    def test_non_integer_finite_domain(self):
        colors = AbstractContext(
            {"c": FiniteDomain(("red", "green", "blue"))}
        )
        c = V("c")
        assert colors.prove_valid(c != C("black")) is not None
        assert colors.prove_unsat(c == C("black")) is not None
        assert colors.prove_valid(c == C("red")) is None


class TestStructuralHelpers:
    def test_substitute_is_weakest_precondition(self):
        post = (x == C(0)) & (y == C(1))
        wp = substitute(post, {"x": C(0), "y": y})
        assert wp is not None
        for state in _states():
            assert bool(wp(state)) == bool(post({"x": 0, "y": state["y"]}))

    def test_simplify_reflexivity_and_units(self):
        from repro.core.expr import _Const

        assert isinstance(simplify(x == x), _Const)
        assert simplify(x == x).value is True
        assert simplify(x != x).value is False
        folded = simplify(C(2) + C(3))
        assert isinstance(folded, _Const) and folded.value == 5

    def test_exprs_equal_is_structural(self):
        assert exprs_equal(x + C(1), x + C(1))
        assert not exprs_equal(x + C(1), C(1) + x)  # not commutative-aware
        assert not exprs_equal(x, y)
