"""Unit tests for assignments and guarded actions."""

import pytest

from repro.core import Action, ActionNotEnabledError, Assignment, Predicate, State


class TestAssignment:
    def test_constant_and_callable_updates(self):
        effect = Assignment({"x": 5, "y": lambda s: s["x"] + 1})
        after = effect.apply(State({"x": 1, "y": 0}))
        assert after["x"] == 5
        assert after["y"] == 2  # computed from the OLD x

    def test_simultaneous_swap(self):
        # The paper's multiple-assignment semantics: all right-hand sides
        # read the old state.
        effect = Assignment({"x": lambda s: s["y"], "y": lambda s: s["x"]})
        after = effect.apply(State({"x": 1, "y": 2}))
        assert after["x"] == 2 and after["y"] == 1

    def test_writes_property(self):
        assert Assignment({"a": 0, "b": 1}).writes == frozenset({"a", "b"})

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            Assignment({})


def make_action(**kwargs) -> Action:
    defaults = dict(
        name="inc",
        guard=Predicate(lambda s: s["x"] < 3, name="x < 3", support=("x",)),
        effect=Assignment({"x": lambda s: s["x"] + 1}),
        reads=("x",),
    )
    defaults.update(kwargs)
    return Action(
        defaults["name"],
        defaults["guard"],
        defaults["effect"],
        reads=defaults["reads"],
        process=defaults.get("process"),
    )


class TestAction:
    def test_enabled_follows_guard(self):
        action = make_action()
        assert action.enabled(State({"x": 0}))
        assert not action.enabled(State({"x": 3}))

    def test_execute(self):
        action = make_action()
        assert action.execute(State({"x": 1}))["x"] == 2

    def test_execute_disabled_raises(self):
        action = make_action()
        with pytest.raises(ActionNotEnabledError):
            action.execute(State({"x": 3}))

    def test_writes_derived_from_effect(self):
        action = make_action()
        assert action.writes == frozenset({"x"})

    def test_reads_must_cover_guard_support(self):
        guard = Predicate(lambda s: s["x"] < s["y"], name="x < y", support=("x", "y"))
        with pytest.raises(ValueError, match="omit guard variables"):
            Action("bad", guard, Assignment({"x": 0}), reads=("x",))

    def test_reads_may_exceed_guard_support(self):
        # Right-hand sides may read variables the guard does not.
        guard = Predicate(lambda s: True, name="true", support=())
        action = Action(
            "copy",
            guard,
            Assignment({"x": lambda s: s["y"]}),
            reads=("x", "y"),
        )
        assert action.reads == frozenset({"x", "y"})

    def test_guard_without_support_accepted(self):
        guard = Predicate(lambda s: s["x"] == 0, name="opaque")
        action = Action("a", guard, Assignment({"x": 1}), reads=("x",))
        assert action.enabled(State({"x": 0}))

    def test_process_recorded(self):
        assert make_action(process=3).process == 3
