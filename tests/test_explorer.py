"""Unit tests for state-space exploration and transition systems."""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    StateSpaceTooLargeError,
    UnknownStateError,
    Variable,
)
from repro.verification import build_transition_system, explore


class TestBuildTransitionSystem:
    def test_edges_match_successors(self, counter_program):
        states = list(counter_program.state_space())
        ts = build_transition_system(counter_program, states)
        assert len(ts) == 4
        start = ts.index_of(State({"n": 0}))
        assert ts.successors(start) == [("inc", ts.index_of(State({"n": 1})))]
        last = ts.index_of(State({"n": 3}))
        assert ts.successors(last) == [("reset", ts.index_of(State({"n": 0})))]

    def test_no_escapes_on_closed_set(self, counter_program):
        ts = build_transition_system(
            counter_program, counter_program.state_space()
        )
        assert ts.escapes == []

    def test_escapes_recorded_for_non_closed_set(self, counter_program):
        # Omit n = 2: the transition 1 -> 2 escapes the set.
        subset = [State({"n": v}) for v in (0, 1, 3)]
        ts = build_transition_system(counter_program, subset)
        assert len(ts.escapes) == 1
        source, action_name, target = ts.escapes[0]
        assert ts.states[source] == State({"n": 1})
        assert action_name == "inc"
        assert target == State({"n": 2})

    def test_satisfying(self, counter_program):
        ts = build_transition_system(counter_program, counter_program.state_space())
        small = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        assert len(ts.satisfying(small)) == 2

    def test_satisfying_memoized_per_predicate(self, counter_program):
        ts = build_transition_system(counter_program, counter_program.state_space())
        calls = 0

        def counting(state):
            nonlocal calls
            calls += 1
            return state["n"] <= 1

        small = Predicate(counting, name="n <= 1", support=("n",))
        first = ts.satisfying(small)
        evaluations = calls
        second = ts.satisfying(small)
        assert second is first  # cached list, predicate not re-evaluated
        assert calls == evaluations == len(ts)

    def test_index_of_unknown_state_raises_readable_error(self, counter_program):
        ts = build_transition_system(
            counter_program, counter_program.state_space()
        )
        with pytest.raises(UnknownStateError, match="4 states"):
            ts.index_of(State({"n": 99}))

    def test_picklable_without_memo(self, counter_program):
        import pickle

        ts = build_transition_system(
            counter_program, counter_program.state_space()
        )
        small = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        ts.satisfying(small)  # populate the (unpicklable) memo
        clone = pickle.loads(pickle.dumps(ts))
        assert clone.states == ts.states
        assert clone.successors(0) == ts.successors(0)
        assert len(clone.satisfying(small)) == 2


class TestExplore:
    def test_reachability_closure(self, counter_program):
        ts = explore(counter_program, [State({"n": 2})])
        # 2 -> 3 -> 0 -> 1 -> 2: everything is reachable.
        assert len(ts) == 4

    def test_unreachable_states_excluded(self):
        # From 0, a decrement-only program reaches only 0.
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
        )
        program = Program("dec", [Variable("n", IntegerRangeDomain(0, 5))], [dec])
        ts = explore(program, [State({"n": 0})])
        assert len(ts) == 1

    def test_multiple_roots(self):
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
        )
        program = Program("dec", [Variable("n", IntegerRangeDomain(0, 5))], [dec])
        ts = explore(program, [State({"n": 2}), State({"n": 4})])
        assert len(ts) == 5  # 0..4

    def test_max_states_guard(self, counter_program):
        with pytest.raises(StateSpaceTooLargeError):
            explore(counter_program, [State({"n": 0})], max_states=2)

    def test_max_states_error_names_root_set(self, counter_program):
        with pytest.raises(
            StateSpaceTooLargeError, match=r"1 root state\(s\) exceeds 2"
        ):
            explore(counter_program, [State({"n": 0})], max_states=2)
        with pytest.raises(StateSpaceTooLargeError, match=r"2 root state\(s\)"):
            explore(
                counter_program,
                [State({"n": 0}), State({"n": 1})],
                max_states=2,
            )

    def test_explored_set_is_closed(self, counter_program):
        ts = explore(counter_program, [State({"n": 0})])
        index = {state: i for i, state in enumerate(ts.states)}
        for i, state in enumerate(ts.states):
            for _, target in ts.successors(i):
                assert 0 <= target < len(ts)
        assert index  # non-degenerate
