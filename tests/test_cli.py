"""Tests for the command-line interface."""

import pytest

from repro.cli import PROTOCOLS, main


class TestList:
    def test_lists_every_protocol(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PROTOCOLS:
            assert name in out


class TestVerify:
    def test_verify_passes_for_stabilizing_protocol(self, capsys):
        assert main(["verify", "dijkstra-ring", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "T-tolerant for S" in out
        assert "stabilizing" in out

    def test_verify_unfair_mode(self, capsys):
        assert main(["verify", "four-state", "--size", "3",
                     "--fairness", "none"]) == 0
        assert "'none' fairness" in capsys.readouterr().out

    def test_unbounded_protocol_refused(self, capsys):
        assert main(["verify", "token-ring"]) == 2
        assert "unbounded" in capsys.readouterr().out

    def test_oversized_instance_refused(self, capsys):
        assert main(["verify", "diffusing", "--size", "50"]) == 2
        assert "exceeds" in capsys.readouterr().out

    def test_unknown_protocol(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "quantum-ring"])
        assert excinfo.value.code == 2  # usage errors share lint's exit code
        assert "unknown protocol" in capsys.readouterr().err


class TestSimulate:
    def test_simulation_stabilizes(self, capsys):
        code = main(["simulate", "coloring", "--size", "10", "--trials", "4",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4/4 trials stabilized" in out
        assert "steps to stabilize" in out

    def test_simulation_reports_failures(self, capsys):
        # A step budget of zero cannot stabilize corrupted starts.
        code = main(["simulate", "dijkstra-ring", "--size", "6",
                     "--trials", "4", "--max-steps", "0"])
        assert code == 1
        assert "stabilized" in capsys.readouterr().out


class TestRender:
    def test_render_listing(self, capsys):
        assert main(["render", "dijkstra-ring", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("program dijkstra-ring")
        assert "begin" in out and "end" in out

    def test_every_registered_protocol_renders(self, capsys):
        for name in PROTOCOLS:
            assert main(["render", name]) == 0
        assert capsys.readouterr().out  # produced something


class TestRegistry:
    def test_all_builders_produce_programs_and_predicates(self):
        for entry in PROTOCOLS.values():
            program, invariant = entry.build(entry.default_size)
            state = next(iter(program.state_space(max_states=10_000_000))) \
                if entry.max_verify_size else None
            assert program.actions
            if state is not None:
                invariant(state)  # evaluable
