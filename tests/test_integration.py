"""Cross-module integration tests.

Each test exercises a full pipeline the way a library user would:
design -> certificate -> exhaustive verification -> simulation, and the
agreement between the two validation routes (theorem conditions vs model
checking) that the paper's soundness claims predict.
"""

import random

import pytest

from repro.core import TRUE
from repro.faults import ScheduledFaults, corrupt_everything, corrupt_random_processes
from repro.protocols.diffusing import (
    all_green_state,
    build_diffusing_design,
    diffusing_invariant,
)
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
    xyz_invariant,
)
from repro.protocols.token_ring import build_dijkstra_ring, build_token_ring_design
from repro.scheduler import (
    AdversarialScheduler,
    QueueFairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.simulation import convergence_action_work, run, stabilization_trials
from repro.topology import balanced_tree, chain_tree
from repro.verification import check_convergence, explore
from repro.verification.checker import _check_tolerance as check_tolerance


class TestTheoremsAgreeWithModelChecker:
    """A valid certificate must imply T-tolerance; the validators and the
    model checker are independent implementations, so their agreement is
    strong evidence both are right."""

    def test_diffusing_agreement(self, chain3):
        design = build_diffusing_design(chain3)
        states = list(design.program.state_space())
        certificate = design.validate(states)
        tolerance = check_tolerance(
            design.program, design.candidate.invariant, TRUE, states
        )
        assert certificate.ok and tolerance.ok

    def test_xyz_agreement_across_designs(self):
        window = window_states(3)
        for build, expect in [
            (build_out_tree_design, True),
            (build_ordered_design, True),
            (build_oscillating_design, False),
        ]:
            design = build(3)
            certificate = design.validate(window)
            ts = explore(design.program, window)
            conv = check_convergence(
                design.program, ts.states, xyz_invariant(), fairness="weak", system=ts
            )
            assert certificate.ok == expect
            assert conv.ok == expect

    def test_token_ring_certificate_vs_dijkstra_model_check(self):
        # The paper's design certificate (unbounded) and the K-state
        # instance model check tell the same story.
        design = build_token_ring_design(4)
        from repro.protocols.token_ring import window_states as ring_window

        assert design.validate(ring_window(4, 0, 3)).ok
        program, spec = build_dijkstra_ring(4, k=5)
        assert check_tolerance(program, spec, TRUE, program.state_space()).ok


class TestFaultRecoveryPipeline:
    def test_recovery_after_repeated_fault_bursts(self):
        tree = balanced_tree(2, 2)
        design = build_diffusing_design(tree)
        program = design.program
        invariant = diffusing_invariant(tree)
        schedule = ScheduledFaults(
            {
                100: corrupt_everything(program),
                400: corrupt_random_processes(program, 3),
                700: corrupt_random_processes(program, 1),
            }
        )
        result = run(
            program,
            program.make_state(all_green_state(tree)),
            RandomScheduler(8),
            max_steps=2000,
            target=invariant,
            faults=schedule,
            fault_rng=random.Random(3),
        )
        assert result.fault_count == 3
        # Stabilized after the last fault and stayed legitimate.
        assert result.stabilized
        assert result.stabilization_index is not None

    def test_convergence_work_bounded_after_single_fault(self):
        tree = chain_tree(5)
        design = build_diffusing_design(tree, variant="copy-parent")
        program = design.program
        invariant = diffusing_invariant(tree)
        result = run(
            program,
            program.make_state(all_green_state(tree)),
            RoundRobinScheduler(),
            max_steps=600,
            target=invariant,
            faults=ScheduledFaults({50: corrupt_everything(program)}),
            fault_rng=random.Random(9),
        )
        convergence_names = {b.action.name for b in design.bindings}
        convergence, closure = convergence_action_work(
            result.computation, convergence_names
        )
        # Pure convergence actions fire only while repairing: a bounded
        # number of times (at most once per node per repair in a chain),
        # while closure actions run the wave forever.
        assert convergence <= 3 * len(tree)
        assert closure > convergence


class TestSchedulerMatrix:
    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda seed: RandomScheduler(seed),
            lambda seed: RoundRobinScheduler(),
            lambda seed: QueueFairScheduler(),
        ],
        ids=["random", "round-robin", "queue-fair"],
    )
    def test_diffusing_stabilizes_under_every_fair_daemon(self, make_scheduler):
        tree = balanced_tree(2, 2)
        design = build_diffusing_design(tree)
        stats = stabilization_trials(
            design.program,
            diffusing_invariant(tree),
            make_scheduler,
            trials=5,
            max_steps=4000,
            base_seed=17,
        )
        assert stats.all_stabilized

    def test_adversary_cannot_prevent_stabilization_only_delay_it(self):
        tree = chain_tree(5)
        design = build_diffusing_design(tree)
        invariant = diffusing_invariant(tree)
        fair = stabilization_trials(
            design.program, invariant, lambda s: RandomScheduler(s),
            trials=8, max_steps=20000, base_seed=5,
        )
        adversarial = stabilization_trials(
            design.program, invariant,
            lambda s: AdversarialScheduler(invariant, seed=s),
            trials=8, max_steps=20000, base_seed=5,
        )
        assert fair.all_stabilized and adversarial.all_stabilized
        assert adversarial.steps.mean >= fair.steps.mean


class TestRoundsMetric:
    def test_rounds_scale_with_tree_height_not_size(self):
        # A star (height 1) needs fewer rounds than a chain (height n-1)
        # of the same size to stabilize.
        from repro.topology import star_tree

        outcomes = {}
        for name, tree in [("chain", chain_tree(7)), ("star", star_tree(7))]:
            design = build_diffusing_design(tree)
            stats = stabilization_trials(
                design.program,
                diffusing_invariant(tree),
                lambda s: RandomScheduler(s),
                trials=10,
                max_steps=20000,
                base_seed=21,
                measure_rounds=True,
            )
            assert stats.all_stabilized
            outcomes[name] = stats.rounds.mean
        assert outcomes["star"] <= outcomes["chain"]
