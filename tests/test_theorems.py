"""Unit tests for the Theorem 1/2/3 validators.

The protocol-level certificates are covered by the protocol tests; these
tests target the validator mechanics on the paper's x/y/z example and on
purpose-built failing designs.
"""

import pytest

from repro.core import (
    Action,
    Assignment,
    CandidateTriple,
    Constraint,
    ConvergenceBinding,
    DesignError,
    GraphNode,
    IntegerDomain,
    Predicate,
    Program,
    State,
    Variable,
    find_linear_order,
    validate_theorem1,
    validate_theorem2,
    validate_theorem3,
)
from repro.core.constraint_graph import ConstraintGraph
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
)

WINDOW = window_states(3)


class TestTheorem1:
    def test_out_tree_design_validates(self):
        design = build_out_tree_design()
        certificate = validate_theorem1(design.candidate, design.graph, WINDOW)
        assert certificate.ok
        assert not certificate.failures()

    def test_non_out_tree_shape_fails_condition(self):
        design = build_ordered_design()
        certificate = validate_theorem1(design.candidate, design.graph, WINDOW)
        assert not certificate.ok
        names = [c.name for c in certificate.failures()]
        assert any("out-tree" in name for name in names)

    def test_closure_action_breaking_constraint_detected(self):
        # A candidate whose closure action violates the constraint x >= 0.
        domain = IntegerDomain(sample_lo=-3, sample_hi=3)
        variables = [Variable("x", domain, process="x"), Variable("y", domain, process="y")]
        breaker = Action(
            "breaker",
            Predicate(lambda s: s["x"] >= 0, name="x >= 0", support=("x",)),
            Assignment({"x": lambda s: s["x"] - 1}),
            reads=("x",),
            process="x",
        )
        constraint = Constraint(
            name="c",
            predicate=Predicate(lambda s: s["x"] >= 0, name="x >= 0", support=("x", "y")),
        )
        fix = Action(
            "fix",
            (~constraint.predicate).renamed("x < 0"),
            Assignment({"x": 0}),
            reads=("x", "y"),
            process="x",
        )
        candidate = CandidateTriple(
            program=Program("p", variables, [breaker]),
            invariant=constraint.predicate,
            constraints=(constraint,),
        )
        nodes = [GraphNode("x", frozenset({"x"})), GraphNode("y", frozenset({"y"}))]
        graph = ConstraintGraph.from_bindings(
            nodes, [ConvergenceBinding(constraint=constraint, action=fix)]
        )
        states = [State({"x": a, "y": b}) for a in range(-2, 3) for b in range(-2, 3)]
        certificate = validate_theorem1(candidate, graph, states)
        assert not certificate.ok
        failure = next(
            c for c in certificate.failures() if "closure action" in c.name
        )
        assert failure.violations  # concrete witness attached

    def test_describe_mentions_verdict(self):
        design = build_out_tree_design()
        certificate = validate_theorem1(design.candidate, design.graph, WINDOW)
        assert "VALID" in certificate.describe()


class TestTheorem2:
    def test_ordered_design_validates(self):
        design = build_ordered_design()
        certificate = validate_theorem2(design.candidate, design.graph, WINDOW)
        assert certificate.ok

    def test_oscillating_design_fails_order_condition(self):
        design = build_oscillating_design()
        certificate = validate_theorem2(design.candidate, design.graph, WINDOW)
        assert not certificate.ok
        names = [c.name for c in certificate.failures()]
        assert any("linear order" in name for name in names)

    def test_out_tree_also_validates_under_theorem2(self):
        # Out-trees are a special case of self-looping graphs.
        design = build_out_tree_design()
        certificate = validate_theorem2(design.candidate, design.graph, WINDOW)
        assert certificate.ok


class TestLinearOrder:
    def test_order_found_and_correctly_sorted(self):
        design = build_ordered_design()
        bindings = list(design.bindings)
        order = find_linear_order(bindings, WINDOW)
        assert order is not None
        # The bounded constraint must come first: only "lower-x" (the
        # c1 action) preserves the other constraint.
        assert order[0].constraint.name == "c2"
        assert order[1].constraint.name == "c1"

    def test_no_order_for_oscillating_pair(self):
        design = build_oscillating_design()
        assert find_linear_order(list(design.bindings), WINDOW) is None

    def test_single_binding_trivial(self):
        design = build_out_tree_design()
        order = find_linear_order([design.bindings[0]], WINDOW)
        assert order is not None and len(order) == 1


class TestTheorem3:
    def test_token_ring_layers_validate(self):
        from repro.protocols.token_ring import build_token_ring_design, window_states as ring_window

        design = build_token_ring_design(3)
        states = ring_window(3, 0, 3)
        assert design.layers is not None
        certificate = validate_theorem3(
            design.candidate, design.layers, design.nodes, states
        )
        assert certificate.ok

    def test_overlapping_layers_rejected(self):
        from repro.protocols.token_ring import build_token_ring_design, window_states as ring_window

        design = build_token_ring_design(3)
        layer = list(design.layers[0])
        with pytest.raises(DesignError, match="without overlap"):
            validate_theorem3(
                design.candidate,
                [layer, layer],
                design.nodes,
                ring_window(3, 0, 2),
            )

    def test_single_layer_reduces_to_theorem2_like_check(self):
        design = build_ordered_design()
        certificate = validate_theorem3(
            design.candidate, [list(design.bindings)], design.nodes, WINDOW
        )
        assert certificate.ok

    def test_single_layer_oscillation_fails(self):
        design = build_oscillating_design()
        certificate = validate_theorem3(
            design.candidate, [list(design.bindings)], design.nodes, WINDOW
        )
        assert not certificate.ok
