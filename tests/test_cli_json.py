"""CLI machine-readable output: ``--json``, ``--trace`` and ``--metrics``.

These tests pin the JSON schemas (top-level key sets and the invariant
parts of the records) so downstream tooling reading the files can rely
on them, and exercise the observability flags end to end through the
argparse entry point.
"""

import json

from repro.cli import main

VERIFY_RECORD_KEYS = {
    "case",
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
}

QUANTITATIVE_KEYS = {
    "case",
    "ok",
    "engine",
    "path",
    "states",
    "target_states",
    "span_states",
    "doomed_states",
    "escape_probability",
    "mean_steps",
    "max_steps",
    "worst_case_steps",
    "weighted_mean_steps",
    "fault_rate",
    "score",
    "iterations",
    "converged",
    "tol",
    "seconds",
}

COMPOSITIONAL_RECORD_KEYS = {
    "case",
    "method",
    "ok",
    "status",
    "refusal",
    "theorem",
    "classification",
    "stabilizing",
    "obligations",
    "enumerated",
    "vacuous",
    "trivial",
    "static",
    "edges",
    "max_projection",
    "total_states",
    "fairness",
    "seconds",
}


class TestVerifyJson:
    def test_schema_is_stable(self, tmp_path, capsys):
        path = tmp_path / "verdict.json"
        assert main(["verify", "dijkstra-ring", "--size", "3",
                     "--json", str(path)]) == 0
        assert f"verdict written to {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "cache_layer",
            "cached",
            "call_seconds",
            "command",
            "engine",
            "fairness",
            "method",
            "protocol",
            "quantify",
            "record",
            "size",
        }
        assert payload["command"] == "verify"
        assert payload["protocol"] == "dijkstra-ring"
        assert payload["size"] == 3
        assert payload["fairness"] == "weak"
        assert payload["engine"] == "auto"
        assert payload["method"] == "auto"
        assert payload["quantify"] is False
        assert "quantitative" not in payload["record"]
        assert payload["cached"] is False
        assert payload["cache_layer"] == ""  # a miss has no cache layer
        assert payload["call_seconds"] > 0.0
        assert VERIFY_RECORD_KEYS <= set(payload["record"])
        assert payload["record"]["ok"] is True
        assert payload["record"]["stabilizing"] is True

    def test_quantify_record_schema_is_stable(self, tmp_path):
        path = tmp_path / "verdict.json"
        assert main(["verify", "dijkstra-ring", "--size", "3",
                     "--quantify", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["quantify"] is True
        quantitative = payload["record"]["quantitative"]
        assert set(quantitative) == QUANTITATIVE_KEYS
        assert quantitative["ok"] is True
        assert quantitative["converged"] is True
        assert quantitative["doomed_states"] == 0
        assert 0.0 <= quantitative["score"] < 1.0
        assert quantitative["worst_case_steps"] >= quantitative["mean_steps"]

    def test_quantify_rejects_compositional(self, capsys):
        assert main(["verify", "diffusing", "--size", "4", "--quantify",
                     "--method", "compositional"]) == 2
        assert "quantify" in capsys.readouterr().err

    def test_quantify_over_budget_is_a_friendly_refusal(self, capsys):
        # The boolean verify streams under a tiny budget; the value
        # iteration has no streaming variant and must refuse cleanly,
        # not traceback.
        assert main(["verify", "dijkstra-ring", "--size", "5", "--quantify",
                     "--engine", "packed", "--memory-budget", "1K"]) == 2
        assert "memory_budget" in capsys.readouterr().err

    def test_compositional_record_schema_is_stable(self, tmp_path):
        path = tmp_path / "verdict.json"
        assert main(["verify", "diffusing", "--size", "4",
                     "--method", "compositional", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["method"] == "compositional"
        record = payload["record"]
        assert set(record) == COMPOSITIONAL_RECORD_KEYS
        assert record["ok"] is True
        assert record["status"] == "certified"
        assert not record["refusal"]
        assert record["method"] == "compositional"
        assert record["obligations"] == (
            record["enumerated"] + record["vacuous"] + record["trivial"]
            + record["static"]
        )
        assert record["static"] > 0  # the DSL protocols discharge statically

    def test_warm_cache_recorded_in_json(self, tmp_path):
        cache = tmp_path / "cache"
        path = tmp_path / "verdict.json"
        argv = ["verify", "dijkstra-ring", "--size", "3",
                "--cache", str(cache), "--json", str(path)]
        assert main(argv) == 0
        assert json.loads(path.read_text())["cached"] is False
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        assert payload["cached"] is True
        assert payload["cache_layer"] == "disk"

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["verify", "dijkstra-ring", "--size", "3",
                     "--trace", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert "cache.miss" in out  # the --metrics report
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        # auto engine resolves to packed, so the kernel compilation and
        # memory-accounting events accompany the cache miss.
        assert [event["kind"] for event in events] == [
            "cache.miss",
            "kernel.build",
            "kernel.mem.sweep",
        ]
        assert all({"seq", "time", "kind"} <= set(event) for event in events)


class TestVerifyAllJson:
    def test_schema_is_stable(self, tmp_path, capsys):
        path = tmp_path / "timings.json"
        assert main(["verify-all", "--case", "coloring-chain",
                     "--workers", "1", "--json", str(path)]) == 0
        assert f"timings written to {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "instances",
            "metrics",
            "wall_clock_seconds",
            "workers",
        }
        assert payload["workers"] == 1
        assert payload["wall_clock_seconds"] > 0.0

        (instance,) = payload["instances"]
        assert VERIFY_RECORD_KEYS <= set(instance)
        assert {"cached", "cache_layer", "worker", "task_seconds",
                "call_seconds"} <= set(instance)
        assert instance["case"] == "coloring-chain (n=4)"

        metrics = payload["metrics"]
        assert set(metrics) == {"meta", "counters", "timers"}
        assert metrics["counters"]["tasks"] == 1
        assert metrics["counters"]["ok"] == 1
        assert metrics["counters"]["cache.miss"] == 1
        assert metrics["meta"]["workers"] == 1
        assert {"task", "verify"} <= set(metrics["timers"])
        assert any(name.startswith("worker.") for name in metrics["timers"])

    def test_metrics_flag_prints_report(self, capsys):
        assert main(["verify-all", "--case", "coloring-chain",
                     "--workers", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out
        assert "worker." in out


class TestSimulateObservability:
    def test_trace_file_delimits_trials(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["simulate", "coloring", "--size", "6", "--trials", "2",
                     "--seed", "3", "--trace", str(trace)]) == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        kinds = [json.loads(line)["kind"]
                 for line in trace.read_text().splitlines()]
        assert kinds.count("run.start") == 2
        assert kinds.count("run.finish") == 2
        assert "action.fired" in kinds

    def test_metrics_counts_events(self, capsys):
        assert main(["simulate", "coloring", "--size", "6", "--trials", "2",
                     "--seed", "3", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "trials" in out
        assert "stabilized" in out
        assert "action.fired" in out


LINT_CASE_KEYS = {
    "subject",
    "ok",
    "strict_ok",
    "probes",
    "seconds",
    "counts",
    "diagnostics",
}

LINT_DIAGNOSTIC_KEYS = {"code", "severity", "message", "subject", "location", "hint"}


class TestLintJson:
    def test_schema_is_stable(self, tmp_path, capsys):
        path = tmp_path / "lint.json"
        assert main(["lint", "--case", "diffusing-chain", "--case", "mis-cycle",
                     "--json", str(path)]) == 0
        assert f"lint report written to {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "command",
            "strict",
            "semantic",
            "probes",
            "ok",
            "strict_ok",
            "wall_clock_seconds",
            "cases",
        }
        assert payload["command"] == "lint"
        assert payload["strict"] is False
        assert payload["semantic"] is True
        assert payload["probes"] == 32
        assert payload["ok"] is True
        assert payload["strict_ok"] is True
        assert payload["wall_clock_seconds"] > 0.0
        assert len(payload["cases"]) == 2
        for case in payload["cases"]:
            assert set(case) == LINT_CASE_KEYS
            assert set(case["counts"]) == {"error", "warning", "info"}
            for entry in case["diagnostics"]:
                assert set(entry) == LINT_DIAGNOSTIC_KEYS

    def test_full_library_is_clean_under_strict(self, capsys):
        # The shipped protocol library must lint clean at the strict bar
        # with the semantic passes on; this is the CI gate in miniature.
        assert main(["lint", "--strict", "--semantic"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "FAIL" not in out

    def test_no_semantic_flag_still_clean(self, capsys):
        assert main(["lint", "--strict", "--no-semantic",
                     "--case", "diffusing-chain"]) == 0
        assert "semantic=off" in capsys.readouterr().out

    def test_unknown_case_is_usage_error(self, capsys):
        assert main(["lint", "--case", "no-such-case"]) == 2
        assert "unknown verification case" in capsys.readouterr().err

    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["lint", "--case", "mis-cycle",
                     "--trace", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert "lint.runs" in out  # the --metrics report
        kinds = [json.loads(line)["kind"]
                 for line in trace.read_text().splitlines()]
        assert kinds[0] == "lint.start"
        assert kinds[-1] == "lint.finish"


class TestVerdictToJson:
    """Every Verdict type's ``to_json()`` key set is stable."""

    def test_tolerance_report(self):
        from repro.core.predicates import TRUE
        from repro.protocols.library import build_case
        from repro.verification.checker import _check_tolerance

        program, invariant = build_case("coloring-chain", 3)
        report = _check_tolerance(program, invariant, TRUE)
        payload = report.to_json()
        assert set(payload) == {
            "ok", "implication_ok", "s_closure_ok", "t_closure_ok",
            "convergence_ok", "classification", "stabilizing",
            "total_states", "span_states", "bad_states", "fairness",
        }
        assert payload == json.loads(json.dumps(payload))

    def test_compositional_certificate(self):
        from repro.compositional import certify_compositional
        from repro.protocols.library import CASES

        certificate = certify_compositional(
            CASES["diffusing-chain"].build_design(3)
        )
        payload = certificate.to_json()
        assert set(payload) == {
            "design", "theorem", "status", "ok", "classification",
            "stabilizing", "refusal", "total_states", "max_projection",
            "edges", "seconds", "obligations", "static_certificates",
        }
        for obligation in payload["obligations"]:
            assert set(obligation) == {
                "name", "subject", "variables", "space", "checked",
                "discharged_by", "seconds",
            }
        assert payload["static_certificates"]
        for certificate_dict in payload["static_certificates"]:
            assert set(certificate_dict) == {
                "obligation", "subject", "rule", "cases", "detail",
            }
        assert payload == json.loads(json.dumps(payload))

    def test_theorem_certificate(self):
        from repro.protocols.library import CASES

        design = CASES["diffusing-chain"].build_design(3)
        report = design.validate(list(design.program.state_space()))
        payload = report.selected.to_json()
        assert set(payload) == {"theorem", "ok", "conditions"}
        for condition in payload["conditions"]:
            assert set(condition) == {"name", "ok", "detail"}
        assert payload == json.loads(json.dumps(payload))

    def test_lint_report(self):
        from repro.staticcheck import lint_case

        report = lint_case("diffusing-chain")
        assert report.to_json() == report.as_dict()
        assert set(report.to_json()) == LINT_CASE_KEYS

    def test_quantitative_report(self):
        from repro.quantitative import quantify
        from repro.protocols.library import build_case

        program, invariant = build_case("coloring-chain", 3)
        report = quantify(program, invariant)
        payload = report.to_json()
        assert set(payload) == QUANTITATIVE_KEYS
        assert payload == json.loads(json.dumps(payload))

    def test_service_verdict(self):
        import repro
        from repro.verification import VerificationService

        service = VerificationService()
        verdict = repro.verify(
            "coloring-chain", size=3, method="full", service=service
        )
        payload = verdict.to_json()
        assert {"cached", "cache_layer", "call_seconds"} <= set(payload)
        assert VERIFY_RECORD_KEYS <= set(payload)
        assert payload == json.loads(json.dumps(payload))

        compositional = repro.verify(
            "coloring-chain", size=3, method="compositional", service=service
        )
        assert COMPOSITIONAL_RECORD_KEYS <= set(compositional.to_json())
