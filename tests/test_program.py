"""Unit tests for programs."""

import random

import pytest

from repro.core import (
    Action,
    Assignment,
    DomainError,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    UnknownVariableError,
    Variable,
)


class TestConstruction:
    def test_duplicate_variable_rejected(self):
        v = Variable("x", IntegerRangeDomain(0, 1))
        with pytest.raises(ValueError, match="duplicate variable"):
            Program("p", [v, v], [])

    def test_duplicate_action_name_rejected(self, counter_program):
        action = counter_program.actions[0]
        with pytest.raises(ValueError, match="duplicate action"):
            Program("p", counter_program.variables.values(), [action, action])

    def test_action_referencing_unknown_variable_rejected(self):
        action = Action(
            "bad",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"ghost": 0}),
            reads=("ghost",),
        )
        with pytest.raises(UnknownVariableError):
            Program("p", [Variable("x", IntegerRangeDomain(0, 1))], [action])

    def test_empty_action_set_allowed(self):
        program = Program("silent", [Variable("x", IntegerRangeDomain(0, 1))], [])
        assert program.is_terminal(State({"x": 0}))


class TestLookup:
    def test_action_by_name(self, counter_program):
        assert counter_program.action("inc").name == "inc"
        with pytest.raises(KeyError):
            counter_program.action("missing")

    def test_variable_names(self, counter_program):
        assert counter_program.variable_names == frozenset({"n"})

    def test_processes(self, two_var_program):
        assert two_var_program.processes() == ["a", "b"]


class TestStates:
    def test_make_state_validates_domain(self, counter_program):
        with pytest.raises(DomainError):
            counter_program.make_state({"n": 99})

    def test_make_state_requires_all_variables(self, two_var_program):
        with pytest.raises(UnknownVariableError, match="missing"):
            two_var_program.make_state({"a": 0})

    def test_make_state_rejects_extras(self, counter_program):
        with pytest.raises(UnknownVariableError, match="undeclared"):
            counter_program.make_state({"n": 0, "m": 0})

    def test_state_space_size(self, counter_program):
        assert counter_program.state_count() == 4
        assert len(list(counter_program.state_space())) == 4

    def test_random_state_reproducible(self, two_var_program):
        a = two_var_program.random_state(random.Random(3))
        b = two_var_program.random_state(random.Random(3))
        assert a == b


class TestExecution:
    def test_enabled_actions(self, counter_program):
        assert [a.name for a in counter_program.enabled_actions(State({"n": 0}))] == ["inc"]
        assert [a.name for a in counter_program.enabled_actions(State({"n": 3}))] == ["reset"]

    def test_step(self, counter_program):
        inc = counter_program.action("inc")
        assert counter_program.step(State({"n": 1}), inc)["n"] == 2

    def test_step_validation_catches_domain_escape(self):
        runaway = Action(
            "runaway",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
        )
        program = Program("p", [Variable("n", IntegerRangeDomain(0, 1))], [runaway])
        state = State({"n": 1})
        # Without validation the escape goes unnoticed...
        assert program.step(state, runaway)["n"] == 2
        # ...with validation it is caught.
        with pytest.raises(DomainError):
            program.step(state, runaway, validate=True)

    def test_successors(self, counter_program):
        successors = counter_program.successors(State({"n": 3}))
        assert len(successors) == 1
        action, state = successors[0]
        assert action.name == "reset" and state["n"] == 0

    def test_is_terminal(self):
        program = Program("silent", [Variable("x", IntegerRangeDomain(0, 1))], [])
        assert program.is_terminal(State({"x": 1}))


class TestAugmentation:
    def test_augmented_appends(self, counter_program):
        extra = Action(
            "noop",
            Predicate(lambda s: False, name="false", support=()),
            Assignment({"n": lambda s: s["n"]}),
            reads=("n",),
        )
        bigger = counter_program.augmented([extra])
        assert len(bigger.actions) == 3
        assert len(counter_program.actions) == 2  # original untouched

    def test_restricted(self, counter_program):
        only_inc = counter_program.restricted(["inc"])
        assert [a.name for a in only_inc.actions] == ["inc"]
        with pytest.raises(KeyError):
            counter_program.restricted(["ghost"])
