"""Unit tests for read/write-set inference (repro.core.introspect)."""

from repro.core import (
    Action,
    Assignment,
    Predicate,
    RecordingState,
    State,
    callable_location,
    infer_action_support,
    infer_effect_support,
    infer_predicate_reads,
)
from repro.core.expr import V, expr_action

STATES = [State({"x": v, "y": v % 2, "z": 0}) for v in range(4)]


class TestRecordingState:
    def test_getitem_recorded(self):
        proxy = RecordingState(State({"x": 1, "y": 2}))
        assert proxy["x"] == 1
        assert proxy.accessed == {"x"}

    def test_contains_recorded(self):
        proxy = RecordingState(State({"x": 1}))
        assert "x" in proxy
        assert "ghost" not in proxy
        assert proxy.accessed == {"x", "ghost"}

    def test_iteration_reads_everything(self):
        proxy = RecordingState(State({"x": 1, "y": 2}))
        assert sorted(proxy) == ["x", "y"]
        assert proxy.accessed == {"x", "y"}

    def test_len_is_not_a_read(self):
        proxy = RecordingState(State({"x": 1, "y": 2}))
        assert len(proxy) == 2
        assert proxy.accessed == set()


class TestPredicateReads:
    def test_symbolic_is_exact_without_probing(self):
        predicate = ((V("x") == V("y"))).predicate()
        inferred = infer_predicate_reads(predicate, STATES)
        assert inferred.reads == {"x", "y"}
        assert inferred.method == "symbolic"
        assert inferred.exact
        assert inferred.probes == 0

    def test_opaque_is_probed(self):
        predicate = Predicate(lambda s: s["x"] > 0, name="x>0", support=("x",))
        inferred = infer_predicate_reads(predicate, STATES)
        assert inferred.reads == {"x"}
        assert inferred.method == "probe"
        assert not inferred.exact
        assert inferred.probes == len(STATES)

    def test_probe_sees_through_a_lying_support(self):
        # Declared support says {x}; the body also reads y.
        predicate = Predicate(
            lambda s: s["x"] > 0 and s["y"] == 0, name="liar", support=("x",)
        )
        inferred = infer_predicate_reads(predicate, STATES)
        assert inferred.reads == {"x", "y"}

    def test_probe_keeps_partial_reads_on_exception(self):
        def raises(state):
            state["x"]
            raise RuntimeError("after reading x")

        predicate = Predicate(raises, name="raises", support=("x",))
        inferred = infer_predicate_reads(predicate, STATES)
        assert inferred.reads == {"x"}

    def test_probe_underapproximates_short_circuits(self):
        # On the probe battery z is always 0, so the z-branch never reads y.
        predicate = Predicate(
            lambda s: s["y"] > 9 if s["z"] != 0 else s["x"] >= 0,
            name="short-circuit",
            support=("x", "y", "z"),
        )
        inferred = infer_predicate_reads(predicate, STATES)
        assert "y" not in inferred.reads  # the documented under-approximation
        assert {"x", "z"} <= inferred.reads

    def test_underapproximation_never_becomes_a_false_rw001(self):
        # The sound-direction contract end to end: a data-dependent read
        # the probe battery never exercises must not turn into an RW001
        # ("declared reads don't cover inferred") *or* an RW003 ("declared
        # exceeds exact inferred") against the honest declaration. The
        # guard only consults y when z != 0, and with only 2 bits of z=0
        # domain pressure the default probes never take that branch.
        from repro.core import Program, Variable
        from repro.core.domains import IntegerRangeDomain
        from repro.staticcheck import lint_program

        bit = IntegerRangeDomain(0, 1)
        guard = Predicate(
            lambda s: s["y"] > 9 if s["z"] != 0 else s["x"] >= 0,
            name="short-circuit",
            support=("x", "y", "z"),
        )
        action = Action(
            "touchy",
            guard,
            Assignment({"x": 0}),
            reads=("x", "y", "z"),  # honest: y IS consulted on one branch
        )
        program = Program(
            "probe-under",
            [Variable("x", bit), Variable("y", bit), Variable("z", bit)],
            [action],
        )
        report = lint_program(program)
        assert "RW001" not in report.codes()
        assert "RW003" not in report.codes()


class TestEffectSupport:
    def test_symbolic_rhs_exact(self):
        effect = Assignment({"x": V("y") + 1})
        inferred = infer_effect_support(effect, STATES)
        assert inferred.reads == {"y"}
        assert inferred.writes == {"x"}
        assert inferred.method == "symbolic"

    def test_constant_rhs_reads_nothing(self):
        inferred = infer_effect_support(Assignment({"x": 7}), STATES)
        assert inferred.reads == frozenset()
        assert inferred.writes == {"x"}

    def test_opaque_rhs_probed(self):
        effect = Assignment({"x": lambda s: s["y"] + s["z"]})
        inferred = infer_effect_support(effect, STATES)
        assert inferred.reads == {"y", "z"}
        assert inferred.writes == {"x"}
        assert inferred.method == "probe"

    def test_mixed_rhs(self):
        effect = Assignment({"x": V("y"), "z": lambda s: s["x"]})
        inferred = infer_effect_support(effect, STATES)
        assert inferred.reads == {"x", "y"}
        assert inferred.writes == {"x", "z"}
        assert inferred.method == "mixed"

    def test_lying_writes_subclass_caught(self):
        class Lying(Assignment):
            @property
            def writes(self):
                return frozenset({"x"})

        inferred = infer_effect_support(Lying({"x": 0, "y": 1}), STATES)
        assert inferred.writes == {"x", "y"}


class TestActionSupport:
    def test_dsl_action_is_fully_symbolic(self):
        action = expr_action("step", V("x") != V("y"), {"y": V("x")})
        inferred = infer_action_support(action, STATES)
        assert inferred.reads == {"x", "y"}
        assert inferred.writes == {"y"}
        assert inferred.exact

    def test_action_method_mixes(self):
        action = Action(
            "opaque",
            Predicate(lambda s: s["x"] > 0, name="x>0", support=("x",)),
            Assignment({"y": V("x")}),
            reads=("x", "y"),
        )
        inferred = infer_action_support(action, STATES)
        assert inferred.reads == {"x"}
        assert inferred.writes == {"y"}
        assert inferred.method == "mixed"

    def test_inferred_support_method_on_action(self):
        action = expr_action("step", V("x") != 0, {"x": 0})
        assert action.inferred_support(STATES).reads == {"x"}


class TestCallableLocation:
    def test_lambda_has_location(self):
        location = callable_location(lambda s: s["x"])
        assert location is not None
        assert location.startswith("test_introspect.py:")

    def test_predicate_unwrapped(self):
        predicate = Predicate(lambda s: True, name="t", support=())
        location = callable_location(predicate)
        assert location is not None
        assert location.startswith("test_introspect.py:")

    def test_builtin_has_none(self):
        assert callable_location(len) is None
