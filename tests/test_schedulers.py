"""Unit tests for schedulers (daemons)."""

import pytest

from repro.core import State, ValidationError
from repro.scheduler import (
    AdversarialScheduler,
    DistributedDaemon,
    FirstEnabledScheduler,
    QueueFairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SynchronousDaemon,
)
from repro.core import Action, Assignment, IntegerRangeDomain, Predicate, Program, Variable


class TestFirstEnabled:
    def test_picks_program_order(self, counter_program):
        scheduler = FirstEnabledScheduler()
        state, actions = scheduler.advance(counter_program, State({"n": 0}), 0)
        assert actions[0].name == "inc"
        assert state["n"] == 1

    def test_terminal_returns_none(self):
        program = Program("silent", [Variable("x", IntegerRangeDomain(0, 1))], [])
        assert FirstEnabledScheduler().advance(program, State({"x": 0}), 0) is None


class TestRandomScheduler:
    def test_reproducible_after_reset(self, two_var_program):
        scheduler = RandomScheduler(seed=11)
        state = State({"a": 0, "b": 0})
        first = [scheduler.advance(two_var_program, state, i)[1][0].name for i in range(5)]
        scheduler.reset()
        second = [scheduler.advance(two_var_program, state, i)[1][0].name for i in range(5)]
        assert first == second

    def test_covers_all_enabled_actions_eventually(self, two_var_program):
        scheduler = RandomScheduler(seed=0)
        state = State({"a": 0, "b": 0})
        chosen = {
            scheduler.advance(two_var_program, state, i)[1][0].name
            for i in range(50)
        }
        assert chosen == {"inc.a", "inc.b"}


class TestRoundRobin:
    def test_cycles_through_actions(self, two_var_program):
        scheduler = RoundRobinScheduler()
        state = State({"a": 0, "b": 0})
        state, first = scheduler.advance(two_var_program, state, 0)
        state, second = scheduler.advance(two_var_program, state, 1)
        assert {first[0].name, second[0].name} == {"inc.a", "inc.b"}

    def test_skips_disabled_actions(self, two_var_program):
        scheduler = RoundRobinScheduler()
        state = State({"a": 2, "b": 0})  # inc.a disabled
        _, actions = scheduler.advance(two_var_program, state, 0)
        assert actions[0].name == "inc.b"

    def test_weakly_fair_on_window(self, two_var_program):
        # Both actions stay enabled from (0, 0); each must fire within one
        # full cycle (2 steps).
        scheduler = RoundRobinScheduler()
        state = State({"a": 0, "b": 0})
        names = []
        for step in range(2):
            state, actions = scheduler.advance(two_var_program, state, step)
            names.append(actions[0].name)
        assert set(names) == {"inc.a", "inc.b"}


class TestQueueFair:
    def test_longest_waiting_first(self, two_var_program):
        scheduler = QueueFairScheduler()
        scheduler.reset()
        state = State({"a": 0, "b": 0})
        state, first = scheduler.advance(two_var_program, state, 0)
        state, second = scheduler.advance(two_var_program, state, 1)
        # After inc.a runs it re-queues behind inc.b.
        assert first[0].name == "inc.a"
        assert second[0].name == "inc.b"


class TestAdversarial:
    def test_avoids_target_while_possible(self, counter_program):
        # Target: n = 0. From n = 3 only reset (into the target) is
        # enabled, so the adversary must concede.
        target = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        adversary = AdversarialScheduler(target, seed=0)
        state, actions = adversary.advance(counter_program, State({"n": 3}), 0)
        assert actions[0].name == "reset"

    def test_prefers_bad_successors(self, counter_program):
        # From n = 1 both... only inc is enabled; from a state where both
        # inc (stays outside) and reset (enters target) are options the
        # adversary picks the one staying outside. Build a two-action
        # state via a fresh program where both actions are enabled at 0.
        stay = Action(
            "stay",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"n": lambda s: min(3, s["n"] + 1)}),
            reads=("n",),
        )
        enter = Action(
            "enter",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"n": 0}),
            reads=("n",),
        )
        program = Program("choice", [Variable("n", IntegerRangeDomain(0, 3))], [stay, enter])
        target = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        adversary = AdversarialScheduler(target, seed=1)
        for step in range(10):
            _, actions = adversary.advance(program, State({"n": 1}), step)
            assert actions[0].name == "stay"


class TestSynchronousDaemon:
    def test_all_processes_fire(self, two_var_program):
        daemon = SynchronousDaemon()
        state, actions = daemon.advance(two_var_program, State({"a": 0, "b": 0}), 0)
        assert state == State({"a": 1, "b": 1})
        assert len(actions) == 2

    def test_guards_read_old_state(self):
        # Classic synchronous swap: both processes copy the other's value
        # as of the beginning of the step.
        domain = IntegerRangeDomain(0, 9)
        copy_b = Action(
            "copy-b",
            Predicate(lambda s: s["a"] != s["b"], name="a != b", support=("a", "b")),
            Assignment({"a": lambda s: s["b"]}),
            reads=("a", "b"),
            process="pa",
        )
        copy_a = Action(
            "copy-a",
            Predicate(lambda s: s["a"] != s["b"], name="a != b", support=("a", "b")),
            Assignment({"b": lambda s: s["a"]}),
            reads=("a", "b"),
            process="pb",
        )
        program = Program(
            "swap",
            [Variable("a", domain, process="pa"), Variable("b", domain, process="pb")],
            [copy_b, copy_a],
        )
        daemon = SynchronousDaemon()
        state, _ = daemon.advance(program, State({"a": 1, "b": 2}), 0)
        assert state == State({"a": 2, "b": 1})

    def test_conflicting_writes_rejected(self):
        domain = IntegerRangeDomain(0, 9)
        writer1 = Action(
            "w1",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"x": 1}),
            reads=("x",),
            process="p1",
        )
        writer2 = Action(
            "w2",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"x": 2}),
            reads=("x",),
            process="p2",
        )
        program = Program("conflict", [Variable("x", domain)], [writer1, writer2])
        with pytest.raises(ValidationError, match="disjoint"):
            SynchronousDaemon().advance(program, State({"x": 0}), 0)

    def test_terminal_returns_none(self, counter_program):
        daemon = SynchronousDaemon()
        silent = Program("silent", [Variable("x", IntegerRangeDomain(0, 1))], [])
        assert daemon.advance(silent, State({"x": 0}), 0) is None


class TestDistributedDaemon:
    def test_fires_nonempty_subset(self, two_var_program):
        daemon = DistributedDaemon(seed=3, activation_probability=0.5)
        state = State({"a": 0, "b": 0})
        _, actions = daemon.advance(two_var_program, state, 0)
        assert 1 <= len(actions) <= 2

    def test_reproducible(self, two_var_program):
        state = State({"a": 0, "b": 0})
        daemon = DistributedDaemon(seed=5)
        first = [a.name for a in daemon.advance(two_var_program, state, 0)[1]]
        daemon.reset()
        second = [a.name for a in daemon.advance(two_var_program, state, 0)[1]]
        assert first == second

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            DistributedDaemon(seed=0, activation_probability=0.0)
