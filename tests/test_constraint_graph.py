"""Unit tests for constraint graphs: well-formedness, classification, ranks."""

import pytest

from repro.core import (
    Action,
    Assignment,
    Constraint,
    ConstraintGraph,
    ConvergenceBinding,
    GraphEdge,
    GraphNode,
    IllFormedGraphError,
    Predicate,
)


def node(name: str, *variables: str) -> GraphNode:
    return GraphNode(name, frozenset(variables))


def binding(constraint_name: str, reads: tuple[str, ...], writes: str) -> ConvergenceBinding:
    """A binding whose action reads ``reads`` and writes ``writes``.

    The constraint's support equals the read set, matching the paper's
    convention that the convergence action checks the constraint.
    """
    constraint = Constraint(
        name=constraint_name,
        predicate=Predicate(lambda s: True, name=constraint_name, support=reads),
    )
    action = Action(
        f"fix-{constraint_name}",
        Predicate(lambda s: False, name=f"not {constraint_name}", support=reads),
        Assignment({writes: 0}),
        reads=reads,
    )
    return ConvergenceBinding(constraint=constraint, action=action)


class TestFromBindings:
    def test_edge_derivation(self):
        nodes = [node("X", "x"), node("Y", "y")]
        graph = ConstraintGraph.from_bindings(nodes, [binding("c", ("x", "y"), "y")])
        assert len(graph.edges) == 1
        edge = graph.edges[0]
        assert edge.source.name == "X"
        assert edge.target.name == "Y"
        assert not edge.is_self_loop

    def test_self_loop_when_reads_fit_target(self):
        nodes = [node("X", "x")]
        graph = ConstraintGraph.from_bindings(nodes, [binding("c", ("x",), "x")])
        assert graph.edges[0].is_self_loop

    def test_overlapping_labels_rejected(self):
        with pytest.raises(IllFormedGraphError, match="mutually exclusive"):
            ConstraintGraph.from_bindings(
                [node("A", "x"), node("B", "x")], []
            )

    def test_uncovered_variable_rejected(self):
        with pytest.raises(IllFormedGraphError, match="no node label covers"):
            ConstraintGraph.from_bindings(
                [node("X", "x")], [binding("c", ("x", "ghost"), "x")]
            )

    def test_reads_spanning_three_nodes_rejected(self):
        nodes = [node("X", "x"), node("Y", "y"), node("Z", "z")]
        with pytest.raises(IllFormedGraphError, match="span multiple nodes"):
            ConstraintGraph.from_bindings(nodes, [binding("c", ("x", "y", "z"), "z")])

    def test_writes_spanning_two_nodes_rejected(self):
        nodes = [node("X", "x"), node("Y", "y")]
        constraint = Constraint(
            name="c",
            predicate=Predicate(lambda s: True, name="c", support=("x",)),
        )
        action = Action(
            "wide",
            Predicate(lambda s: False, name="g", support=("x",)),
            Assignment({"x": 0, "y": 0}),
            reads=("x", "y"),
        )
        with pytest.raises(IllFormedGraphError, match="span multiple nodes"):
            ConstraintGraph.from_bindings(
                nodes, [ConvergenceBinding(constraint=constraint, action=action)]
            )


class TestClassification:
    def test_paper_example_is_out_tree(self):
        # Section 4: constraints x != y and x <= z, fixed by writing y and z.
        nodes = [node("X", "x"), node("Y", "y"), node("Z", "z")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("x!=y", ("x", "y"), "y"), binding("x<=z", ("x", "z"), "z")],
        )
        assert graph.is_out_tree()
        assert graph.classification() == "out-tree"
        assert graph.is_self_looping()  # out-trees are a special case

    def test_shared_target_not_out_tree(self):
        nodes = [node("X", "x"), node("Y", "y"), node("Z", "z")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x", "y"), "x"), binding("c2", ("x", "z"), "x")],
        )
        assert not graph.is_out_tree()
        assert graph.is_self_looping()
        assert graph.classification() == "self-looping"

    def test_self_loop_disqualifies_out_tree(self):
        nodes = [node("X", "x"), node("Y", "y")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x",), "x"), binding("c2", ("x", "y"), "y")],
        )
        assert not graph.is_out_tree()
        assert graph.is_self_looping()

    def test_two_cycle_is_cyclic(self):
        nodes = [node("X", "x"), node("Y", "y")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x", "y"), "y"), binding("c2", ("x", "y"), "x")],
        )
        assert graph.has_proper_cycle()
        assert graph.classification() == "cyclic"
        with pytest.raises(IllFormedGraphError):
            graph.ranks()

    def test_disconnected_forest_not_out_tree(self):
        nodes = [node("A", "a"), node("B", "b"), node("C", "c"), node("D", "d")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("a", "b"), "b"), binding("c2", ("c", "d"), "d")],
        )
        assert not graph.is_weakly_connected()
        assert not graph.is_out_tree()

    def test_inactive_nodes_ignored_for_connectivity(self):
        nodes = [node("A", "a"), node("B", "b"), node("Unused", "u")]
        graph = ConstraintGraph.from_bindings(
            nodes, [binding("c", ("a", "b"), "b")]
        )
        assert graph.is_weakly_connected()
        assert graph.is_out_tree()
        assert [n.name for n in graph.active_nodes()] == ["A", "B"]


class TestRanks:
    def test_chain_ranks(self):
        nodes = [node("A", "a"), node("B", "b"), node("C", "c")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("a", "b"), "b"), binding("c2", ("b", "c"), "c")],
        )
        ranks = {n.name: r for n, r in graph.ranks().items()}
        assert ranks == {"A": 1, "B": 2, "C": 3}

    def test_self_loop_does_not_raise_rank(self):
        nodes = [node("A", "a"), node("B", "b")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("a", "b"), "b"), binding("c2", ("b",), "b")],
        )
        ranks = {n.name: r for n, r in graph.ranks().items()}
        assert ranks == {"A": 1, "B": 2}

    def test_diamond_rank_is_max_plus_one(self):
        nodes = [node("A", "a"), node("B", "b"), node("C", "c"), node("D", "d")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [
                binding("c1", ("a", "b"), "b"),
                binding("c2", ("a", "c"), "c"),
                binding("c3", ("b", "d"), "d"),
                binding("c4", ("c", "d"), "d"),
            ],
        )
        ranks = {n.name: r for n, r in graph.ranks().items()}
        assert ranks == {"A": 1, "B": 2, "C": 2, "D": 3}


class TestRefinements:
    def test_subgraph_by_bindings(self):
        nodes = [node("A", "a"), node("B", "b")]
        b1 = binding("c1", ("a", "b"), "b")
        b2 = binding("c2", ("a", "b"), "a")
        graph = ConstraintGraph.from_bindings(nodes, [b1, b2])
        assert graph.has_proper_cycle()
        sub = graph.subgraph([b1])
        assert len(sub.edges) == 1
        assert not sub.has_proper_cycle()

    def test_restricted_to_states_drops_satisfied_edges(self):
        from repro.core import State

        nodes = [node("X", "x"), node("Y", "y")]
        always = Constraint(
            name="always",
            predicate=Predicate(lambda s: True, name="always", support=("x", "y")),
        )
        action = Action(
            "fix-always",
            Predicate(lambda s: False, name="g", support=("x", "y")),
            Assignment({"y": 0}),
            reads=("x", "y"),
        )
        graph = ConstraintGraph.from_bindings(
            nodes, [ConvergenceBinding(constraint=always, action=action)]
        )
        refined = graph.restricted_to_states([State({"x": 0, "y": 0})])
        assert len(refined.edges) == 0


class TestClassificationEdgeCases:
    """Pin the classification of degenerate and borderline shapes."""

    def test_single_node_no_edges_is_self_looping(self):
        graph = ConstraintGraph.from_bindings([node("X", "x")], [])
        assert not graph.is_out_tree()  # no active nodes, no root
        assert graph.is_self_looping()
        assert graph.classification() == "self-looping"

    def test_single_node_self_loop_is_self_looping(self):
        graph = ConstraintGraph.from_bindings(
            [node("X", "x")], [binding("c", ("x",), "x")]
        )
        # The self-loop counts toward indegree, so this is not an
        # out-tree even though the underlying shape is a single node.
        assert not graph.is_out_tree()
        assert graph.classification() == "self-looping"

    def test_self_loop_mixed_into_out_tree_demotes_it(self):
        nodes = [node("X", "x"), node("Y", "y")]
        chain = binding("c1", ("x", "y"), "y")
        loop = binding("c2", ("y",), "y")
        assert ConstraintGraph.from_bindings(
            nodes, [chain]
        ).classification() == "out-tree"
        graph = ConstraintGraph.from_bindings(nodes, [chain, loop])
        assert graph.classification() == "self-looping"
        # Ranks stay defined: the self-loop is ignored by the rank order.
        ranks = {n.name: r for n, r in graph.ranks().items()}
        assert ranks == {"X": 1, "Y": 2}

    def test_disconnected_components_are_not_an_out_tree(self):
        nodes = [node("X", "x"), node("Y", "y"), node("Z", "z"), node("W", "w")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x", "y"), "y"), binding("c2", ("z", "w"), "w")],
        )
        # Two acyclic trees: two roots, not weakly connected.
        assert not graph.is_weakly_connected()
        assert not graph.is_out_tree()
        assert graph.classification() == "self-looping"

    def test_multi_edge_pair_same_direction(self):
        nodes = [node("X", "x"), node("Y", "y")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x", "y"), "y"), binding("c2", ("x", "y"), "y")],
        )
        # Parallel edges give the target indegree 2 — not an out-tree,
        # but still acyclic, so Theorem 2 applies.
        assert len(graph.edges) == 2
        assert graph.indegree(graph.edges[0].target) == 2
        assert graph.classification() == "self-looping"

    def test_multi_edge_pair_opposite_directions_is_cyclic(self):
        nodes = [node("X", "x"), node("Y", "y")]
        graph = ConstraintGraph.from_bindings(
            nodes,
            [binding("c1", ("x", "y"), "y"), binding("c2", ("x", "y"), "x")],
        )
        assert graph.has_proper_cycle()
        assert graph.classification() == "cyclic"
        with pytest.raises(IllFormedGraphError, match="self-looping"):
            graph.ranks()


class TestValidateMessages:
    """The well-formedness errors name the action, the edge, and the
    exact offending variable set (satellite of the staticcheck PR)."""

    def _edge(self, reads, writes, source, target):
        b = binding("c", reads, writes)
        return GraphEdge(source=source, target=target, binding=b)

    def test_write_escape_names_action_edge_and_variables(self):
        x, y = node("X", "x"), node("Y", "y")
        # The action writes x but the edge claims target Y.
        edge = self._edge(("x",), "x", x, y)
        with pytest.raises(
            IllFormedGraphError,
            match=r"action 'fix-c' on edge 'X' -> 'Y' writes \['x'\] outside "
                  r"its target node 'Y' \(label \['y'\]\)",
        ):
            ConstraintGraph([x, y], [edge])

    def test_read_escape_names_action_edge_and_variables(self):
        x, y, z = node("X", "x"), node("Y", "y"), node("Z", "z")
        edge = self._edge(("x", "z"), "x", y, x)
        with pytest.raises(
            IllFormedGraphError,
            match=r"action 'fix-c' on edge 'Y' -> 'X' reads \['z'\] outside "
                  r"the union of its nodes \(label \['x', 'y'\]\)",
        ):
            ConstraintGraph([x, y, z], [edge])

    def test_constraint_support_escape_names_constraint_and_edge(self):
        x, y, z = node("X", "x"), node("Y", "y"), node("Z", "z")
        constraint = Constraint(
            name="c",
            predicate=Predicate(lambda s: True, name="c", support=("x", "z")),
        )
        action = Action(
            "fix-c",
            Predicate(lambda s: False, name="g", support=("x",)),
            Assignment({"x": 0}),
            reads=("x",),
        )
        # The constraint consults z, but the edge Y -> X does not cover it.
        bad_edge = GraphEdge(
            source=y, target=x,
            binding=ConvergenceBinding(constraint=constraint, action=action),
        )
        with pytest.raises(
            IllFormedGraphError,
            match=r"constraint 'c' on edge 'Y' -> 'X' reads \['z'\] outside "
                  r"the union of its nodes \(label \['x', 'y'\]\)",
        ):
            ConstraintGraph([x, y, z], [bad_edge])
        # The matching placement (Z -> X covers z) is accepted.
        good_edge = GraphEdge(
            source=z, target=x,
            binding=ConvergenceBinding(constraint=constraint, action=action),
        )
        assert len(ConstraintGraph([x, y, z], [good_edge]).edges) == 1


class TestDeterministicMessages:
    """Errors naming a variable or node set pick it deterministically.

    Set iteration order varies with hash seeding, so every error path
    must sort before choosing which variable to name — the same
    determinism bar the lint report meets.
    """

    def test_overlap_error_names_lexicographically_first_variable(self):
        first = node("N1", "p", "q", "z", "m", "a")
        second = node("N2", "p", "q", "z", "m", "a")
        with pytest.raises(
            IllFormedGraphError,
            match=r"variable 'a' appears in the labels of both 'N1' and 'N2'",
        ):
            ConstraintGraph.from_bindings([first, second], [])

    def test_uncovered_error_names_lexicographically_first_variable(self):
        # Neither write is covered; the error must name 'u', not
        # whichever of {u, v} the set yields first.
        b = binding("c", ("u", "v"), "u")
        b = ConvergenceBinding(
            constraint=b.constraint,
            action=Action(
                "fix-c",
                b.action.guard,
                Assignment({"v": 0, "u": 0}),
                reads=("u", "v"),
            ),
        )
        with pytest.raises(
            IllFormedGraphError,
            match=r"action 'fix-c' writes variable 'u' which no node label "
                  r"covers",
        ):
            ConstraintGraph.from_bindings([node("X", "x")], [b])

    def test_span_error_lists_nodes_sorted(self):
        b = binding("c", ("u", "v"), "u")
        b = ConvergenceBinding(
            constraint=b.constraint,
            action=Action(
                "fix-c",
                b.action.guard,
                Assignment({"v": 0, "u": 0}),
                reads=("u", "v"),
            ),
        )
        with pytest.raises(
            IllFormedGraphError,
            match=r"writes span multiple nodes \['U', 'V'\]",
        ):
            ConstraintGraph.from_bindings(
                [node("V", "v"), node("U", "u")], [b]
            )
