"""Tests for the caching atomicity refinement (paper Section 8).

The headline facts, each verified here:
- the refinement is syntactically correct: refined actions read at most
  one remote process; caches copy one remote variable each;
- from cache-coherent states the refined program simulates the original
  step for step;
- the naive refinement does NOT preserve convergence in general — the
  model checker finds a weakly-fair livelock for the star diffusing
  computation (this is exactly why the paper defers refinement to a
  companion paper);
- under a copy-priority daemon the refined program does stabilize;
- for programs whose actions were already low-atomicity, the selective
  refinement (``max_remote_processes=1``) is the identity.
"""

import random

import pytest

from repro.core import TRUE, State
from repro.protocols.diffusing import (
    build_diffusing_design,
    diffusing_invariant,
)
from repro.refinement import cache_coherence, cache_var, refine_with_caches
from repro.scheduler import FirstEnabledScheduler, PriorityScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import balanced_tree, chain_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance


def owner_of(name: str) -> str:
    return name.split(".", 1)[1]


class TestConstruction:
    def test_caches_created_for_foreign_reads(self):
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program)
        # Node 1 propagates from its parent 0: caches for c.0 and sn.0.
        assert cache_var(1, "c.0") in refined.variables
        assert cache_var(1, "sn.0") in refined.variables
        # The root reflects over children 1 and 2: caches for both.
        assert cache_var(0, "c.1") in refined.variables
        assert cache_var(0, "c.2") in refined.variables

    def test_refined_actions_read_locally(self):
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program)
        owner = {
            name: variable.process for name, variable in refined.variables.items()
        }
        for action in refined.actions:
            remote = {
                owner[read] for read in action.reads if owner[read] != action.process
            }
            assert len(remote) <= 1, action.name

    def test_copy_actions_read_one_remote_variable(self):
        tree = chain_tree(3)
        refined = refine_with_caches(build_diffusing_design(tree).program)
        copies = [a for a in refined.actions if a.name.startswith("copy.")]
        assert copies
        for action in copies:
            assert len(action.reads) == 2  # the cache and its source
            assert len(action.writes) == 1

    def test_selective_refinement_keeps_low_atomicity_actions(self):
        tree = chain_tree(3)  # every node has at most one child
        program = build_diffusing_design(tree).program
        refined = refine_with_caches(program, max_remote_processes=1)
        # Nothing in a chain reads two remote processes: identity.
        assert {a.name for a in refined.actions} == {a.name for a in program.actions}
        assert set(refined.variables) == set(program.variables)

    def test_requires_process_ownership(self):
        from repro.core import Action, Assignment, IntegerRangeDomain, Predicate, Program, Variable

        program = Program(
            "ownerless",
            [Variable("x", IntegerRangeDomain(0, 1))],
            [
                Action(
                    "a",
                    Predicate(lambda s: True, name="t", support=()),
                    Assignment({"x": 0}),
                    reads=("x",),
                )
            ],
        )
        with pytest.raises(ValueError, match="owning process"):
            refine_with_caches(program)


class TestSimulationFidelity:
    def _coherent_state(self, program, refined, base_values):
        values = dict(base_values)
        for name in refined.variables:
            if name.startswith("cache."):
                _, _process, source = name.split(".", 2)
                values[name] = values[source]
        return refined.make_state(values)

    def test_refined_simulates_original_from_coherent_states(self):
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        program = design.program
        refined = refine_with_caches(program)
        coherent = cache_coherence(program, refined)

        from repro.protocols.diffusing import all_green_state

        state = self._coherent_state(program, refined, all_green_state(tree))
        assert coherent(state)
        # Protocol actions enabled in the refined program match the
        # original's enabled set at the projected state.
        original_state = program.make_state(all_green_state(tree))
        original_enabled = {a.name for a in program.enabled_actions(original_state)}
        refined_enabled = {
            a.name
            for a in refined.enabled_actions(state)
            if not a.name.startswith("copy.")
        }
        assert refined_enabled == original_enabled

    def test_priority_daemon_runs_are_projections_of_original_runs(self):
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program)
        from repro.protocols.diffusing import all_green_state

        state = self._coherent_state(design.program, refined, all_green_state(tree))
        scheduler = PriorityScheduler(
            lambda name: name.startswith("copy."), FirstEnabledScheduler()
        )
        result = run(refined, state, scheduler, max_steps=60)
        invariant = diffusing_invariant(tree)
        # The wave invariant holds at every step: the refined run never
        # leaves legitimate territory when started coherent.
        for visited in result.computation.states():
            assert invariant(visited)


class TestConvergencePreservation:
    def test_naive_refinement_breaks_weak_fair_convergence(self):
        # The library's headline refinement finding (E11): a fair
        # livelock exists for the fully cached chain.
        tree = chain_tree(3)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program)
        report = check_tolerance(
            refined,
            diffusing_invariant(tree),
            TRUE,
            refined.state_space(),
            fairness="weak",
        )
        assert not report.ok
        assert report.convergence.counterexample is not None

    def test_selective_refinement_also_fails_on_star(self):
        # Even refining only the high-atomicity reflect action (the
        # paper's Section 8 example) admits a fair livelock.
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program, max_remote_processes=1)
        report = check_tolerance(
            refined,
            diffusing_invariant(tree),
            TRUE,
            refined.state_space(),
            fairness="weak",
        )
        assert not report.ok

    def test_priority_daemon_recovers_stabilization(self):
        tree = balanced_tree(2, 2)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program, max_remote_processes=1)
        invariant = diffusing_invariant(tree)
        for trial in range(6):
            scheduler = PriorityScheduler(
                lambda name: name.startswith("copy."), RandomScheduler(trial)
            )
            result = run(
                refined,
                refined.random_state(random.Random(trial)),
                scheduler,
                max_steps=30_000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_random_daemon_stabilizes_in_practice(self):
        # The fair livelock needs an adversarially coordinated schedule;
        # under random scheduling the refined program stabilizes anyway.
        tree = star_tree(4)
        design = build_diffusing_design(tree)
        refined = refine_with_caches(design.program, max_remote_processes=1)
        invariant = diffusing_invariant(tree)
        for trial in range(6):
            result = run(
                refined,
                refined.random_state(random.Random(100 + trial)),
                RandomScheduler(trial),
                max_steps=30_000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized


class TestCacheCoherencePredicate:
    def test_detects_stale_cache(self):
        tree = chain_tree(3)
        program = build_diffusing_design(tree).program
        refined = refine_with_caches(program)
        coherent = cache_coherence(program, refined)
        values = {}
        for name, variable in refined.variables.items():
            domain_values = list(variable.domain.values())
            values[name] = domain_values[0]
        state = State(values)
        # All-first-value is coherent by construction here.
        assert coherent(state)
        some_cache = next(n for n in refined.variables if n.startswith("cache."))
        source = some_cache.split(".", 2)[2]
        flipped = [v for v in refined.variables[some_cache].domain.values()
                   if v != state[source]][0]
        assert not coherent(state.update({some_cache: flipped}))
