"""Unit tests for content-addressed program/instance fingerprints."""

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    Variable,
    fingerprint_instance,
    fingerprint_predicate,
    fingerprint_program,
    probe_states,
)


def make_counter(limit: int = 3, *, reset_to: int = 0, name: str = "counter"):
    n = Variable("n", IntegerRangeDomain(0, limit))
    inc = Action(
        "inc",
        Predicate(lambda s: s["n"] < limit, name=f"n < {limit}", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
    )
    reset = Action(
        "reset",
        Predicate(lambda s: s["n"] == limit, name=f"n = {limit}", support=("n",)),
        Assignment({"n": lambda s: reset_to}),
        reads=("n",),
    )
    return Program(name, [n], [inc, reset])


ZERO = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


class TestProbeStates:
    def test_deterministic(self):
        program = make_counter()
        assert probe_states(program) == probe_states(program)

    def test_states_are_valid(self):
        program = make_counter()
        for state in probe_states(program):
            assert 0 <= state["n"] <= 3


class TestProgramFingerprint:
    def test_stable_across_rebuilds(self):
        # Rebuilding the identical program (fresh lambda objects) must
        # hash to the same fingerprint — that is the whole point of the
        # behavioural probe over object identity.
        assert fingerprint_program(make_counter()) == fingerprint_program(
            make_counter()
        )

    def test_is_hex_digest(self):
        digest = fingerprint_program(make_counter())
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_domain_change_detected(self):
        assert fingerprint_program(make_counter(3)) != fingerprint_program(
            make_counter(4)
        )

    def test_behaviour_change_detected(self):
        # Same variables, same action names and guards; only the reset
        # assignment's *behaviour* differs.
        assert fingerprint_program(make_counter(reset_to=0)) != fingerprint_program(
            make_counter(reset_to=1)
        )

    def test_name_change_detected(self):
        assert fingerprint_program(make_counter(name="a")) != fingerprint_program(
            make_counter(name="b")
        )


class TestPredicateFingerprint:
    def test_stable_across_rebuilds(self):
        program = make_counter()
        again = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        assert fingerprint_predicate(ZERO, program) == fingerprint_predicate(
            again, program
        )

    def test_verdict_change_detected(self):
        program = make_counter()
        one = Predicate(lambda s: s["n"] == 1, name="n = 0", support=("n",))
        # Same display name, different verdicts on the probe battery.
        assert fingerprint_predicate(ZERO, program) != fingerprint_predicate(
            one, program
        )


class TestInstanceFingerprint:
    def test_stable_across_rebuilds(self):
        a = fingerprint_instance(make_counter(), ZERO)
        b = fingerprint_instance(make_counter(), ZERO)
        assert a == b

    def test_fairness_discriminates(self):
        a = fingerprint_instance(make_counter(), ZERO, fairness="weak")
        b = fingerprint_instance(make_counter(), ZERO, fairness="none")
        assert a != b

    def test_extra_tokens_discriminate(self):
        a = fingerprint_instance(make_counter(), ZERO, extra=("states=full",))
        b = fingerprint_instance(make_counter(), ZERO, extra=("window[0,3]",))
        assert a != b

    def test_fault_span_discriminates(self):
        span = Predicate(lambda s: s["n"] <= 2, name="n <= 2", support=("n",))
        a = fingerprint_instance(make_counter(), ZERO)
        b = fingerprint_instance(make_counter(), ZERO, span)
        assert a != b
