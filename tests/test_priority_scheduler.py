"""Tests for the priority scheduler."""

from repro.core import State
from repro.scheduler import FirstEnabledScheduler, PriorityScheduler, RandomScheduler


class TestPriorityScheduler:
    def test_priority_actions_preferred(self, two_var_program):
        scheduler = PriorityScheduler(
            lambda name: name == "inc.b", FirstEnabledScheduler()
        )
        state = State({"a": 0, "b": 0})
        _, actions = scheduler.advance(two_var_program, state, 0)
        assert actions[0].name == "inc.b"

    def test_falls_back_when_priority_class_disabled(self, two_var_program):
        scheduler = PriorityScheduler(
            lambda name: name == "inc.b", FirstEnabledScheduler()
        )
        state = State({"a": 0, "b": 2})  # inc.b disabled
        _, actions = scheduler.advance(two_var_program, state, 0)
        assert actions[0].name == "inc.a"

    def test_terminal_returns_none(self, two_var_program):
        scheduler = PriorityScheduler(lambda name: True, FirstEnabledScheduler())
        state = State({"a": 2, "b": 2})
        assert scheduler.advance(two_var_program, state, 0) is None

    def test_reset_propagates_to_base(self, two_var_program):
        base = RandomScheduler(5)
        scheduler = PriorityScheduler(lambda name: False, base)
        state = State({"a": 0, "b": 0})
        first = [
            scheduler.advance(two_var_program, state, i)[1][0].name for i in range(4)
        ]
        scheduler.reset()
        second = [
            scheduler.advance(two_var_program, state, i)[1][0].name for i in range(4)
        ]
        assert first == second
