"""Tests for the protocol linter (repro.staticcheck).

Covers the diagnostic catalog (via the seeded ill-formed fixture, which
must trigger every code), the support-table inference layer, the public
lint entry points, the service's opt-in lint precheck, and the lint.*
observability events.
"""

import pytest

from repro.core import Predicate, Program, Variable
from repro.core.domains import IntegerRangeDomain
from repro.core.errors import ValidationError
from repro.core.expr import V, expr_action
from repro.observability import (
    LINT_DIAGNOSTIC,
    LINT_FINISH,
    LINT_START,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)
from repro.staticcheck import (
    CODES,
    ERROR,
    EXPECTED_CODES,
    INFO,
    SEVERITIES,
    WARNING,
    LintReport,
    build_support_table,
    diagnostic,
    ill_formed_design,
    ill_formed_faults,
    lint_case,
    lint_design,
    lint_library,
    lint_program,
    selftest,
)
from repro.verification.service import VerificationService

DIAGNOSTIC_KEYS = {"code", "severity", "message", "subject", "location", "hint"}
REPORT_KEYS = {"subject", "ok", "strict_ok", "probes", "seconds", "counts", "diagnostics"}


def _bit(name):
    return Variable(name, IntegerRangeDomain(0, 1))


def _drifting_program():
    """A program whose opaque guard reads a variable it never declared."""
    action = expr_action("fix-x", V("x") != 0, {"x": 0})
    sneaky = Predicate(lambda s: s["y"] != 0 and s["x"] == 0, name="sneaky", support=("y",))
    from repro.core import Action, Assignment

    drift = Action("drift", sneaky, Assignment({"y": 0}), reads=("y",))
    return Program("drifting", [_bit("x"), _bit("y")], [action, drift])


def _clean_program():
    actions = [
        expr_action("fix-x", V("x") != 0, {"x": 0}),
        expr_action("fix-y", (V("x") == 0) & (V("y") != 0), {"y": 0}),
    ]
    return Program("clean", [_bit("x"), _bit("y")], actions)


class TestCatalog:
    def test_every_code_has_severity_title_hint(self):
        assert set(CODES) == EXPECTED_CODES
        for code, (severity, title, hint) in CODES.items():
            assert severity in SEVERITIES
            assert title
            assert hint

    def test_severity_partition(self):
        by_severity = {s: {c for c, (sev, _, _) in CODES.items() if sev == s} for s in SEVERITIES}
        assert by_severity[ERROR] == {
            "RW001", "RW002", "CG001", "CG002", "CG003", "TH001",
            "DF002", "IF003",
        }
        assert by_severity[WARNING] == {
            "GD001", "VT001", "CP001", "DF001", "DF004",
            "IF001", "IF002", "IF004",
        }
        assert by_severity[INFO] == {"RW003", "DF003"}

    def test_factory_fills_catalog_fields(self):
        d = diagnostic("RW001", "msg", subject="a", location="f.py:1")
        assert d.severity == ERROR
        assert d.hint == CODES["RW001"][2]
        assert d.as_dict().keys() == DIAGNOSTIC_KEYS

    def test_factory_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            diagnostic("XX999", "msg", subject="a")


class TestSelftest:
    """The seeded ill-formed fixture triggers the full catalog."""

    def test_every_code_fires(self):
        report, missing = selftest()
        assert missing == frozenset()
        assert report.codes() == EXPECTED_CODES

    def test_fixture_reports_dirty(self):
        report, _ = selftest()
        assert not report.ok
        assert not report.strict_ok
        assert not report  # __bool__ mirrors ok

    def test_errors_ordered_first(self):
        report, _ = selftest()
        severities = [d.severity for d in report.diagnostics]
        assert severities == sorted(
            severities, key=[ERROR, WARNING, INFO].index
        )

    def test_diagnostics_carry_locations_where_known(self):
        report, _ = selftest()
        # The sneaky opaque guard is a def in selftest.py; RW001 must
        # point at it.
        rw001 = report.by_code("RW001")
        assert any(d.location and "selftest.py" in d.location for d in rw001)

    def test_fixture_is_constructible_without_linting(self):
        design = ill_formed_design()
        assert design.name == "ill-formed"
        assert len(design.bindings) >= 8


class TestSupportTable:
    def test_rows_cover_actions_and_constraints(self):
        program = _clean_program()
        table = build_support_table(program)
        assert {row.name for row in table.actions()} == {"fix-x", "fix-y"}
        assert table.row("fix-x").inferred.exact

    def test_undeclared_read_surfaces(self):
        table = build_support_table(_drifting_program())
        row = table.row("drift")
        assert "x" in row.undeclared_reads

    def test_sound_direction_only_for_probes(self):
        # The probe is not exact, so over-declared reads must be empty
        # even if the probe never saw a declared variable read.
        program = _drifting_program()
        table = build_support_table(program)
        row = table.row("drift")
        assert not row.inferred.exact
        assert row.over_declared_reads == frozenset()

    def test_as_dict_round_trips(self):
        table = build_support_table(_clean_program())
        payload = table.as_dict()
        assert payload["subject"] == "clean"
        assert len(payload["rows"]) == 2


class TestLintProgram:
    def test_clean_program_is_strict_clean(self):
        report = lint_program(_clean_program())
        assert report.ok
        assert report.strict_ok
        assert report.codes() == frozenset()

    def test_declaration_drift_is_rw001(self):
        report = lint_program(_drifting_program())
        assert not report.ok
        assert "RW001" in report.codes()
        [d] = report.by_code("RW001")
        assert "drift" in d.subject
        assert "'x'" in d.message

    def test_unsatisfiable_guard_is_gd001(self):
        stuck = expr_action("stuck", (V("x") == 0) & (V("x") == 1), {"y": 1})
        program = Program("gd", [_bit("x"), _bit("y")], [stuck])
        report = lint_program(program)
        assert "GD001" in report.codes()
        assert report.ok  # GD001 is a warning, not an error

    def test_never_read_variable_is_vt001(self):
        program = Program(
            "vt",
            [_bit("x"), _bit("dead")],
            [expr_action("fix-x", V("x") != 0, {"x": 0})],
        )
        report = lint_program(program)
        [d] = report.by_code("VT001")
        assert "dead" in d.subject

    def test_invariant_support_counts_as_reading(self):
        program = Program(
            "vt-inv",
            [_bit("x"), _bit("watched")],
            [expr_action("fix-x", V("x") != 0, {"x": 0})],
        )
        invariant = (V("watched") == 0).predicate(name="S")
        report = lint_program(program, invariant=invariant)
        assert "VT001" not in report.codes()

    def test_report_schema_is_stable(self):
        report = lint_program(_drifting_program())
        payload = report.as_dict()
        assert payload.keys() == REPORT_KEYS
        assert payload["counts"].keys() == {"error", "warning", "info"}
        for entry in payload["diagnostics"]:
            assert entry.keys() == DIAGNOSTIC_KEYS

    def test_run_report_carries_counters(self):
        report = lint_program(_drifting_program())
        run = report.run_report().as_dict()
        assert run["counters"]["lint.errors"] >= 1
        assert "lint" in run["timers"]


class TestLintDesign:
    def test_ill_formed_design_full_catalog(self):
        report = lint_design(ill_formed_design(), faults=ill_formed_faults())
        assert report.codes() == EXPECTED_CODES

    def test_without_faults_if004_is_silent(self):
        report = lint_design(ill_formed_design())
        assert "IF004" not in report.codes()
        assert report.codes() == EXPECTED_CODES - {"IF004"}

    def test_semantic_off_suppresses_df_and_if(self):
        report = lint_design(
            ill_formed_design(), faults=ill_formed_faults(), semantic=False
        )
        fired = report.codes()
        assert not any(code.startswith(("DF", "IF")) for code in fired)
        assert "RW001" in fired  # the classic passes still run

    def test_theorem_3_with_layers_suppresses_cg003(self):
        report = lint_design(ill_formed_design(), theorem="3")
        # theorem 3 tolerates cycles, but the fixture declares no layers.
        assert "CG003" in report.codes()


class TestLintCaseAndLibrary:
    def test_unknown_case_raises(self):
        with pytest.raises(ValidationError):
            lint_case("no-such-case")

    def test_case_subject_names_size(self):
        report = lint_case("diffusing-chain", 3)
        assert report.subject == "diffusing-chain (n=3)"

    def test_library_is_strict_clean(self):
        # The acceptance bar: the whole shipped library lints clean.
        reports = lint_library()
        assert reports  # non-empty
        dirty = {name: r.codes() for name, r in reports.items() if not r.strict_ok}
        assert dirty == {}

    def test_library_subset_selection(self):
        reports = lint_library(names=["mis-cycle"])
        assert list(reports) == ["mis-cycle"]


class TestServicePrecheck:
    def test_lint_precheck_short_circuits(self):
        program = _drifting_program()
        invariant = Predicate(lambda s: True, name="S", support=())
        service = VerificationService()
        verdict = service.verify_tolerance(program, invariant, lint=True)
        assert verdict.record["ok"] is False
        assert verdict.record["lint_ok"] is False
        assert verdict.report is None
        assert not verdict.cached
        lint_payload = verdict.record["lint"]
        assert lint_payload.keys() == REPORT_KEYS
        assert "lint precheck FAILED" in verdict.describe()

    def test_lint_precheck_never_cached(self):
        program = _drifting_program()
        invariant = Predicate(lambda s: True, name="S", support=())
        service = VerificationService()
        service.verify_tolerance(program, invariant, lint=True)
        again = service.verify_tolerance(program, invariant, lint=True)
        assert not again.cached  # fixing declarations must retrigger

    def test_clean_program_passes_through(self):
        program = _clean_program()
        invariant = ((V("x") == 0) & (V("y") == 0)).predicate(name="S")
        service = VerificationService()
        verdict = service.verify_tolerance(program, invariant, lint=True)
        assert "lint" not in verdict.record
        assert verdict.report is not None

    def test_lint_off_by_default(self):
        program = _drifting_program()
        invariant = Predicate(lambda s: True, name="S", support=())
        verdict = VerificationService().verify_tolerance(program, invariant)
        assert "lint" not in verdict.record


class TestObservability:
    def test_lint_emits_trace_events(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        report = lint_program(_drifting_program(), tracer=tracer)
        kinds = [event.kind for event in sink.events]
        assert kinds[0] == LINT_START
        assert kinds[-1] == LINT_FINISH
        assert kinds.count(LINT_DIAGNOSTIC) == len(report.diagnostics)

    def test_lint_updates_metrics(self):
        metrics = MetricsRegistry()
        report = lint_program(_drifting_program(), metrics=metrics)
        snapshot = metrics.report().as_dict()
        assert snapshot["counters"]["lint.runs"] == 1
        assert snapshot["counters"]["lint.diagnostics"] == len(report.diagnostics)

    def test_lint_report_is_frozen(self):
        report = lint_program(_clean_program())
        assert isinstance(report, LintReport)
        with pytest.raises(AttributeError):
            report.subject = "other"
