"""Tests for the distributed-reset application (Section 5.1's motivation)."""

import random

import pytest

from repro.core import TRUE
from repro.protocols.diffusing import all_green_state, color_var
from repro.protocols.reset import app_var, build_reset_program, reset_target
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import balanced_tree, random_tree
from repro.verification.checker import _check_tolerance as check_tolerance


class TestConstruction:
    def test_app_variables_added(self, chain3):
        program = build_reset_program(chain3, app_values=3)
        for j in chain3.nodes:
            assert app_var(j) in program.variables
            assert color_var(j) in program.variables

    def test_wave_actions_extended_with_resets(self, chain3):
        program = build_reset_program(chain3, app_values=3, reset_value=2)
        initiate = program.action("initiate")
        assert app_var(chain3.root) in initiate.writes
        propagate = program.action("propagate.1")
        assert app_var(1) in propagate.writes

    def test_bad_reset_value_rejected(self, chain3):
        with pytest.raises(ValueError, match="application domain"):
            build_reset_program(chain3, app_values=2, reset_value=5)


class TestExhaustive:
    def test_composition_is_stabilizing(self, chain3):
        program = build_reset_program(chain3, app_values=2)
        target = reset_target(chain3)
        report = check_tolerance(program, target, TRUE, program.state_space())
        assert report.ok
        assert report.stabilizing

    def test_nonzero_reset_value(self, chain3):
        program = build_reset_program(chain3, app_values=2, reset_value=1)
        target = reset_target(chain3, reset_value=1)
        report = check_tolerance(program, target, TRUE, program.state_space())
        assert report.ok


class TestSimulation:
    def test_wave_resets_corrupted_application_state(self):
        tree = balanced_tree(2, 2)
        program = build_reset_program(tree, app_values=8, reset_value=0)
        target = reset_target(tree)
        rng = random.Random(5)
        # Start with legitimate wave state but garbage application values.
        values = dict(all_green_state(tree))
        for j in tree.nodes:
            values[app_var(j)] = rng.randint(1, 7)  # all wrong
        result = run(
            program,
            program.make_state(values),
            RandomScheduler(2),
            max_steps=3000,
            target=target,
            stop_on_target=True,
        )
        assert result.stabilized
        final = result.computation.final_state
        assert all(final[app_var(j)] == 0 for j in tree.nodes)

    def test_full_corruption_recovery_at_scale(self):
        tree = random_tree(20, seed=8)
        program = build_reset_program(tree, app_values=4)
        target = reset_target(tree)
        rng = random.Random(6)
        for trial in range(5):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=50_000,
                target=target,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_reset_value_persists_across_waves(self, chain3):
        program = build_reset_program(chain3, app_values=3)
        target = reset_target(chain3)
        values = dict(all_green_state(chain3))
        for j in chain3.nodes:
            values[app_var(j)] = 0
        result = run(
            program,
            program.make_state(values),
            RandomScheduler(7),
            max_steps=300,
        )
        # The target (closed) holds at every visited state.
        assert all(target(state) for state in result.computation.states())
