"""The compositional certifier (:mod:`repro.compositional`).

Three layers of guarantees:

- **Soundness by agreement** — on every instance small enough for full
  exploration, a certified verdict agrees bit-for-bit with the full
  checker (``ok``, ``classification``, ``stabilizing``);
- **Scale** — a 200-node chain (``4^200`` product states) certifies in
  well under a second while both full engines refuse to even build the
  state space;
- **Refusals, never negatives** — every inapplicable situation yields a
  structured refusal naming the failed obligation, and the service's
  ``auto`` method falls back to full exploration.
"""

import dataclasses

import pytest

import repro
from repro.compositional import (
    DEFAULT_PROJECTION_LIMIT,
    CompositionalCertificate,
    certify_compositional,
)
from repro.core.candidate import CandidateTriple
from repro.core.constraint_graph import GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding, conjunction
from repro.core.design import NonmaskingDesign
from repro.core.domains import IntegerRangeDomain
from repro.core.errors import StateSpaceTooLargeError, ValidationError
from repro.kernel.codec import PackedUnsupported
from repro.core.expr import V, expr_action
from repro.core.predicates import TRUE
from repro.core.program import Program
from repro.core.variables import Variable
from repro.observability import MetricsRegistry, Tracer
from repro.protocols.library import CASES
from repro.verification import VerificationService
from repro.verification.checker import _check_tolerance

DESIGN_CASES = (
    "diffusing-chain",
    "diffusing-star",
    "coloring-chain",
    "leader-election-star",
)


def _two_node_cycle() -> NonmaskingDesign:
    """A well-formed design whose constraint graph is a 2-cycle."""
    bit = IntegerRangeDomain(0, 1)
    a, b = V("a"), V("b")
    constraint_a = Constraint("Ca", a == b)
    constraint_b = Constraint("Cb", b == a)
    constraints = (constraint_a, constraint_b)
    closure = Program("cycle", [Variable("a", bit), Variable("b", bit)], [])
    candidate = CandidateTriple(
        program=closure,
        invariant=conjunction(constraints, name="S"),
        constraints=constraints,
    )
    bindings = [
        ConvergenceBinding(constraint_a, expr_action("conv_a", a != b, {"a": b})),
        ConvergenceBinding(constraint_b, expr_action("conv_b", b != a, {"b": a})),
    ]
    nodes = [GraphNode("A", frozenset({"a"})), GraphNode("B", frozenset({"b"}))]
    return NonmaskingDesign("cycle", candidate, bindings, nodes)


def _oversized_projection() -> NonmaskingDesign:
    """One binding whose own variable defeats the projection limit."""
    big = V("big")
    constraint = Constraint("Cbig", big == 0)
    closure = Program(
        "big", [Variable("big", IntegerRangeDomain(0, DEFAULT_PROJECTION_LIMIT))], []
    )
    candidate = CandidateTriple(
        program=closure,
        invariant=conjunction((constraint,), name="S"),
        constraints=(constraint,),
    )
    bindings = [
        ConvergenceBinding(constraint, expr_action("conv_big", big != 0, {"big": 0}))
    ]
    return NonmaskingDesign(
        "big", candidate, bindings, [GraphNode("BIG", frozenset({"big"}))]
    )


class TestCertification:
    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_small_library_designs_certify(self, name):
        certificate = certify_compositional(CASES[name].build_design(3))
        assert certificate.ok
        assert bool(certificate)
        assert certificate.status == "certified"
        assert certificate.theorem.startswith("Theorem")
        assert certificate.stabilizing  # all library designs have T == true
        assert certificate.obligations
        assert certificate.max_projection <= DEFAULT_PROJECTION_LIMIT
        assert "obligation" in certificate.describe()

    @pytest.mark.parametrize("size", (2, 3, 4))
    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_agrees_with_full_exploration(self, name, size):
        design = CASES[name].build_design(size)
        certificate = certify_compositional(design)
        assert certificate.ok, certificate.refusal
        full = _check_tolerance(
            design.program, design.candidate.invariant, TRUE
        )
        assert certificate.ok == full.ok
        assert certificate.classification == full.classification
        assert certificate.stabilizing == full.stabilizing

    def test_certifies_where_full_exploration_cannot(self):
        design = CASES["diffusing-chain"].build_design(200)
        # The packed engine cannot even encode 4^200 states in its code
        # range; the dict engine (and auto, which falls back to it)
        # refuses before yielding a single state.
        with pytest.raises(PackedUnsupported):
            _check_tolerance(
                design.program, design.candidate.invariant, TRUE,
                engine="packed",
            )
        for engine in ("dict", "auto"):
            with pytest.raises(StateSpaceTooLargeError):
                _check_tolerance(
                    design.program, design.candidate.invariant, TRUE,
                    engine=engine,
                )
        certificate = certify_compositional(design)
        assert certificate.ok
        assert certificate.theorem == "Theorem 1 (out-tree constraint graph)"
        assert certificate.total_states == 4 ** 200
        assert certificate.max_projection <= DEFAULT_PROJECTION_LIMIT
        assert certificate.seconds < 30.0

    def test_rejects_non_design_subject(self):
        with pytest.raises(ValidationError):
            certify_compositional("diffusing-chain")  # type: ignore[arg-type]


class TestRefusals:
    def _refusal(self, certificate: CompositionalCertificate) -> str:
        assert not certificate.ok
        assert certificate.status == "refused"
        assert certificate.refusal
        return certificate.refusal

    def test_fairness(self):
        design = CASES["diffusing-chain"].build_design(3)
        refusal = self._refusal(
            certify_compositional(design, fairness="none")
        )
        assert refusal.startswith("fairness:")

    def test_fault_span(self):
        design = CASES["diffusing-chain"].build_design(3)
        candidate = dataclasses.replace(
            design.candidate, fault_span=design.candidate.invariant
        )
        masked = NonmaskingDesign(
            design.name, candidate, list(design.bindings), list(design.nodes)
        )
        assert self._refusal(
            certify_compositional(masked)
        ).startswith("fault-span:")

    def test_graph_shape(self):
        assert self._refusal(
            certify_compositional(_two_node_cycle())
        ).startswith("graph-shape:")

    def test_projection_size(self):
        assert self._refusal(
            certify_compositional(_oversized_projection())
        ).startswith("projection-size:")

    def test_projection_limit_is_adjustable(self):
        design = _oversized_projection()
        certificate = certify_compositional(
            design, projection_limit=DEFAULT_PROJECTION_LIMIT * 2
        )
        assert certificate.ok


class TestServiceIntegration:
    def test_explicit_compositional_requires_design(self):
        program, invariant = CASES["dijkstra-ring"].build(3)
        with pytest.raises(ValidationError, match="design="):
            VerificationService().verify_tolerance(
                program, invariant, method="compositional"
            )

    def test_supplied_states_refuse_and_are_not_cached(self):
        design = CASES["diffusing-chain"].build_design(3)
        service = VerificationService()
        states = list(design.program.state_space())
        verdict = service.verify_tolerance(
            design.program,
            design.candidate.invariant,
            states=states,
            method="compositional",
            design=design,
        )
        assert not verdict.ok
        assert "supplied-states" in verdict.record["refusal"]
        assert not verdict.cached
        again = service.verify_tolerance(
            design.program,
            design.candidate.invariant,
            states=states,
            method="compositional",
            design=design,
        )
        assert not again.cached  # refusals never enter the cache

    def test_auto_falls_back_to_full_on_refusal(self):
        design = _two_node_cycle()
        service = VerificationService()
        verdict = service.verify_tolerance(
            design.program,
            design.candidate.invariant,
            method="auto",
            design=design,
        )
        assert verdict.record["method"] == "full"
        assert verdict.ok  # the cycle converges; only the theorems refuse

    def test_explicit_refusal_is_a_failed_verdict(self):
        design = _two_node_cycle()
        verdict = VerificationService().verify_tolerance(
            design.program,
            design.candidate.invariant,
            method="compositional",
            design=design,
        )
        assert not verdict.ok
        assert verdict.record["status"] == "refused"
        assert verdict.record["refusal"].startswith("graph-shape:")
        assert "REFUSED" in verdict.describe()


class TestObservability:
    def test_events_and_metrics(self):
        tracer = Tracer.buffered()
        metrics = MetricsRegistry()
        certificate = certify_compositional(
            CASES["diffusing-chain"].build_design(3),
            tracer=tracer,
            metrics=metrics,
        )
        assert certificate.ok
        kinds = [event.kind for event in tracer.events]
        assert kinds[0] == "compositional.start"
        assert kinds[-1] == "compositional.certified"
        report = metrics.report()
        assert report.counters["compositional.certified"] == 1
        assert report.counters["compositional.obligations"] == len(
            certificate.obligations
        )

    def test_refusal_event(self):
        tracer = Tracer.buffered()
        metrics = MetricsRegistry()
        certificate = certify_compositional(
            _two_node_cycle(), tracer=tracer, metrics=metrics
        )
        assert not certificate.ok
        assert [event.kind for event in tracer.events][-1] == (
            "compositional.refused"
        )
        assert metrics.report().counters["compositional.refused"] == 1
