"""Tests for Dijkstra's four-state line (machine-validated reconstruction)."""

import random

import pytest

from repro.core import TRUE
from repro.protocols.four_state_ring import (
    build_four_state_line,
    four_state_invariant,
    privileged_machines,
    up_var,
    x_var,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.verification.checker import _check_tolerance as check_tolerance


class TestExhaustive:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_stabilizing_weak_and_unfair(self, n):
        program = build_four_state_line(n)
        invariant = four_state_invariant(program)
        states = list(program.state_space())
        assert check_tolerance(program, invariant, TRUE, states, fairness="weak").ok
        assert check_tolerance(program, invariant, TRUE, states, fairness="none").ok

    def test_constant_space_per_machine(self):
        # Unlike the K-state ring, the state per machine does not grow
        # with n: 2 bits for interior machines, 1 bit at the ends.
        for n in (3, 5, 7):
            program = build_four_state_line(n)
            assert len(program.variables) == n + (n - 2)

    def test_too_short_line_rejected(self):
        with pytest.raises(ValueError):
            build_four_state_line(2)


class TestPrivileges:
    def test_legitimate_states_have_one_privilege(self):
        program = build_four_state_line(4)
        invariant = four_state_invariant(program)
        for state in program.state_space():
            if invariant(state):
                assert len(privileged_machines(program, state)) == 1

    def test_privilege_shuttles_up_and_down(self):
        n = 4
        program = build_four_state_line(n)
        # A legitimate state: all x equal, all up bits false — the bottom
        # machine is privileged.
        values = {x_var(i): False for i in range(n)}
        values.update({up_var(i): False for i in range(1, n - 1)})
        state = program.make_state(values)
        assert privileged_machines(program, state) == [0]
        result = run(program, state, FirstEnabledScheduler(), max_steps=4 * n)
        holders = [
            privileged_machines(program, visited)[0]
            for visited in result.computation.states()
        ]
        # The privilege visits both ends and every interior machine.
        assert set(holders) == set(range(n))
        # It moves to a neighbor each step (a shuttle, not a jump).
        for before, after in zip(holders, holders[1:]):
            assert abs(after - before) == 1

    def test_every_machine_served_infinitely_often(self):
        n = 5
        program = build_four_state_line(n)
        values = {x_var(i): False for i in range(n)}
        values.update({up_var(i): False for i in range(1, n - 1)})
        result = run(
            program, program.make_state(values), FirstEnabledScheduler(),
            max_steps=10 * n,
        )
        counts = {}
        for visited in result.computation.states():
            holder = privileged_machines(program, visited)[0]
            counts[holder] = counts.get(holder, 0) + 1
        assert all(counts[i] >= 3 for i in range(n))


class TestSimulation:
    def test_stabilizes_from_corruption_at_scale(self):
        program = build_four_state_line(12)
        invariant = four_state_invariant(program)
        rng = random.Random(11)
        for trial in range(6):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=50_000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_mutual_exclusion_after_stabilization(self):
        program = build_four_state_line(6)
        invariant = four_state_invariant(program)
        rng = random.Random(12)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(5),
            max_steps=20_000,
            target=invariant,
            stop_on_target=True,
        )
        assert result.stabilized
        follow = run(
            program,
            result.computation.final_state,
            RandomScheduler(6),
            max_steps=200,
        )
        for visited in follow.computation.states():
            assert len(privileged_machines(program, visited)) == 1
