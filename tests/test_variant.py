"""Unit tests for variant-function checking."""

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
    check_variant_strict,
    check_variant_weak,
)

TARGET = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


def countdown_program() -> Program:
    dec = Action(
        "dec",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )
    return Program("countdown", [Variable("n", IntegerRangeDomain(0, 5))], [dec])


def wobble_program() -> Program:
    """Can step toward 0 or bounce back up — only weakly decreasing."""
    dec = Action(
        "dec",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )
    hold = Action(
        "hold",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"]}),
        reads=("n",),
    )
    return Program("wobble", [Variable("n", IntegerRangeDomain(0, 5))], [dec, hold])


STATES = [State({"n": v}) for v in range(6)]


class TestStrictVariant:
    def test_countdown_passes(self):
        report = check_variant_strict(
            countdown_program(), lambda s: s["n"], TARGET, STATES
        )
        assert report.ok
        assert report.checked == 5  # the non-target states

    def test_non_decreasing_step_fails(self):
        report = check_variant_strict(
            wobble_program(), lambda s: s["n"], TARGET, STATES
        )
        assert not report.ok
        assert any("does not decrease" in p for p in report.problems)

    def test_deadlock_outside_target_fails(self):
        program = Program(
            "stuck", [Variable("n", IntegerRangeDomain(0, 2))], []
        )
        report = check_variant_strict(program, lambda s: s["n"], TARGET, STATES[:3])
        assert not report.ok
        assert any("deadlock" in p for p in report.problems)

    def test_bad_variant_function_detected(self):
        # A constant variant never decreases.
        report = check_variant_strict(countdown_program(), lambda s: 0, TARGET, STATES)
        assert not report.ok


class TestWeakVariant:
    def test_wobble_passes_weak(self):
        report = check_variant_weak(
            wobble_program(), lambda s: s["n"], TARGET, STATES
        )
        assert report.ok

    def test_increasing_step_fails_weak(self):
        inc = Action(
            "inc",
            Predicate(lambda s: 0 < s["n"] < 5, name="0 < n < 5", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
        )
        program = countdown_program().augmented([inc])
        report = check_variant_weak(program, lambda s: s["n"], TARGET, STATES)
        assert not report.ok
        assert any("increases" in p for p in report.problems)

    def test_plateau_without_decrease_fails_weak(self):
        hold_only = Program(
            "hold-only",
            [Variable("n", IntegerRangeDomain(0, 5))],
            [
                Action(
                    "hold",
                    Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
                    Assignment({"n": lambda s: s["n"]}),
                    reads=("n",),
                )
            ],
        )
        report = check_variant_weak(hold_only, lambda s: s["n"], TARGET, STATES)
        assert not report.ok
        assert any("no enabled action decreases" in p for p in report.problems)

    def test_tuple_valued_variant(self):
        report = check_variant_strict(
            countdown_program(), lambda s: (s["n"], 0), TARGET, STATES
        )
        assert report.ok
