"""Unit tests for states and state-space enumeration."""

import random

import pytest

from repro.core import (
    BooleanDomain,
    IntegerDomain,
    IntegerRangeDomain,
    State,
    StateSpaceTooLargeError,
    UnknownVariableError,
    ValidationError,
    Variable,
    count_states,
    enumerate_states,
    random_state,
)


class TestState:
    def test_mapping_access(self):
        state = State({"x": 1, "y": 2})
        assert state["x"] == 1
        assert len(state) == 2
        assert set(state) == {"x", "y"}
        assert "x" in state and "z" not in state

    def test_unknown_variable_raises(self):
        state = State({"x": 1})
        with pytest.raises(UnknownVariableError):
            state["missing"]

    def test_update_returns_new_state(self):
        before = State({"x": 1, "y": 2})
        after = before.update({"x": 9})
        assert after["x"] == 9
        assert before["x"] == 1
        assert after["y"] == 2

    def test_update_unknown_variable_rejected(self):
        state = State({"x": 1})
        with pytest.raises(UnknownVariableError):
            state.update({"y": 0})

    def test_equality_ignores_order(self):
        assert State({"a": 1, "b": 2}) == State({"b": 2, "a": 1})

    def test_equality_with_plain_mapping(self):
        assert State({"a": 1}) == {"a": 1}

    def test_hash_consistent_with_equality(self):
        assert hash(State({"a": 1, "b": 2})) == hash(State({"b": 2, "a": 1}))

    def test_usable_as_dict_key(self):
        visited = {State({"x": 0}): "seen"}
        assert visited[State({"x": 0})] == "seen"

    def test_project(self):
        state = State({"x": 1, "y": 2, "z": 3})
        assert dict(state.project(["x", "z"])) == {"x": 1, "z": 3}

    def test_repr_sorted_and_stable(self):
        assert repr(State({"b": 2, "a": 1})) == "State(a=1, b=2)"


class TestEnumeration:
    def _vars(self):
        return [
            Variable("n", IntegerRangeDomain(0, 2)),
            Variable("b", BooleanDomain()),
        ]

    def test_count(self):
        assert count_states(self._vars()) == 6

    def test_enumerate_covers_all(self):
        states = list(enumerate_states(self._vars()))
        assert len(states) == 6
        assert len(set(states)) == 6
        assert State({"n": 2, "b": True}) in states

    def test_enumeration_deterministic(self):
        first = list(enumerate_states(self._vars()))
        second = list(enumerate_states(self._vars()))
        assert first == second

    def test_infinite_domain_rejected(self):
        with pytest.raises(StateSpaceTooLargeError):
            count_states([Variable("x", IntegerDomain())])

    def test_max_states_guard(self):
        variables = [Variable(f"v{i}", IntegerRangeDomain(0, 9)) for i in range(5)]
        with pytest.raises(StateSpaceTooLargeError):
            list(enumerate_states(variables, max_states=99))

    def test_duplicate_variable_names_rejected(self):
        # Two variables named "n" would silently collapse to one state
        # component (later shadows earlier); that must be a loud error.
        variables = [
            Variable("n", IntegerRangeDomain(0, 2)),
            Variable("b", BooleanDomain()),
            Variable("n", IntegerRangeDomain(0, 5)),
        ]
        with pytest.raises(ValidationError, match="duplicate variable name"):
            list(enumerate_states(variables))
        with pytest.raises(ValidationError, match="'n'"):
            list(enumerate_states(variables))


class TestRandomState:
    def test_values_in_domains(self):
        variables = [
            Variable("n", IntegerRangeDomain(0, 5)),
            Variable("b", BooleanDomain()),
        ]
        rng = random.Random(0)
        for _ in range(25):
            state = random_state(variables, rng)
            assert 0 <= state["n"] <= 5
            assert isinstance(state["b"], bool)

    def test_reproducible_from_seed(self):
        variables = [Variable("n", IntegerRangeDomain(0, 100))]
        a = random_state(variables, random.Random(7))
        b = random_state(variables, random.Random(7))
        assert a == b

    def test_infinite_domain_uses_window(self):
        variables = [Variable("x", IntegerDomain(sample_lo=-3, sample_hi=3))]
        rng = random.Random(0)
        for _ in range(25):
            assert -3 <= random_state(variables, rng)["x"] <= 3

    def test_duplicate_variable_names_rejected(self):
        variables = [
            Variable("x", IntegerRangeDomain(0, 2)),
            Variable("x", BooleanDomain()),
        ]
        with pytest.raises(ValidationError, match="duplicate variable name"):
            random_state(variables, random.Random(0))
