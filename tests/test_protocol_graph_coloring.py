"""Tests for greedy graph coloring: central-daemon convergence vs the
synchronous oscillation."""

import random

import pytest

from repro.core import TRUE
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    color_var,
    conflicted_nodes,
    graph_coloring_invariant,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
)
from repro.verification import check_synchronous_convergence
from repro.verification.checker import _check_tolerance as check_tolerance


class TestCentralDaemon:
    @pytest.mark.parametrize(
        "make_graph",
        [lambda: path_graph(4), lambda: cycle_graph(4), lambda: complete_graph(3)],
        ids=["path4", "cycle4", "K3"],
    )
    def test_stabilizing_even_unfairly(self, make_graph):
        graph = make_graph()
        program = build_graph_coloring_program(graph)
        states = list(program.state_space())
        invariant = graph_coloring_invariant(graph)
        assert check_tolerance(program, invariant, TRUE, states, fairness="weak").ok
        assert check_tolerance(program, invariant, TRUE, states, fairness="none").ok

    def test_silent_when_proper(self):
        graph = cycle_graph(4)
        program = build_graph_coloring_program(graph)
        invariant = graph_coloring_invariant(graph)
        for state in program.state_space():
            if invariant(state):
                assert program.is_terminal(state)

    def test_each_move_reduces_conflicts(self):
        # The variant-function argument, observed on a concrete run.
        graph = complete_graph(4)
        program = build_graph_coloring_program(graph)
        state = program.make_state({color_var(j): 0 for j in graph.nodes})
        result = run(program, state, FirstEnabledScheduler(), max_steps=20)
        counts = [
            len(conflicted_nodes(graph, visited))
            for visited in result.computation.states()
        ]
        assert all(b <= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 0

    def test_converges_at_scale(self):
        graph = random_connected_graph(30, 30, seed=4)
        program = build_graph_coloring_program(graph)
        invariant = graph_coloring_invariant(graph)
        rng = random.Random(1)
        for trial in range(5):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=50_000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_too_few_colors_rejected(self):
        with pytest.raises(ValueError, match="colors"):
            build_graph_coloring_program(complete_graph(4), k=2)


class TestSynchronousOscillation:
    def test_symmetric_pair_oscillates(self):
        graph = path_graph(2)
        program = build_graph_coloring_program(graph)  # k = 2
        invariant = graph_coloring_invariant(graph)
        report = check_synchronous_convergence(
            program, program.state_space(), invariant
        )
        assert not report.ok
        # Both same-color starts oscillate with period 2.
        assert report.oscillating_starts == 2
        assert len(report.worst_cycle) == 2

    def test_fraction_of_oscillating_starts_on_cycle(self):
        graph = cycle_graph(4)
        program = build_graph_coloring_program(graph)
        invariant = graph_coloring_invariant(graph)
        report = check_synchronous_convergence(
            program, program.state_space(), invariant
        )
        assert not report.ok
        assert 0 < report.oscillating_starts < report.checked

    def test_tree_variant_immune(self):
        # The rooted tree coloring never oscillates synchronously: the
        # root is fixed and each level settles after its parent.
        from repro.protocols.coloring import build_coloring_design, coloring_invariant
        from repro.topology import chain_tree

        tree = chain_tree(4)
        design = build_coloring_design(tree, k=2)
        report = check_synchronous_convergence(
            design.program,
            design.program.state_space(),
            coloring_invariant(tree),
        )
        assert report.ok
