"""Tests for the observability subsystem.

Three layers are covered: the primitives (events, sinks, tracer,
counters, timers, reports), the hot-path integrations (engine,
schedulers, verification service, batch pool), and the golden no-op
guarantee — a run with a tracer attached produces bit-identical results
to one without.
"""

import io
import json
import random

import pytest

from repro.faults.injectors import corrupt_everything
from repro.faults.scenarios import ScheduledFaults
from repro.observability import (
    CountingSink,
    JsonlSink,
    LogSink,
    MetricsRegistry,
    RingBufferSink,
    RunReport,
    TraceEvent,
    Tracer,
)
from repro.protocols.library import build_case
from repro.scheduler import (
    FirstEnabledScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SynchronousDaemon,
)
from repro.simulation import run, stabilization_trials
from repro.verification import (
    VerificationService,
    batch_report,
    run_batch,
)
from repro.verification.parallel import VerificationTask


class TestTracer:
    def test_events_get_dense_sequence_numbers(self):
        tracer = Tracer.buffered()
        tracer.emit("a.one", value=1)
        tracer.emit("a.two")
        tracer.emit("b.one", value=3)
        assert [event.seq for event in tracer.events] == [0, 1, 2]
        assert [event.kind for event in tracer.events] == ["a.one", "a.two", "b.one"]

    def test_events_of_filters_by_kind(self):
        tracer = Tracer.buffered()
        tracer.emit("keep.me")
        tracer.emit("drop.me")
        tracer.emit("keep.me")
        assert [e.kind for e in tracer.events_of("keep.me")] == ["keep.me", "keep.me"]

    def test_events_requires_a_ring_buffer(self):
        with pytest.raises(ValueError, match="RingBufferSink"):
            _ = Tracer().events

    def test_reserved_field_names_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="reserved"):
            tracer.emit("x", kind="oops")
        with pytest.raises(ValueError, match="reserved"):
            tracer.emit("x", seq=1, time=2.0)

    def test_fans_out_to_every_sink(self):
        ring, counting = RingBufferSink(), CountingSink()
        tracer = Tracer(sinks=[ring, counting])
        tracer.emit("a")
        tracer.emit("a")
        tracer.emit("b")
        assert len(ring) == 3
        assert counting.counts == {"a": 2, "b": 1}
        assert counting.total() == 3

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(sinks=[JsonlSink(path)]) as tracer:
            tracer.emit("x", n=1)
        record = json.loads(path.read_text().splitlines()[0])
        assert record["seq"] == 0
        assert record["kind"] == "x"
        assert record["n"] == 1


class TestSinks:
    def test_ring_buffer_evicts_oldest(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[sink])
        for index in range(5):
            tracer.emit("tick", index=index)
        assert [event.fields["index"] for event in sink.events] == [3, 4]

    def test_ring_buffer_unbounded(self):
        sink = RingBufferSink(capacity=None)
        tracer = Tracer(sinks=[sink])
        for _ in range(5000):
            tracer.emit("tick")
        assert len(sink) == 5000

    def test_jsonl_lines_are_parseable_and_flat(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        tracer.emit("fault.injected", step=3, fault="corrupt(x)")
        tracer.emit("action.fired", actions=("a", "b"))
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["kind"] == "fault.injected"
        assert records[0]["step"] == 3
        assert records[1]["actions"] == ["a", "b"]
        assert all({"seq", "time", "kind"} <= set(r) for r in records)

    def test_jsonl_borrowed_handle_left_open(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        Tracer(sinks=[sink]).emit("x")
        sink.close()
        assert not handle.closed
        assert json.loads(handle.getvalue())["kind"] == "x"

    def test_log_sink_is_human_readable(self):
        stream = io.StringIO()
        tracer = Tracer(sinks=[LogSink(stream)])
        tracer.emit("target.established", index=7)
        line = stream.getvalue()
        assert "target.established" in line
        assert "index=7" in line

    def test_event_str_and_as_dict(self):
        event = TraceEvent(seq=1, time=2.5, kind="k", fields={"a": 1})
        assert event.as_dict() == {"seq": 1, "time": 2.5, "kind": "k", "a": 1}
        assert "k" in str(event)


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache.hit")
        assert counter.add() == 1
        assert counter.add(4) == 5
        assert registry.counter("cache.hit") is counter
        assert int(counter) == 5

    def test_timer_aggregates(self):
        timer = MetricsRegistry().timer("op")
        timer.record(0.5)
        timer.record(1.5)
        timer.record(1.0)
        assert timer.count == 3
        assert timer.total == pytest.approx(3.0)
        assert timer.mean == pytest.approx(1.0)
        assert timer.min == pytest.approx(0.5)
        assert timer.max == pytest.approx(1.5)
        snapshot = timer.snapshot()
        assert set(snapshot) == {"count", "total", "mean", "min", "max"}

    def test_timer_context_manager(self):
        timer = MetricsRegistry().timer("op")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_empty_timer_snapshot_has_no_infinities(self):
        snapshot = MetricsRegistry().timer("op").snapshot()
        assert snapshot["min"] == 0.0
        assert snapshot["mean"] == 0.0

    def test_report_round_trips_and_renders(self):
        registry = MetricsRegistry()
        registry.counter("tasks").add(3)
        registry.timer("task").record(0.25)
        report = registry.report(workers=2)
        assert report.counters == {"tasks": 3}
        assert report.meta == {"workers": 2}
        payload = report.as_dict()
        assert set(payload) == {"meta", "counters", "timers"}
        assert json.dumps(payload)  # JSON-able
        text = report.describe()
        assert "tasks" in text and "workers=2" in text

    def test_empty_report_renders(self):
        assert "empty" in RunReport().describe()


def _small_instance():
    return build_case("coloring-chain", 3)


def _ring_instance():
    # The token ring never terminates (some action is always enabled),
    # so scheduled faults reliably fire and runs span the full budget.
    return build_case("dijkstra-ring", 3)


class TestEngineTracing:
    def test_results_identical_with_and_without_tracer(self):
        # The golden no-op guarantee: attaching a tracer (and watches)
        # changes nothing about the run itself.
        program, invariant = _ring_instance()
        initial = program.random_state(random.Random(7))
        fault = corrupt_everything(program)
        kwargs = dict(
            max_steps=500,
            target=invariant,
            stop_on_target=False,
            faults=ScheduledFaults({5: fault}),
        )
        plain = run(program, initial, RandomScheduler(3), **kwargs)
        tracer = Tracer.buffered()
        traced = run(
            program,
            initial,
            RandomScheduler(3),
            tracer=tracer,
            watch={"inv": invariant},
            **kwargs,
        )
        assert plain.steps == traced.steps
        assert plain.fault_count == traced.fault_count
        assert plain.terminated == traced.terminated
        assert plain.reached_target == traced.reached_target
        assert plain.target_index == traced.target_index
        assert plain.stabilization_index == traced.stabilization_index
        assert list(plain.computation.states()) == list(traced.computation.states())

    def test_event_taxonomy_of_a_faulty_run(self):
        program, invariant = _ring_instance()
        initial = program.random_state(random.Random(1))
        fault = corrupt_everything(program)
        tracer = Tracer.buffered()
        result = run(
            program,
            initial,
            RandomScheduler(0),
            max_steps=400,
            target=invariant,
            faults=ScheduledFaults({3: fault, 9: fault}),
            tracer=tracer,
        )
        kinds = [event.kind for event in tracer.events]
        assert kinds[0] == "run.start"
        assert kinds[-1] == "run.finish"
        assert kinds.count("fault.injected") == result.fault_count == 2
        assert kinds.count("action.fired") == result.steps
        start = tracer.events[0]
        assert start.fields["program"] == program.name
        assert start.fields["scheduler"] == "random"
        finish = tracer.events[-1]
        assert finish.fields["steps"] == result.steps
        assert finish.fields["stabilization_index"] == result.stabilization_index

    def test_target_flip_events_alternate(self):
        program, invariant = _ring_instance()
        initial = program.random_state(random.Random(1))
        tracer = Tracer.buffered()
        run(
            program,
            initial,
            RandomScheduler(0),
            max_steps=400,
            target=invariant,
            faults=ScheduledFaults({6: corrupt_everything(program)}),
            tracer=tracer,
        )
        flips = tracer.events_of("target.established", "target.violated")
        assert flips, "expected at least one target flip event"
        for first, second in zip(flips, flips[1:]):
            assert first.kind != second.kind  # strict alternation
        indices = [event.fields["index"] for event in flips]
        assert indices == sorted(indices)

    def test_watch_emits_constraint_events(self):
        program, invariant = _small_instance()
        initial = program.random_state(random.Random(5))
        tracer = Tracer.buffered()
        run(
            program,
            initial,
            RandomScheduler(0),
            max_steps=400,
            target=invariant,
            stop_on_target=True,
            tracer=tracer,
            watch={"invariant": invariant},
        )
        constraint_events = tracer.events_of(
            "constraint.established", "constraint.violated"
        )
        assert constraint_events
        assert all(
            event.fields["constraint"] == "invariant"
            for event in constraint_events
        )
        # The invariant held at the end (stop_on_target reached it).
        assert constraint_events[-1].kind == "constraint.established"

    def test_stabilization_trials_passthrough(self):
        program, invariant = _small_instance()
        tracer = Tracer.buffered()
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=3,
            max_steps=400,
            base_seed=0,
            tracer=tracer,
        )
        assert stats.stabilized_count == 3
        kinds = [event.kind for event in tracer.events]
        assert kinds.count("run.start") == 3
        assert kinds.count("run.finish") == 3


class TestSchedulerTracing:
    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda: FirstEnabledScheduler(),
            lambda: RandomScheduler(0),
            lambda: RoundRobinScheduler(),
            lambda: SynchronousDaemon(),
        ],
        ids=["first-enabled", "random", "round-robin", "synchronous"],
    )
    def test_scheduler_step_events(self, make_scheduler):
        program, invariant = _small_instance()
        initial = program.random_state(random.Random(2))
        tracer = Tracer.buffered()
        scheduler = make_scheduler().attach_tracer(tracer)
        result = run(
            program,
            initial,
            scheduler,
            max_steps=50,
            target=invariant,
            stop_on_target=True,
        )
        steps = tracer.events_of("scheduler.step")
        assert len(steps) == result.steps
        for event in steps:
            assert event.fields["scheduler"] == scheduler.name
            assert event.fields["enabled"] >= len(event.fields["actions"]) >= 1

    def test_attach_tracer_returns_self_and_detaches(self):
        scheduler = FirstEnabledScheduler()
        tracer = Tracer.buffered()
        assert scheduler.attach_tracer(tracer) is scheduler
        assert scheduler.tracer is tracer
        scheduler.attach_tracer(None)
        assert scheduler.tracer is None


class TestServiceObservability:
    def test_cache_events_and_layered_counters(self, tmp_path):
        program, invariant = _small_instance()
        tracer = Tracer.buffered()
        service = VerificationService(
            cache_dir=tmp_path, tracer=tracer, metrics=MetricsRegistry()
        )
        service.verify_tolerance(program, invariant, case="first")
        service.verify_tolerance(program, invariant, case="second")
        kinds = [event.kind for event in tracer.events]
        # The miss computes on the packed engine, so the one-time kernel
        # compilation and memory-accounting events land between miss and
        # hit.
        assert kinds == [
            "cache.miss", "kernel.build", "kernel.mem.sweep", "cache.hit"
        ]
        assert tracer.events[-1].fields["layer"] == "memory"

        # A fresh service sharing the disk cache hits the disk layer.
        other = VerificationService(cache_dir=tmp_path, tracer=tracer)
        other.verify_tolerance(program, invariant, case="third")
        assert tracer.events[-1].kind == "cache.hit"
        assert tracer.events[-1].fields["layer"] == "disk"
        assert other.stats()["hits_disk"] == 1

        stats = service.stats()
        assert stats["hits"] == stats["hits_memory"] + stats["hits_disk"] == 1
        assert stats["misses"] == 1
        assert stats["seconds_computing"] > 0.0

    def test_service_report_schema(self):
        program, invariant = _small_instance()
        service = VerificationService(metrics=MetricsRegistry())
        service.verify_tolerance(program, invariant)
        service.verify_tolerance(program, invariant)
        report = service.report(case="x")
        assert report.counters["cache.hit"] == 1
        assert report.counters["cache.miss"] == 1
        assert "verify_tolerance.computed" in report.timers
        assert "verify_tolerance.cached" in report.timers
        assert report.meta["case"] == "x"
        assert json.dumps(report.as_dict())

    def test_validate_design_feeds_timers(self):
        from repro.protocols.diffusing import build_diffusing_design
        from repro.topology import chain_tree

        design = build_diffusing_design(chain_tree(3))
        service = VerificationService(metrics=MetricsRegistry())
        service.validate_design(design, design.program.state_space())
        service.validate_design(design, design.program.state_space())
        assert service.metrics.timers["validate_design.computed"].count == 1
        assert service.metrics.timers["validate_design.cached"].count == 1

    def test_untraced_service_unchanged(self):
        program, invariant = _small_instance()
        service = VerificationService()
        assert service.tracer is None and service.metrics is None
        verdict = service.verify_tolerance(program, invariant)
        assert verdict.ok
        assert service.stats()["misses"] == 1


class TestBatchObservability:
    def _tasks(self):
        return [
            VerificationTask(
                case=name,
                builder="repro.protocols.library:build_case",
                args=(name, 3),
            )
            for name in ("coloring-chain", "leader-election-star")
        ]

    def test_sequential_batch_emits_task_events(self):
        tracer = Tracer.buffered()
        records = run_batch(self._tasks(), workers=1, tracer=tracer)
        kinds = [event.kind for event in tracer.events]
        assert kinds[0] == "batch.start"
        assert kinds[-1] == "batch.finish"
        assert kinds.count("worker.task.start") == 2
        assert kinds.count("worker.task.finish") == 2
        assert tracer.events[0].fields["tasks"] == 2
        for record in records:
            assert record["worker"]
            assert record["task_seconds"] >= record["call_seconds"] >= 0.0

    def test_batch_report_sums_per_worker_timings(self):
        records = run_batch(self._tasks(), workers=1)
        report = batch_report(records, wall_clock_seconds=1.0, workers=1)
        assert report.counters["tasks"] == 2
        assert report.counters["ok"] == 2
        assert report.counters["cache.miss"] == 2
        worker_total = sum(
            stats["total"]
            for name, stats in report.timers.items()
            if name.startswith("worker.")
        )
        assert worker_total == pytest.approx(report.timers["task"]["total"])
        assert report.meta == {"workers": 1, "wall_clock_seconds": 1.0}

    def test_parallel_batch_replays_finish_events(self):
        tracer = Tracer.buffered()
        records = run_batch(self._tasks(), workers=2, tracer=tracer)
        assert len(records) == 2
        kinds = [event.kind for event in tracer.events]
        assert kinds[0] == "batch.start"
        assert kinds[-1] == "batch.finish"
        # Pool workers cannot share the parent tracer: only the replayed
        # finish events appear, one per task, in task order.
        finishes = tracer.events_of("worker.task.finish")
        assert [e.fields["case"] for e in finishes] == [t.case for t in self._tasks()]
