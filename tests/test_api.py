"""The :func:`repro.verify` facade and the deprecation shims.

Two guarantees are pinned here:

- **Parity** — for every library case x engine x method combination the
  facade's verdict agrees bit-for-bit (``ok``, ``classification``,
  ``stabilizing``) with the legacy direct checker;
- **Deprecation mechanics** — each legacy entry point still works, still
  returns the legacy type, and warns exactly once per call.

CI runs this file under ``-W error::DeprecationWarning``: everything
except the explicitly guarded shim calls must be warning-free.
"""

import warnings

import pytest

import repro
from repro.api import Verdict, default_service
from repro.core.errors import ValidationError
from repro.core.predicates import TRUE
from repro.protocols.library import CASES, build_case
from repro.verification import (
    METHODS,
    ServiceVerdict,
    ToleranceReport,
    VerificationService,
    check_tolerance,
    validate_engine,
    validate_method,
)
from repro.verification.checker import _check_tolerance

#: Every library case small enough to explore exhaustively in a test,
#: including all four design-capable ones and one bare program/invariant
#: case (dijkstra-ring, which has no compositional path).
PARITY_CASES = (
    "diffusing-chain",
    "diffusing-star",
    "coloring-chain",
    "leader-election-star",
    "dijkstra-ring",
)
SIZE = 3


class TestFacadeParity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("engine", ("auto", "dict", "packed"))
    @pytest.mark.parametrize("name", PARITY_CASES)
    def test_matches_legacy_checker(self, name, engine, method):
        if method == "compositional" and CASES[name].build_design is None:
            with pytest.raises(ValidationError):
                repro.verify(name, size=SIZE, engine=engine, method=method,
                             service=VerificationService())
            return
        verdict = repro.verify(
            name,
            size=SIZE,
            engine=engine,
            method=method,
            service=VerificationService(),
        )
        program, invariant = build_case(name, SIZE)
        legacy = _check_tolerance(program, invariant, TRUE, engine=engine)
        assert verdict.record["ok"] == legacy.ok
        assert verdict.record["classification"] == legacy.classification
        assert verdict.record["stabilizing"] == legacy.stabilizing
        assert verdict.ok is legacy.ok

    def test_design_subject_matches_case_subject(self):
        design = CASES["diffusing-chain"].build_design(SIZE)
        by_design = repro.verify(design, service=VerificationService())
        by_name = repro.verify("diffusing-chain", size=SIZE,
                               service=VerificationService())
        for field in ("ok", "classification", "stabilizing", "method"):
            assert by_design.record[field] == by_name.record[field]

    def test_program_subject_requires_invariant(self):
        program, invariant = build_case("coloring-chain", SIZE)
        with pytest.raises(ValidationError, match="pass s="):
            repro.verify(program)
        verdict = repro.verify(program, s=invariant,
                               service=VerificationService())
        assert verdict.ok
        assert verdict.record["method"] == "full"  # no design to decompose

    def test_size_rejected_for_built_subjects(self):
        program, invariant = build_case("coloring-chain", SIZE)
        with pytest.raises(ValidationError, match="size="):
            repro.verify(program, s=invariant, size=4)

    def test_unknown_case_name(self):
        with pytest.raises(ValidationError, match="unknown verification case"):
            repro.verify("quantum-ring")

    def test_unknown_subject_type(self):
        with pytest.raises(ValidationError, match="cannot verify"):
            repro.verify(42)  # type: ignore[arg-type]

    def test_default_service_is_shared_and_overridable(self):
        assert default_service() is default_service()
        own = VerificationService()
        verdict = repro.verify("coloring-chain", size=SIZE, service=own)
        assert isinstance(verdict, ServiceVerdict)
        assert own.misses == 1


class TestMethodAwareCaching:
    def test_no_stale_cross_method_hits(self):
        service = VerificationService()
        full = repro.verify("diffusing-chain", size=SIZE, method="full",
                            service=service)
        assert not full.cached
        compositional = repro.verify("diffusing-chain", size=SIZE,
                                     method="compositional", service=service)
        assert not compositional.cached  # distinct key despite same instance
        assert compositional.record["method"] == "compositional"
        again = repro.verify("diffusing-chain", size=SIZE, method="full",
                             service=service)
        assert again.cached
        assert again.record["method"] == "full"

    def test_auto_reuses_the_compositional_entry(self):
        service = VerificationService()
        first = repro.verify("diffusing-chain", size=SIZE, service=service)
        assert first.record["method"] == "compositional"
        second = repro.verify("diffusing-chain", size=SIZE, service=service)
        assert second.cached
        assert second.record["method"] == "compositional"


class TestVerdictProtocol:
    def test_runtime_checkable_across_verdict_types(self):
        program, invariant = build_case("coloring-chain", SIZE)
        report = _check_tolerance(program, invariant, TRUE)
        assert isinstance(report, Verdict)

        from repro.compositional import certify_compositional

        certificate = certify_compositional(
            CASES["diffusing-chain"].build_design(SIZE)
        )
        assert isinstance(certificate, Verdict)

        design = CASES["diffusing-chain"].build_design(SIZE)
        theorem = design.validate(list(design.program.state_space())).selected
        assert isinstance(theorem, Verdict)

        from repro.staticcheck import lint_case

        assert isinstance(lint_case("coloring-chain"), Verdict)

        verdict = repro.verify("coloring-chain", size=SIZE,
                               service=VerificationService())
        assert isinstance(verdict, Verdict)

    def test_validators_are_exported(self):
        validate_engine("auto")
        validate_method("auto")
        with pytest.raises(ValidationError):
            validate_engine("warp")
        with pytest.raises(ValidationError):
            validate_method("warp")


class TestDeprecationShims:
    def test_check_tolerance_warns_once_and_returns_legacy_type(self):
        program, invariant = build_case("coloring-chain", SIZE)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = check_tolerance(program, invariant, TRUE)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.verify" in str(deprecations[0].message)
        assert isinstance(report, ToleranceReport)
        assert report.ok == _check_tolerance(program, invariant, TRUE).ok

    @pytest.mark.parametrize(
        "name",
        ("RecurrentClass", "ServiceReport", "check_service",
         "recurrent_classes"),
    )
    def test_service_module_liveness_names_warn_and_delegate(self, name):
        import repro.verification.liveness as liveness
        import repro.verification.service as service_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            moved = getattr(service_module, name)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.verification.liveness" in str(deprecations[0].message)
        assert moved is getattr(liveness, name)

    def test_validate_engine_alias_is_the_public_function(self):
        from repro.verification.explorer import _validate_engine

        assert _validate_engine is validate_engine

    def test_expected_convergence_steps_warns_once_and_delegates(self):
        from repro.analysis.markov import expected_convergence_steps
        from repro.quantitative import hitting_times

        program, invariant = build_case("coloring-chain", SIZE)
        states = list(program.state_space())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = expected_convergence_steps(program, states, invariant)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "hitting_times" in str(deprecations[0].message)
        assert result.expectations == hitting_times(
            program, states, invariant
        ).expectations

    def test_facade_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            verdict = repro.verify("diffusing-chain", size=SIZE,
                                   service=VerificationService())
            quantified = repro.verify("coloring-chain", size=SIZE,
                                      quantify=True,
                                      service=VerificationService())
        assert verdict.ok
        assert quantified.ok and quantified.quantitative.ok
