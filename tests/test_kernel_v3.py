"""Kernel v3 tests: narrow dtypes, zero-copy transfer, streaming verdicts.

Four layers:

- codec width selection pinned exactly on the int16/int32 boundaries,
  plus the packed-code transport round-trip at each width;
- unit tests for the streaming peel primitives
  (:func:`~repro.kernel.sweeps.peel_shard_edges`,
  :func:`~repro.kernel.sweeps.edge_list_acyclic`) and the shared-memory
  fragment transport (:mod:`repro.kernel.shm`);
- differentials pinning narrow-dtype CSR output bit-identical (after
  widening) to the ``FORCE_CODE_DTYPE='int64'`` baseline, the streaming
  count-only path bit-identical to the materialized sweep (including
  the witness-forced fallbacks), and shm/pickle/inline transfer parity;
- plumbing: ``memory_budget`` through service, batch tasks and the CLI,
  and the ``kernel.mem.*`` counters on every sweep path.
"""

import multiprocessing
import os

import pytest

from repro.core import (
    Action,
    Assignment,
    FALSE,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.core.predicates import TRUE
from repro.kernel import sweeps
from repro.kernel.codec import StateCodec
from repro.kernel.engine import compile_program
from repro.kernel.verify import check_tolerance_packed
from repro.protocols.library import build_case, case_names

needs_numpy = pytest.mark.skipif(
    not sweeps.HAVE_NUMPY, reason="numpy is not installed"
)

if sweeps.HAVE_NUMPY:
    import numpy as np

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="sharded pools need fork inheritance",
)


def _codec_of_size(*radices: int) -> StateCodec:
    names = tuple(f"v{i}" for i in range(len(radices)))
    return StateCodec(names, tuple(tuple(range(r)) for r in radices))


# ----------------------------------------------------------------------
# Codec width edges
# ----------------------------------------------------------------------


class TestCodecWidth:
    def test_exactly_int16_boundary(self):
        codec = _codec_of_size(1 << 8, 1 << 7)  # product = 2**15
        assert codec.size == 1 << 15
        assert codec.code_typecode == "h"
        assert codec.code_dtype == "int16"
        assert codec.code_bytes == 2

    def test_one_above_int16_boundary(self):
        codec = _codec_of_size(3, 10923)  # product = 2**15 + 1
        assert codec.size == (1 << 15) + 1
        assert codec.code_typecode == "i"
        assert codec.code_dtype == "int32"
        assert codec.code_bytes == 4

    def test_exactly_int32_boundary(self):
        codec = _codec_of_size(1 << 16, 1 << 15)  # product = 2**31
        assert codec.size == 1 << 31
        assert codec.code_typecode == "i"
        assert codec.code_dtype == "int32"
        assert codec.code_bytes == 4

    def test_above_int32_boundary(self):
        codec = _codec_of_size(1 << 16, (1 << 15) + 1)
        assert codec.size > 1 << 31
        assert codec.code_typecode == "q"
        assert codec.code_dtype == "int64"
        assert codec.code_bytes == 8

    def test_tiny_space_is_int16(self):
        codec = _codec_of_size(2, 3)
        assert codec.code_typecode == "h"

    @pytest.mark.parametrize(
        "radices", [(2, 3), (3, 10923), ((1 << 16), (1 << 15))]
    )
    def test_pack_codes_round_trip_at_each_width(self, radices):
        codec = _codec_of_size(*radices)
        codes = [0, 1, codec.size // 2, codec.size - 1]
        buffer = codec.pack_codes(codes)
        assert len(buffer) == codec.code_bytes * len(codes)
        assert list(codec.unpack_codes(buffer)) == codes

    def test_batch_pack_states_uses_narrow_codes(self):
        from repro.verification.parallel import pack_states

        program, _ = build_case("coloring-chain", 6)
        states = list(program.state_space())[:5]
        codec = StateCodec.for_program(program)
        assert codec.code_typecode == "h"
        assert len(pack_states(program, states)) == 2 * len(states)


# ----------------------------------------------------------------------
# Streaming peel primitives
# ----------------------------------------------------------------------


@needs_numpy
class TestPeelShardEdges:
    def _peel(self, lo, hi, bad, edges):
        sources = np.asarray([s for s, _ in edges], dtype=np.int64)
        sinks = np.asarray([t for _, t in edges], dtype=np.int64)
        return sweeps.peel_shard_edges(
            lo, hi, np.asarray(bad, dtype=bool), sources, sinks
        )

    def test_no_edges_resolves_every_bad_state(self):
        resolved, sources, sinks = self._peel(0, 3, [True, False, True], [])
        assert resolved.tolist() == [True, False, True]
        assert sources.size == 0 and sinks.size == 0

    def test_in_shard_chain_drains(self):
        # 0 -> 1 -> 2, all bad, all in shard: everything peels locally.
        resolved, sources, sinks = self._peel(
            0, 3, [True, True, True], [(0, 1), (1, 2)]
        )
        assert resolved.all()
        assert sources.size == 0

    def test_in_shard_cycle_survives(self):
        resolved, sources, sinks = self._peel(
            0, 2, [True, True], [(0, 1), (1, 0)]
        )
        assert not resolved.any()
        assert sorted(zip(sources.tolist(), sinks.tolist())) == [(0, 1), (1, 0)]

    def test_out_of_shard_sink_is_kept_alive(self):
        # Shard covers 0..1; 1 -> 5 crosses the boundary, so 1 cannot
        # peel locally and 0 (-> 1) cannot either.
        resolved, sources, sinks = self._peel(
            0, 2, [True, True], [(0, 1), (1, 5)]
        )
        assert not resolved.any()
        assert len(sources) == 2

    def test_drained_suffix_filters_kept_edges(self):
        # 2 peels (no out-edges), then 1, then 0: the kept list is empty
        # even though 0's edge initially pointed at a live sink.
        resolved, sources, sinks = self._peel(
            0, 3, [True, True, True], [(0, 1), (1, 2)]
        )
        assert resolved.all() and sources.size == 0

    def test_nonzero_lo_offsets_codes(self):
        resolved, sources, sinks = self._peel(
            10, 13, [True, True, True], [(10, 11), (11, 12)]
        )
        assert resolved.all()


@needs_numpy
class TestEdgeListAcyclic:
    def _acyclic(self, n, bad, edges):
        sources = np.asarray([s for s, _ in edges], dtype=np.int64)
        sinks = np.asarray([t for _, t in edges], dtype=np.int64)
        return sweeps.edge_list_acyclic(
            sources, sinks, np.asarray(bad, dtype=bool)
        )

    def test_no_edges(self):
        assert self._acyclic(3, [True, True, False], [])

    def test_chain_is_acyclic(self):
        assert self._acyclic(3, [True, True, True], [(0, 1), (1, 2)])

    def test_cycle_is_detected(self):
        assert not self._acyclic(2, [True, True], [(0, 1), (1, 0)])

    def test_self_loop_is_a_cycle(self):
        assert not self._acyclic(2, [False, True], [(1, 1)])

    def test_tail_into_cycle_stays_cyclic(self):
        assert not self._acyclic(
            3, [True, True, True], [(0, 1), (1, 2), (2, 1)]
        )

    def test_parallel_edges_are_counted(self):
        # Two actions produce the same 0 -> 1 edge; both must drain.
        assert self._acyclic(2, [True, True], [(0, 1), (0, 1)])


# ----------------------------------------------------------------------
# Shared-memory fragment transport
# ----------------------------------------------------------------------


@needs_numpy
class TestShmTransport:
    def _fragment(self, with_t=True):
        return sweeps.Fragment(
            4,
            7,
            np.array([True, False, True]),
            np.array([True, True, False]) if with_t else None,
            np.array([0, 1, 1, 3], dtype=np.int32),
            np.array([5, 4, 6], dtype=np.int16),
            np.array([0, 1, 0], dtype=np.int16),
        )

    def test_export_import_round_trip(self):
        from repro.kernel import shm

        if not shm.shm_available():
            pytest.skip("shared memory unavailable")
        name = shm.segment_name(shm.new_token(), 0)
        original = self._fragment()
        handle = shm.export_fragment(original, name)
        fragment, segment = shm.import_fragment(handle)
        try:
            assert fragment.lo == 4 and fragment.hi == 7
            for field in ("s_mask", "t_mask", "offsets", "targets", "action_ids"):
                got, want = getattr(fragment, field), getattr(original, field)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want)
        finally:
            del fragment
            assert shm.release_segments([segment]) == 1

    def test_absent_t_mask_round_trips_as_none(self):
        from repro.kernel import shm

        if not shm.shm_available():
            pytest.skip("shared memory unavailable")
        handle = shm.export_fragment(
            self._fragment(with_t=False),
            shm.segment_name(shm.new_token(), 0),
        )
        fragment, segment = shm.import_fragment(handle)
        try:
            assert fragment.t_mask is None
        finally:
            del fragment
            shm.release_segments([segment])

    def test_stale_segment_is_reclaimed(self):
        from repro.kernel import shm

        if not shm.shm_available():
            pytest.skip("shared memory unavailable")
        from multiprocessing import shared_memory

        name = shm.segment_name(shm.new_token(), 0)
        stale = shared_memory.SharedMemory(create=True, size=8, name=name)
        stale.close()  # deliberately NOT unlinked: a crashed worker's leavings
        handle = shm.export_fragment(self._fragment(), name)
        fragment, segment = shm.import_fragment(handle)
        del fragment
        shm.release_segments([segment])
        assert shm.unlink_segments(handle.name[3:-2], 1) == 0  # already gone

    def test_disable_env_forces_unavailable(self, monkeypatch):
        from repro.kernel import shm

        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        assert not shm.shm_available()
        monkeypatch.delenv(shm.DISABLE_ENV)

    def test_unlink_segments_tolerates_absent(self):
        from repro.kernel import shm

        assert shm.unlink_segments(shm.new_token(), 4) == 0


def _no_dev_shm_leftovers():
    if not os.path.isdir("/dev/shm"):
        return True
    return not [f for f in os.listdir("/dev/shm") if f.startswith("rk3")]


@needs_numpy
@needs_fork
class TestTransferParity:
    """shm, pickle, and inline transfers produce bit-identical merges."""

    def _merged(self, workers, monkeypatch=None, disable_shm=False):
        from repro.kernel import shard as sharding

        program, invariant = build_case("coloring-chain", 6)
        kernel = compile_program(program)
        plan = sweeps.SweepPlan(kernel, invariant, None)
        ranges = sharding.plan_shards(kernel.codec.size, 3)
        if disable_shm:
            monkeypatch.setenv("REPRO_KERNEL_NO_SHM", "1")
        try:
            return sharding.sweep_merged(plan, ranges, workers=workers)
        finally:
            if disable_shm:
                monkeypatch.delenv("REPRO_KERNEL_NO_SHM")

    def test_shm_pickle_inline_bit_identical(self, monkeypatch):
        from repro.kernel import shm

        merged_inline, transfer_inline = self._merged(workers=1)
        assert transfer_inline == "inline"
        merged_pickle, transfer_pickle = self._merged(
            workers=2, monkeypatch=monkeypatch, disable_shm=True
        )
        assert transfer_pickle == "pickle"
        results = [merged_inline, merged_pickle]
        if shm.shm_available():
            merged_shm, transfer_shm = self._merged(workers=2)
            assert transfer_shm == "shm"
            results.append(merged_shm)
            assert _no_dev_shm_leftovers()
        for other in results[1:]:
            for a, b in zip(results[0], other):
                if a is None:
                    assert b is None
                else:
                    assert a.dtype == b.dtype
                    assert np.array_equal(a, b)

    def test_shm_counters(self):
        from repro.kernel import shm
        from repro.kernel import shard as sharding
        from repro.observability.metrics import MetricsRegistry

        if not shm.shm_available():
            pytest.skip("shared memory unavailable")
        program, invariant = build_case("coloring-chain", 6)
        kernel = compile_program(program)
        plan = sweeps.SweepPlan(kernel, invariant, None)
        ranges = sharding.plan_shards(kernel.codec.size, 3)
        metrics = MetricsRegistry()
        _, transfer = sharding.sweep_merged(
            plan, ranges, workers=2, metrics=metrics
        )
        assert transfer == "shm"
        report = metrics.report()
        assert report.counters["kernel.mem.shm_segments"] == 3
        assert report.counters["kernel.mem.shm_unlinked"] == 3
        assert _no_dev_shm_leftovers()


# ----------------------------------------------------------------------
# Narrow-dtype differential vs the int64 baseline
# ----------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("name", case_names())
def test_narrow_csr_bit_identical_to_int64_baseline(name, monkeypatch):
    from repro.kernel import shard as sharding

    program, invariant = build_case(name)
    kernel = compile_program(program)

    def _merge(force):
        monkeypatch.setattr(sweeps, "FORCE_CODE_DTYPE", force)
        plan = sweeps.SweepPlan(kernel, invariant, None)
        ranges = sharding.plan_shards(kernel.codec.size, 2)
        merged, _ = sharding.sweep_merged(plan, ranges, workers=1)
        return merged

    try:
        narrow = _merge(None)
    except sweeps.SweepUnsupported:
        pytest.skip(f"{name} stays on the scalar sweep")
    wide = _merge("int64")
    monkeypatch.setattr(sweeps, "FORCE_CODE_DTYPE", None)
    assert narrow[3].dtype == np.dtype(kernel.codec.code_dtype)
    assert wide[3].dtype == np.int64
    for a, b in zip(narrow, wide):
        if a is None:
            assert b is None
        else:
            # Bit-identical after widening: same values, same order.
            assert np.array_equal(a.astype(np.int64), b.astype(np.int64))


@needs_numpy
@pytest.mark.parametrize("name", case_names())
def test_narrow_report_matches_int64_report(name, monkeypatch):
    program, invariant = build_case(name)
    monkeypatch.setattr(sweeps, "VECTOR_MIN_STATES", 0)
    narrow = check_tolerance_packed(program, invariant, TRUE, shards=2)
    monkeypatch.setattr(sweeps, "FORCE_CODE_DTYPE", "int64")
    wide = check_tolerance_packed(program, invariant, TRUE, shards=2)
    monkeypatch.setattr(sweeps, "FORCE_CODE_DTYPE", None)
    assert narrow == wide


# ----------------------------------------------------------------------
# Streaming count-only verdicts vs the materialized sweep
# ----------------------------------------------------------------------


def _counter(hi=3) -> Program:
    inc = Action(
        "inc",
        Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
        process="p",
    )
    reset = Action(
        "reset",
        Predicate(lambda s: s["n"] == hi, name=f"n = {hi}", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
        process="p",
    )
    return Program(
        "counter",
        [Variable("n", IntegerRangeDomain(0, hi), process="p")],
        [inc, reset],
    )


@needs_numpy
class TestStreamingVerdicts:
    """memory_budget=1 forces streaming; every report stays identical."""

    @pytest.fixture(autouse=True)
    def _vectorize(self, monkeypatch):
        monkeypatch.setattr(sweeps, "VECTOR_MIN_STATES", 0)
        self.monkeypatch = monkeypatch

    def _both(self, program, invariant, fault_span, *, fairness="weak",
              shards=3):
        materialized = check_tolerance_packed(
            program, invariant, fault_span, fairness=fairness, shards=shards
        )
        streamed = check_tolerance_packed(
            program,
            invariant,
            fault_span,
            fairness=fairness,
            shards=shards,
            memory_budget=1,
        )
        assert streamed == materialized
        return streamed

    @pytest.mark.parametrize("name", case_names())
    @pytest.mark.parametrize("fairness", ["weak", "none"])
    def test_library_streaming_matches_materialized(self, name, fairness):
        program, invariant = build_case(name)
        report = self._both(program, invariant, TRUE, fairness=fairness)
        assert report.ok

    def test_streaming_counters_fire_on_count_only_verdict(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.tracer import Tracer

        program, invariant = build_case("coloring-chain")
        metrics = MetricsRegistry()
        tracer = Tracer.buffered()
        check_tolerance_packed(
            program, invariant, TRUE, shards=3, memory_budget=1,
            metrics=metrics, tracer=tracer,
        )
        report = metrics.report()
        assert report.counters["kernel.mem.streaming"] == 1
        assert report.counters["kernel.mem.peak_bytes"] > 0
        assert report.counters["kernel.sweep.vectorized"] == 3
        assert report.counters["kernel.shard.merged"] == 3
        mem = [e for e in tracer.events if e.kind == "kernel.mem.sweep"]
        assert len(mem) == 1 and mem[0].fields["path"] == "streaming"

    def test_deadlock_counterexample_is_identical(self):
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "dec-only",
            [Variable("n", IntegerRangeDomain(0, 2), process="p")],
            [dec],
        )
        invariant = Predicate(
            lambda s: s["n"] == 2, name="n = 2", support=("n",)
        )
        report = self._both(program, invariant, TRUE)
        assert report.convergence.counterexample.kind == "deadlock"
        assert report.convergence.counterexample.states == (State({"n": 0}),)

    def test_cycle_falls_back_to_materialized_counterexample(self):
        # FALSE invariant: the whole span is bad and cyclic, so streaming
        # must abandon and the fallback's SCC counterexample survives.
        program = _counter()
        for fairness in ("weak", "none"):
            report = self._both(program, FALSE, TRUE, fairness=fairness)
            assert report.convergence.counterexample.kind == "cycle"

    def test_closure_violation_falls_back_with_witnesses(self):
        program = _counter()
        invariant = Predicate(
            lambda s: s["n"] == 0, name="n = 0", support=("n",)
        )
        report = self._both(program, invariant, TRUE)
        assert not report.s_closure.ok
        witness = report.s_closure.witnesses[0]
        assert witness.before == State({"n": 0})
        assert witness.after == State({"n": 1})

    def test_unclosed_span_falls_back(self):
        program = _counter()
        invariant = Predicate(
            lambda s: s["n"] == 0, name="n = 0", support=("n",)
        )
        span = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert not report.t_closure.ok

    def test_implication_failure_streams(self):
        # S not=> T but both closures hold and no witness is decoded: the
        # streaming path completes with the failing verdict.
        program = _counter()
        invariant = Predicate(
            lambda s: s["n"] <= 2, name="n <= 2", support=("n",)
        )
        span = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert not report.implication_ok

    def test_nontrivial_closed_span_streams(self):
        hi = 3
        inc = Action(
            "inc",
            Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "climber",
            [Variable("n", IntegerRangeDomain(0, hi), process="p")],
            [inc],
        )
        invariant = Predicate(
            lambda s: s["n"] == hi, name="n = hi", support=("n",)
        )
        span = Predicate(lambda s: s["n"] >= 1, name="n >= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert report.ok and not report.stabilizing

    def test_generous_budget_never_streams(self):
        from repro.observability.metrics import MetricsRegistry

        program, invariant = build_case("coloring-chain")
        metrics = MetricsRegistry()
        check_tolerance_packed(
            program, invariant, TRUE, shards=2,
            memory_budget=1 << 40, metrics=metrics,
        )
        assert "kernel.mem.streaming" not in metrics.report().counters


# ----------------------------------------------------------------------
# memory_budget plumbing and kernel.mem.* accounting
# ----------------------------------------------------------------------


class TestMemoryAccounting:
    def test_scalar_path_emits_peak_bytes(self):
        from repro.observability.metrics import MetricsRegistry

        program, invariant = build_case("coloring-chain", 5)
        metrics = MetricsRegistry()
        check_tolerance_packed(program, invariant, TRUE, metrics=metrics)
        report = metrics.report()
        assert report.counters["kernel.mem.peak_bytes"] > 0
        assert report.counters["kernel.mem.code_bytes"] > 0

    @needs_numpy
    def test_vectorized_path_emits_peak_bytes_and_transfer(self, monkeypatch):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.tracer import Tracer

        monkeypatch.setattr(sweeps, "VECTOR_MIN_STATES", 0)
        program, invariant = build_case("coloring-chain")
        metrics = MetricsRegistry()
        tracer = Tracer.buffered()
        check_tolerance_packed(
            program, invariant, TRUE, shards=2, metrics=metrics, tracer=tracer
        )
        assert metrics.report().counters["kernel.mem.peak_bytes"] > 0
        mem = [e for e in tracer.events if e.kind == "kernel.mem.sweep"]
        assert len(mem) == 1
        assert mem[0].fields["path"] == "vectorized"
        assert mem[0].fields["transfer"] in ("shm", "pickle", "inline")

    def test_service_threads_memory_budget(self):
        from repro.verification.service import VerificationService

        program, invariant = build_case("coloring-chain", 5)
        plain = VerificationService().verify_tolerance(
            program, invariant, engine="packed", case="m"
        )
        budgeted = VerificationService().verify_tolerance(
            program, invariant, engine="packed", case="m", memory_budget=1
        )
        assert budgeted.report == plain.report

    def test_memory_budget_not_in_cache_key(self, tmp_path):
        from repro.verification.service import VerificationService

        program, invariant = build_case("coloring-chain", 5)
        service = VerificationService(cache_dir=str(tmp_path))
        first = service.verify_tolerance(
            program, invariant, engine="packed", case="m", memory_budget=1
        )
        second = service.verify_tolerance(
            program, invariant, engine="packed", case="m"
        )
        assert not first.cached
        assert second.cached

    def test_task_forwards_memory_budget(self):
        from repro.verification.parallel import VerificationTask, run_batch

        task = VerificationTask(
            case="budgeted",
            builder="repro.protocols.library:build_case",
            args=("coloring-chain", 5),
            memory_budget=1,
        )
        records = run_batch([task], workers=1)
        assert records[0]["ok"]

    # The CLI transitively imports numpy (analysis.markov), so its tests
    # sit out the bare-interpreter leg.
    @needs_numpy
    def test_cli_byte_size_parses_suffixes(self):
        from repro.cli import _byte_size

        assert _byte_size("1024") == 1024
        assert _byte_size("2K") == 2048
        assert _byte_size("512M") == 512 << 20
        assert _byte_size("1g") == 1 << 30
        with pytest.raises(Exception):
            _byte_size("abc")
        with pytest.raises(Exception):
            _byte_size("-5")

    @needs_numpy
    def test_cli_verify_accepts_memory_budget(self, capsys):
        from repro.cli import main

        assert main([
            "verify", "coloring", "--size", "4",
            "--memory-budget", "1G",
        ]) == 0
        assert "T-tolerant" in capsys.readouterr().out

    @needs_numpy
    def test_cli_verify_streams_under_tiny_budget(self, capsys):
        from repro.cli import main

        assert main([
            "verify", "coloring", "--size", "5",
            "--shards", "2", "--memory-budget", "1K",
        ]) == 0
        assert "T-tolerant" in capsys.readouterr().out

    def test_daemon_stats_have_kernel_mem_section(self):
        from repro.verification.server import VerificationDaemon

        daemon = VerificationDaemon()
        program, invariant = build_case("coloring-chain", 5)
        daemon.service.verify_tolerance(
            program, invariant, engine="packed", case="stats"
        )
        stats = daemon.stats()
        assert stats["kernel_mem"]["peak_bytes"] > 0
        assert stats["kernel_mem"]["code_bytes"] > 0
