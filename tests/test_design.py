"""Unit tests for the design workflow (augment, NonmaskingDesign)."""

import pytest

from repro.core import DesignError, augment
from repro.protocols.diffusing import build_diffusing_design
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
)
from repro.protocols.token_ring import (
    build_token_ring_design,
    window_states as ring_window,
)
from repro.topology import chain_tree

WINDOW = window_states(3)


class TestAugment:
    def test_appends_pure_convergence_actions(self):
        design = build_out_tree_design()
        program = augment(design.candidate, design.bindings)
        # Empty closure program plus two convergence actions.
        assert len(program.actions) == 2
        assert {a.name for a in program.actions} == {"lower-y", "raise-z"}

    def test_merged_action_replaces_closure_action(self):
        design = build_diffusing_design(chain_tree(3), variant="merged")
        program = design.program
        # The merged propagate actions replace the closure propagate
        # actions: 1 initiate + 2 propagate + 3 reflect = 6 actions, same
        # count as the closure program.
        assert len(program.actions) == len(design.candidate.program.actions)
        merged = program.action("propagate.1")
        closure = design.candidate.program.action("propagate.1")
        assert merged is not closure  # the wider-guard convergence version

    def test_unmerged_variant_appends(self):
        design = build_diffusing_design(chain_tree(3), variant="copy-parent")
        assert len(design.program.actions) == len(
            design.candidate.program.actions
        ) + len(design.bindings)

    def test_shared_action_object_added_once(self):
        design = build_token_ring_design(3)
        # Two bindings per node share one merged pass action.
        assert len(design.bindings) == 2 * len(design.layers[0])
        names = [a.name for a in design.program.actions]
        assert names.count("pass.1") == 1

    def test_conflicting_action_names_rejected(self):
        design = build_out_tree_design()
        from repro.core import Action, Assignment, ConvergenceBinding, Predicate

        impostor = Action(
            "lower-y",  # same name as an existing binding's action
            Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
            Assignment({"y": 9}),
            reads=("x", "y"),
        )
        clashing = ConvergenceBinding(
            constraint=design.bindings[0].constraint, action=impostor
        )
        with pytest.raises(DesignError, match="distinct names"):
            augment(design.candidate, [design.bindings[0], clashing])


class TestNonmaskingDesign:
    def test_graph_cached(self):
        design = build_out_tree_design()
        assert design.graph is design.graph

    def test_program_cached(self):
        design = build_out_tree_design()
        assert design.program is design.program

    def test_validate_auto_picks_theorem1_for_out_tree(self):
        report = build_out_tree_design().validate(WINDOW)
        assert report.ok
        assert "Theorem 1" in report.selected.theorem

    def test_validate_auto_picks_theorem2_for_self_looping(self):
        report = build_ordered_design().validate(WINDOW)
        assert report.ok
        assert "Theorem 2" in report.selected.theorem

    def test_validate_auto_picks_theorem3_when_layered(self):
        design = build_token_ring_design(3)
        report = design.validate(ring_window(3, 0, 3))
        assert report.ok
        assert "Theorem 3" in report.selected.theorem

    def test_validate_forced_theorem(self):
        design = build_out_tree_design()
        report = design.validate(WINDOW, theorem="2")
        assert report.ok
        assert "Theorem 2" in report.selected.theorem

    def test_forcing_theorem3_without_layers_raises(self):
        with pytest.raises(DesignError, match="no layer partition"):
            build_out_tree_design().validate(WINDOW, theorem="3")

    def test_unknown_theorem_selector(self):
        with pytest.raises(DesignError, match="unknown theorem"):
            build_out_tree_design().validate(WINDOW, theorem="4")

    def test_invalid_design_reports_failure(self):
        report = build_oscillating_design().validate(WINDOW)
        assert not report.ok
        assert "NOT validated" in report.describe()

    def test_foreign_constraint_rejected(self):
        from repro.core import NonmaskingDesign

        good = build_out_tree_design()
        other = build_ordered_design()
        with pytest.raises(DesignError, match="candidate triple"):
            NonmaskingDesign(
                "mismatched",
                good.candidate,
                other.bindings,
                good.nodes,
            )

    def test_layers_must_partition_bindings(self):
        from repro.core import NonmaskingDesign

        design = build_ordered_design()
        with pytest.raises(DesignError, match="partition exactly"):
            NonmaskingDesign(
                "bad-layers",
                design.candidate,
                design.bindings,
                design.nodes,
                layers=[[design.bindings[0]]],  # misses one binding
            )
