"""Tests for the expression DSL."""

import pytest

from repro.core import State
from repro.core.expr import C, V, expr_action, ite, max_, min_


S = State({"x": 3, "y": 3, "z": 5})


class TestEvaluation:
    def test_variable_and_constant(self):
        assert V("x")(S) == 3
        assert C(7)(S) == 7

    def test_arithmetic(self):
        assert (V("x") + 1)(S) == 4
        assert (1 + V("x"))(S) == 4
        assert (V("z") - V("x"))(S) == 2
        assert (10 - V("x"))(S) == 7
        assert (V("x") * 2)(S) == 6
        assert ((V("x") + 2) % 4)(S) == 1

    def test_comparisons(self):
        assert (V("x") == V("y"))(S)
        assert not (V("x") == V("z"))(S)
        assert (V("x") != V("z"))(S)
        assert (V("x") < V("z"))(S)
        assert (V("x") <= 3)(S)
        assert (V("z") > 4)(S)
        assert (V("z") >= 5)(S)

    def test_boolean_connectives(self):
        both = (V("x") == 3) & (V("z") == 5)
        either = (V("x") == 9) | (V("z") == 5)
        neither = ~(V("x") == 3)
        assert both(S)
        assert either(S)
        assert not neither(S)

    def test_ite(self):
        expr = ite(V("x") == V("y"), V("z"), 0)
        assert expr(S) == 5
        assert expr(State({"x": 1, "y": 2, "z": 5})) == 0

    def test_min_max(self):
        assert min_(V("x"), V("z"), 4)(S) == 3
        assert max_(V("x"), V("z"))(S) == 5
        with pytest.raises(ValueError):
            min_()


class TestSupportInference:
    def test_variables_collected(self):
        expr = (V("x") + V("y")) % (V("z") - 1)
        assert expr.variables() == frozenset({"x", "y", "z"})

    def test_constants_contribute_nothing(self):
        assert (C(1) + C(2)).variables() == frozenset()

    def test_ite_collects_all_branches(self):
        expr = ite(V("a") == 0, V("b"), V("c"))
        assert expr.variables() == frozenset({"a", "b", "c"})


class TestRendering:
    def test_infix_rendering(self):
        assert str(V("x") + 1) == "(x + 1)"
        assert str(V("x") == V("y")) == "(x = y)"
        assert str(~(V("x") == V("y"))) == "not (x = y)"
        assert str((V("x") < 2) & (V("y") > 1)) == "((x < 2) and (y > 1))"

    def test_string_constants_quoted(self):
        assert str(V("c") == "red") == "(c = 'red')"

    def test_predicate_gets_rendered_name(self):
        predicate = (V("x") <= V("z")).predicate()
        assert predicate.name == "(x <= z)"
        assert predicate.support == frozenset({"x", "z"})
        assert predicate(S)


class TestExprAction:
    def test_reads_and_writes_inferred(self):
        action = expr_action(
            "clamp", V("x") > V("z"), {"x": V("z")}, process="x"
        )
        assert action.reads == frozenset({"x", "z"})
        assert action.writes == frozenset({"x"})
        assert action.process == "x"

    def test_execution_matches_semantics(self):
        action = expr_action("lower", V("x") == V("y"), {"x": V("x") - 1})
        after = action.execute(S)
        assert after["x"] == 2

    def test_simultaneous_updates(self):
        action = expr_action(
            "swap",
            V("x") != V("z"),
            {"x": V("z"), "z": V("x")},
        )
        after = action.execute(S)
        assert after["x"] == 5 and after["z"] == 3

    def test_equivalent_to_handwritten_design(self):
        # Rebuild the paper's ordered x/y/z design via the DSL and check
        # it agrees with the handwritten one on every window state.
        from repro.protocols.three_constraint import (
            build_ordered_design,
            window_states,
        )

        lower = expr_action("lower-x", V("x") == V("y"), {"x": V("x") - 1},
                            process="x")
        clamp = expr_action("clamp-x", V("x") > V("z"), {"x": V("z")},
                            process="x")
        reference = build_ordered_design(2)
        ref_lower = reference.program.action("lower-x")
        ref_clamp = reference.program.action("clamp-x")
        for state in window_states(2):
            assert lower.enabled(state) == ref_lower.enabled(state)
            assert clamp.enabled(state) == ref_clamp.enabled(state)
            if lower.enabled(state):
                assert lower.execute(state) == ref_lower.execute(state)
            if clamp.enabled(state):
                assert clamp.execute(state) == ref_clamp.execute(state)
