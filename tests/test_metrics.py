"""Unit tests for stabilization metrics (rounds, convergence work)."""

from repro.core import State
from repro.scheduler import Computation
from repro.simulation import convergence_action_work, count_rounds


class TestCountRounds:
    def test_empty_trace_is_zero_rounds(self, counter_program):
        computation = Computation(initial=State({"n": 0}))
        assert count_rounds(computation, counter_program) == 0

    def test_single_action_program_one_round_per_step(self, counter_program):
        # At n = 0 only inc is enabled; executing it completes a round.
        inc = counter_program.action("inc")
        computation = Computation(initial=State({"n": 0}))
        computation.append((inc,), State({"n": 1}))
        computation.append((inc,), State({"n": 2}))
        assert count_rounds(computation, counter_program) == 2

    def test_round_requires_all_enabled_to_fire_or_disable(self, two_var_program):
        inc_a = two_var_program.action("inc.a")
        inc_b = two_var_program.action("inc.b")
        computation = Computation(initial=State({"a": 0, "b": 0}))
        # Both enabled at the start; only inc.a fires -> round incomplete.
        computation.append((inc_a,), State({"a": 1, "b": 0}))
        assert count_rounds(computation, two_var_program) == 0
        # Now inc.b fires too -> one round complete.
        computation.append((inc_b,), State({"a": 1, "b": 1}))
        assert count_rounds(computation, two_var_program) == 1

    def test_disabling_counts_toward_round(self, two_var_program):
        inc_a = two_var_program.action("inc.a")
        computation = Computation(initial=State({"a": 0, "b": 2}))
        # inc.b is disabled (b = 2): the round needs only inc.a.
        computation.append((inc_a,), State({"a": 1, "b": 2}))
        assert count_rounds(computation, two_var_program) == 1

    def test_rounds_stop_when_nothing_enabled(self, two_var_program):
        inc_a = two_var_program.action("inc.a")
        inc_b = two_var_program.action("inc.b")
        computation = Computation(initial=State({"a": 1, "b": 1}))
        computation.append((inc_a,), State({"a": 2, "b": 1}))
        computation.append((inc_b,), State({"a": 2, "b": 2}))
        # Everything disabled afterwards; exactly one round completed.
        assert count_rounds(computation, two_var_program) == 1


class TestConvergenceWork:
    def test_split_by_action_class(self, counter_program):
        inc = counter_program.action("inc")
        reset = counter_program.action("reset")
        computation = Computation(initial=State({"n": 0}))
        for state in (1, 2, 3):
            computation.append((inc,), State({"n": state}))
        computation.append((reset,), State({"n": 0}))
        convergence, closure = convergence_action_work(computation, {"reset"})
        assert convergence == 1
        assert closure == 3

    def test_empty_trace(self, counter_program):
        computation = Computation(initial=State({"n": 0}))
        assert convergence_action_work(computation, {"reset"}) == (0, 0)
