"""Unit tests for exhaustive preservation checking."""

from repro.core import Action, Assignment, Predicate, State, preserves


def states(lo=-3, hi=3):
    return [State({"x": a, "y": b}) for a in range(lo, hi + 1) for b in range(lo, hi + 1)]


def decrement_x() -> Action:
    return Action(
        "dec-x",
        Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
        Assignment({"x": lambda s: s["x"] - 1}),
        reads=("x", "y"),
    )


def increment_x() -> Action:
    return Action(
        "inc-x",
        Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
        Assignment({"x": lambda s: s["x"] + 1}),
        reads=("x", "y"),
    )


X_LEQ_Y = Predicate(lambda s: s["x"] <= s["y"], name="x <= y", support=("x", "y"))
X_GEQ_Y = Predicate(lambda s: s["x"] >= s["y"], name="x >= y", support=("x", "y"))


class TestPreserves:
    def test_preserving_action_passes(self):
        # Decreasing x preserves x <= y (the paper's Section 6 argument).
        result = preserves(decrement_x(), X_LEQ_Y, states())
        assert result.ok
        assert result.checked > 0
        assert not result.violations

    def test_violating_action_reports_witness(self):
        # Increasing x from x = y breaks x <= y — with a concrete witness.
        result = preserves(increment_x(), X_LEQ_Y, states())
        assert not result.ok
        witness = result.violations[0]
        assert witness.before["x"] == witness.before["y"]
        assert witness.after["x"] == witness.before["x"] + 1
        assert "inc-x" in witness.describe()

    def test_only_enabled_and_holding_states_count(self):
        # The predicate x >= y holds at x = y; dec-x breaks it there. With
        # a witness cap above the violation count, every relevant state is
        # scanned: exactly the diagonal states.
        diagonal = len([s for s in states() if s["x"] == s["y"]])
        result = preserves(decrement_x(), X_GEQ_Y, states(), max_violations=1000)
        assert not result.ok
        assert result.checked == diagonal
        assert len(result.violations) == diagonal

    def test_given_context_restricts_check(self):
        # Under the context y < 0 the equality states with y >= 0 are skipped.
        negative_y = Predicate(lambda s: s["y"] < 0, name="y < 0", support=("y",))
        full = preserves(increment_x(), X_LEQ_Y, states(), max_violations=1000)
        restricted = preserves(
            increment_x(), X_LEQ_Y, states(), given=negative_y, max_violations=1000
        )
        assert restricted.checked < full.checked
        assert not restricted.ok  # still violated inside the context

    def test_vacuous_context_passes(self):
        never = Predicate(lambda s: False, name="false", support=())
        result = preserves(increment_x(), X_LEQ_Y, states(), given=never)
        assert result.ok
        assert result.checked == 0

    def test_max_violations_caps_collection(self):
        result = preserves(increment_x(), X_LEQ_Y, states(), max_violations=1)
        assert not result.ok
        assert len(result.violations) == 1

    def test_bool_protocol(self):
        assert bool(preserves(decrement_x(), X_LEQ_Y, states()))
        assert not bool(preserves(increment_x(), X_LEQ_Y, states()))
