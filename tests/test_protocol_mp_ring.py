"""Tests for the message-passing token ring (the Section 7.1 exercise)."""

import random

import pytest

from repro.core import TRUE
from repro.faults import LambdaFault, ScheduledFaults
from repro.protocols.mp_token_ring import (
    build_mp_token_ring,
    channel_var,
    messages_in_flight,
    x_var,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import Ring
from repro.verification.checker import _check_tolerance as check_tolerance


def legitimate_state(program, n, k, position=0):
    """A canonical S-state: one fresh message in ch.position."""
    value = 1
    previous = 0
    values = {}
    for j in range(n):
        values[x_var(j)] = value if j <= position else previous
        values[channel_var(j)] = value if j == position else None
    return program.make_state(values)


class TestConstruction:
    def test_action_inventory(self):
        program, _ = build_mp_token_ring(3, 3)
        names = {a.name for a in program.actions}
        assert names == {
            "advance.0", "drop.0", "timeout.0",
            "relay.1", "absorb.1", "relay.2", "absorb.2",
        }

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_mp_token_ring(1, 3)
        with pytest.raises(ValueError):
            build_mp_token_ring(3, 1)


class TestInvariant:
    def test_canonical_states_legitimate(self):
        program, S = build_mp_token_ring(4, 4)
        for position in range(4):
            assert S(legitimate_state(program, 4, 4, position)), position

    def test_two_messages_illegitimate(self):
        program, S = build_mp_token_ring(3, 3)
        state = legitimate_state(program, 3, 3, 0).update({channel_var(1): 2})
        assert not S(state)

    def test_empty_ring_illegitimate(self):
        program, S = build_mp_token_ring(3, 3)
        state = legitimate_state(program, 3, 3, 0).update({channel_var(0): None})
        assert not S(state)

    def test_invariant_closed_and_program_stabilizing(self):
        program, S = build_mp_token_ring(3, 4)
        report = check_tolerance(program, S, TRUE, program.state_space())
        assert report.ok
        assert report.stabilizing


class TestTokenBehaviour:
    def test_token_circulates(self):
        program, S = build_mp_token_ring(4, 5)
        ring = Ring(4)
        state = legitimate_state(program, 4, 5, 0)
        result = run(program, state, FirstEnabledScheduler(), max_steps=30)
        positions = []
        for visited in result.computation.states():
            flights = messages_in_flight(ring, visited)
            assert len(flights) == 1  # S is closed: always one message
            positions.append(flights[0][0])
        assert set(positions) == {0, 1, 2, 3}

    def test_counter_advances_each_round_trip(self):
        program, _ = build_mp_token_ring(3, 5)
        state = legitimate_state(program, 3, 5, 0)
        result = run(program, state, FirstEnabledScheduler(), max_steps=40)
        x0_values = {visited[x_var(0)] for visited in result.computation.states()}
        assert len(x0_values) >= 3  # several rounds completed


class TestFaultTolerance:
    def test_recovers_from_token_loss(self):
        program, S = build_mp_token_ring(4, 5)
        state = legitimate_state(program, 4, 5, 1)
        lose = LambdaFault(
            "lose-token",
            lambda s, rng: s.update(
                {channel_var(j): None for j in range(4)}
            ),
        )
        result = run(
            program,
            state,
            RandomScheduler(3),
            max_steps=300,
            target=S,
            faults=ScheduledFaults({20: lose}),
            fault_rng=random.Random(0),
        )
        assert result.fault_count == 1
        assert result.stabilized
        # Recovery goes through the timeout action.
        assert result.computation.action_counts()["timeout.0"] >= 1

    def test_recovers_from_duplication(self):
        program, S = build_mp_token_ring(4, 5)
        state = legitimate_state(program, 4, 5, 0)
        duplicate = LambdaFault(
            "duplicate-token",
            lambda s, rng: s.update({channel_var(2): s[channel_var(0)]}),
        )
        result = run(
            program,
            state,
            RandomScheduler(4),
            max_steps=300,
            target=S,
            faults=ScheduledFaults({10: duplicate}),
            fault_rng=random.Random(1),
        )
        assert result.stabilized

    def test_stabilizes_from_arbitrary_corruption(self):
        program, S = build_mp_token_ring(5, 7)
        rng = random.Random(9)
        for trial in range(8):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=3000,
                target=S,
                stop_on_target=True,
            )
            assert result.stabilized


class TestKThreshold:
    def test_k_two_fails_for_ring_of_four(self):
        program, S = build_mp_token_ring(4, 2)
        report = check_tolerance(program, S, TRUE, program.state_space())
        assert not report.ok

    def test_k_three_suffices_for_ring_of_four(self):
        program, S = build_mp_token_ring(4, 3)
        report = check_tolerance(program, S, TRUE, program.state_space())
        assert report.ok
