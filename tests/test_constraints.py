"""Unit tests for constraints and convergence bindings."""

import pytest

from repro.core import (
    Action,
    Assignment,
    Constraint,
    ConvergenceBinding,
    DesignError,
    Predicate,
    State,
)
from repro.core.constraints import conjunction
from repro.core.errors import LintError
from repro.core.expr import V


def nonneg() -> Constraint:
    return Constraint(
        name="c",
        predicate=Predicate(lambda s: s["x"] >= 0, name="x >= 0", support=("x",)),
    )


STATES = [State({"x": v}) for v in range(-3, 4)]


class TestConstraint:
    def test_holds(self):
        c = nonneg()
        assert c.holds(State({"x": 0}))
        assert not c.holds(State({"x": -1}))

    def test_support_exposed(self):
        assert nonneg().support == frozenset({"x"})

    def test_predicate_without_support_rejected(self):
        with pytest.raises(DesignError, match="support"):
            Constraint(name="bad", predicate=Predicate(lambda s: True, name="t"))

    def test_conjunction(self):
        other = Constraint(
            name="d",
            predicate=Predicate(lambda s: s["x"] <= 2, name="x <= 2", support=("x",)),
        )
        conj = conjunction([nonneg(), other])
        assert conj(State({"x": 1}))
        assert not conj(State({"x": 3}))
        assert not conj(State({"x": -1}))


def strict_fix() -> Action:
    return Action(
        "fix",
        Predicate(lambda s: s["x"] < 0, name="x < 0", support=("x",)),
        Assignment({"x": 0}),
        reads=("x",),
    )


def partial_fix() -> Action:
    # Enabled only on part of the violation region.
    return Action(
        "partial",
        Predicate(lambda s: s["x"] < -1, name="x < -1", support=("x",)),
        Assignment({"x": 0}),
        reads=("x",),
    )


def broken_fix() -> Action:
    # "Fixes" by moving to another violating value.
    return Action(
        "broken",
        Predicate(lambda s: s["x"] < 0, name="x < 0", support=("x",)),
        Assignment({"x": -1}),
        reads=("x",),
    )


class TestConvergenceBinding:
    def test_violated_implies_enabled(self):
        good = ConvergenceBinding(constraint=nonneg(), action=strict_fix())
        assert good.violated_implies_enabled(STATES)
        bad = ConvergenceBinding(constraint=nonneg(), action=partial_fix())
        assert not bad.violated_implies_enabled(STATES)

    def test_establishes_constraint(self):
        good = ConvergenceBinding(constraint=nonneg(), action=strict_fix())
        assert good.establishes_constraint(STATES)
        bad = ConvergenceBinding(constraint=nonneg(), action=broken_fix())
        assert not bad.establishes_constraint(STATES)

    def test_guard_is_strict(self):
        strict = ConvergenceBinding(constraint=nonneg(), action=strict_fix())
        assert strict.guard_is_strict(STATES)

        merged_action = Action(
            "merged",
            Predicate(lambda s: s["x"] != 1, name="x != 1", support=("x",)),
            Assignment({"x": 1}),
            reads=("x",),
        )
        merged = ConvergenceBinding(constraint=nonneg(), action=merged_action)
        # Enabled at x = 0 where the constraint holds: not strict.
        assert not merged.guard_is_strict(STATES)
        # But still establishes and covers violations.
        assert merged.violated_implies_enabled(STATES)
        assert merged.establishes_constraint(STATES)


class TestConstraintSymbolicSupport:
    """Support auto-derivation from the expression DSL (staticcheck PR)."""

    def test_bool_expr_accepted_directly(self):
        c = Constraint(name="c", predicate=(V("x") >= 0))
        assert isinstance(c.predicate, Predicate)
        assert c.support == frozenset({"x"})

    def test_bool_expr_support_spans_all_variables(self):
        c = Constraint(name="c", predicate=(V("x") == V("y")))
        assert c.support == frozenset({"x", "y"})

    def test_redundant_matching_declaration_accepted(self):
        c = Constraint(
            name="c", predicate=(V("x") >= 0), declared_support=("x",)
        )
        assert c.support == frozenset({"x"})

    def test_disagreeing_declaration_is_lint_error(self):
        with pytest.raises(LintError, match="symbolic variables"):
            Constraint(
                name="c", predicate=(V("x") >= 0), declared_support=("x", "y")
            )

    def test_opaque_predicate_with_explicit_declaration(self):
        c = Constraint(
            name="c",
            predicate=Predicate(lambda s: s["x"] >= 0, name="x >= 0"),
            declared_support=("x",),
        )
        assert c.support == frozenset({"x"})

    def test_opaque_predicate_disagreeing_declaration_is_lint_error(self):
        with pytest.raises(LintError, match="support"):
            Constraint(
                name="c",
                predicate=Predicate(lambda s: s["x"] >= 0, name="g", support=("x",)),
                declared_support=("x", "y"),
            )

    def test_symbolic_inferred_support_is_exact(self):
        c = Constraint(name="c", predicate=(V("x") >= 0))
        inferred = c.inferred_support(STATES)
        assert inferred.exact
        assert inferred.reads == frozenset({"x"})

    def test_opaque_inferred_support_is_probed(self):
        inferred = nonneg().inferred_support(STATES)
        assert not inferred.exact
        assert inferred.reads == frozenset({"x"})
