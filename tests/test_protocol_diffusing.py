"""Tests for the stabilizing diffusing computation (paper Section 5.1).

Covers: the Theorem 1 certificate on several tree shapes and all three
convergence-statement variants; exhaustive T-tolerance verification;
fault-free wave behaviour (green -> red -> green cycles); stabilization
from arbitrary corruption under several daemons.
"""

import random

import pytest

from repro.core import TRUE
from repro.protocols.diffusing import (
    RED,
    VARIANTS,
    all_green_state,
    build_diffusing_design,
    color_var,
    diffusing_constraint,
    diffusing_invariant,
    session_var,
    wave_complete,
)
from repro.scheduler import (
    AdversarialScheduler,
    FirstEnabledScheduler,
    RandomScheduler,
    SynchronousDaemon,
)
from repro.simulation import run
from repro.topology import balanced_tree, chain_tree, random_tree, star_tree
from repro.verification.checker import _check_tolerance as check_tolerance


class TestConstruction:
    def test_variables_per_node(self, chain3):
        design = build_diffusing_design(chain3)
        assert len(design.program.variables) == 2 * len(chain3)
        assert color_var(1) in design.program.variables
        assert session_var(2) in design.program.variables

    def test_paper_program_action_shape(self, chain3):
        # The paper's final listing: one initiate, one merged propagate
        # per non-root node, one reflect per node.
        program = build_diffusing_design(chain3, variant="merged").program
        names = {a.name for a in program.actions}
        assert "initiate" in names
        assert {"propagate.1", "propagate.2"} <= names
        assert {"reflect.0", "reflect.1", "reflect.2"} <= names
        assert len(program.actions) == 1 + 2 + 3

    def test_single_node_tree_rejected(self):
        from repro.topology import RootedTree

        with pytest.raises(ValueError, match="at least two"):
            build_diffusing_design(RootedTree({0: 0}))

    def test_unknown_variant_rejected(self, chain3):
        with pytest.raises(ValueError, match="variant"):
            build_diffusing_design(chain3, variant="telepathic")

    def test_root_has_no_constraint(self, chain3):
        with pytest.raises(ValueError, match="root"):
            diffusing_constraint(chain3, chain3.root)


class TestTheorem1Certificate:
    @pytest.mark.parametrize("make_tree", [chain_tree, star_tree], ids=["chain", "star"])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_certificate_valid_across_shapes_and_variants(self, make_tree, variant):
        tree = make_tree(4)
        design = build_diffusing_design(tree, variant=variant)
        states = list(design.program.state_space())
        report = design.validate(states)
        assert report.ok, report.describe()
        assert "Theorem 1" in report.selected.theorem

    def test_constraint_graph_is_the_tree(self, btree7):
        design = build_diffusing_design(btree7)
        graph = design.graph
        assert graph.is_out_tree()
        assert len(graph.edges) == len(btree7) - 1
        # Each edge's target is the child node.
        for edge in graph.edges:
            child = edge.binding.constraint.name.removeprefix("R.")
            assert edge.target.name == child

    def test_decomposition_equivalent(self, chain3):
        design = build_diffusing_design(chain3)
        report = design.candidate.check_decomposition(
            design.program.state_space()
        )
        assert report.ok
        assert report.equivalent


class TestExhaustiveVerification:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_true_tolerant_for_s(self, chain3, variant):
        design = build_diffusing_design(chain3, variant=variant)
        report = check_tolerance(
            design.program,
            diffusing_invariant(chain3),
            TRUE,
            design.program.state_space(),
            fairness="weak",
        )
        assert report.ok
        assert report.stabilizing

    def test_converges_even_without_fairness(self, chain3):
        # The Section 8 remark, verified exactly on a small instance.
        design = build_diffusing_design(chain3)
        report = check_tolerance(
            design.program,
            diffusing_invariant(chain3),
            TRUE,
            design.program.state_space(),
            fairness="none",
        )
        assert report.ok

    def test_merged_and_split_variants_agree_on_legitimate_behaviour(self, chain3):
        # From the all-green state the merged and copy-parent programs
        # produce identical executions under a deterministic daemon.
        runs = []
        for variant in ("merged", "copy-parent"):
            design = build_diffusing_design(chain3, variant=variant)
            initial = design.program.make_state(all_green_state(chain3))
            result = run(
                design.program,
                initial,
                FirstEnabledScheduler(),
                max_steps=30,
            )
            runs.append(list(result.computation.states()))
        assert runs[0] == runs[1]


class TestWaveBehaviour:
    def test_wave_propagates_and_reflects(self, chain3):
        design = build_diffusing_design(chain3)
        program = design.program
        initial = program.make_state(all_green_state(chain3))
        result = run(program, initial, FirstEnabledScheduler(), max_steps=100)
        colors_seen = set()
        reds_per_state = [
            sum(1 for j in chain3.nodes if state[color_var(j)] == RED)
            for state in result.computation.states()
        ]
        # The wave covered the whole tree and collapsed again.
        assert max(reds_per_state) == len(chain3)
        assert reds_per_state.count(0) >= 2  # all-green recurs
        del colors_seen

    def test_cycle_repeats_forever(self, chain3):
        design = build_diffusing_design(chain3)
        program = design.program
        initial = program.make_state(all_green_state(chain3))
        result = run(program, initial, RandomScheduler(4), max_steps=400)
        initiations = result.computation.action_counts()["initiate"]
        assert initiations >= 5  # many waves in 400 steps

    def test_invariant_never_violated_without_faults(self, btree7):
        design = build_diffusing_design(btree7)
        program = design.program
        invariant = diffusing_invariant(btree7)
        initial = program.make_state(all_green_state(btree7))
        result = run(program, initial, RandomScheduler(11), max_steps=300)
        assert all(invariant(state) for state in result.computation.states())


class TestStabilization:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_stabilizes_from_random_corruption(self, variant):
        tree = random_tree(9, seed=13)
        design = build_diffusing_design(tree, variant=variant)
        program = design.program
        invariant = diffusing_invariant(tree)
        rng = random.Random(20)
        for trial in range(10):
            initial = program.random_state(rng)
            result = run(
                program,
                initial,
                RandomScheduler(trial),
                max_steps=3000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_stabilizes_under_adversarial_daemon(self):
        tree = balanced_tree(2, 2)
        design = build_diffusing_design(tree)
        program = design.program
        invariant = diffusing_invariant(tree)
        adversary = AdversarialScheduler(invariant, seed=2)
        rng = random.Random(21)
        for _ in range(5):
            result = run(
                program,
                program.random_state(rng),
                adversary,
                max_steps=5000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_stabilizes_under_synchronous_daemon(self):
        tree = balanced_tree(2, 2)
        design = build_diffusing_design(tree)
        program = design.program
        invariant = diffusing_invariant(tree)
        rng = random.Random(22)
        for trial in range(5):
            result = run(
                program,
                program.random_state(rng),
                SynchronousDaemon(seed=trial),
                max_steps=2000,
                target=invariant,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_wave_resumes_after_stabilization(self):
        tree = chain_tree(4)
        design = build_diffusing_design(tree)
        program = design.program
        invariant = diffusing_invariant(tree)
        rng = random.Random(23)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(5),
            max_steps=2000,
            target=invariant,
        )
        assert result.stabilized is True or result.stabilization_index is None
        # After the run the computation still made progress: waves
        # completed (all-green states recur after stabilization).
        greens = [
            i
            for i, state in enumerate(result.computation.states())
            if wave_complete(tree)(state)
        ]
        assert greens and greens[-1] > (result.target_index or 0)
