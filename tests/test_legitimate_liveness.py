"""Liveness inside the invariant: the intended computation actually runs.

Closure and convergence say nothing about whether the *fault-free*
behaviour is useful. These tests check the spec-level liveness of the
paper's two cyclic protocols on their legitimate state graphs:

- the diffusing computation's S-states form a single recurrent class —
  from any legitimate state the wave passes through all-green again and
  every node is colored red in between;
- the token ring's S-states likewise form one cycle along which every
  node becomes privileged.
"""

from repro.core import State
from repro.protocols.diffusing import (
    GREEN,
    RED,
    build_diffusing_design,
    color_var,
    diffusing_invariant,
)
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    privileged_nodes,
)
from repro.topology import Ring, chain_tree, star_tree
from repro.verification import build_transition_system, explore


def legitimate_states(program, invariant):
    return [state for state in program.state_space() if invariant(state)]


def is_single_recurrent_class(program, states):
    """Every state reaches every other (one SCC over the closed set)."""
    ts = build_transition_system(program, states)
    assert not ts.escapes  # the set must be closed
    member = set(states)
    for start in states:
        reach = explore(program, [start])
        if not member <= set(reach.states):
            return False
    return True


class TestDiffusingLiveness:
    def test_single_recurrent_class(self, chain3):
        design = build_diffusing_design(chain3)
        states = legitimate_states(design.program, diffusing_invariant(chain3))
        assert states
        assert is_single_recurrent_class(design.program, states)

    def test_every_node_turns_red_and_green(self):
        tree = star_tree(3)
        design = build_diffusing_design(tree)
        states = legitimate_states(design.program, diffusing_invariant(tree))
        for j in tree.nodes:
            reds = [s for s in states if s[color_var(j)] == RED]
            greens = [s for s in states if s[color_var(j)] == GREEN]
            # Both colors occur among legitimate states, and since the
            # class is recurrent, every node is re-colored forever.
            assert reds and greens

    def test_legitimate_class_size_scales_with_tree(self):
        small = build_diffusing_design(chain_tree(3))
        larger = build_diffusing_design(chain_tree(4))
        count_small = len(
            legitimate_states(small.program, diffusing_invariant(chain_tree(3)))
        )
        count_larger = len(
            legitimate_states(larger.program, diffusing_invariant(chain_tree(4)))
        )
        assert count_larger > count_small


class TestTokenRingLiveness:
    def test_recurrent_core_serves_every_node(self):
        # The one-privilege set contains transient states (multi-step
        # counter gaps) that drain into the recurrent core: the orbit of
        # the all-equal states, where gaps are single steps.
        program, spec = build_dijkstra_ring(4, 4)
        all_zero = State({f"x.{j}": 0 for j in range(4)})
        core = explore(program, [all_zero]).states
        assert is_single_recurrent_class(program, core)
        ring = Ring(4)
        holders = {privileged_nodes(ring, state)[0] for state in core}
        assert holders == {0, 1, 2, 3}
        # Core size: K choices of value x (N+1) token positions.
        assert len(core) == 4 * 4

    def test_every_legitimate_state_reaches_the_core(self):
        program, spec = build_dijkstra_ring(4, 4)
        all_zero = State({f"x.{j}": 0 for j in range(4)})
        core = set(explore(program, [all_zero]).states)
        for state in legitimate_states(program, spec):
            reach = set(explore(program, [state]).states)
            assert reach & core
