"""Property-based tests over the extension protocols.

Random instances, random corruption, random schedules — the headline
stabilization guarantees sampled across the whole protocol library.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.four_state_ring import (
    build_four_state_line,
    four_state_invariant,
    privileged_machines,
)
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    conflicted_nodes,
    graph_coloring_invariant,
)
from repro.protocols.independent_set import build_mis_program, members, mis_invariant
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
    leader_var,
)
from repro.protocols.mp_token_ring import build_mp_token_ring
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    dist_var,
    spanning_tree_invariant,
)
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import random_connected_graph, random_tree


def stabilize(program, invariant, seed, *, factor=2000):
    result = run(
        program,
        program.random_state(random.Random(seed)),
        RandomScheduler(seed),
        max_steps=factor * max(1, len(program.variables)),
        target=invariant,
        stop_on_target=True,
    )
    return result


class TestMessagePassingRing:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_stabilizes_with_ample_counter(self, n, seed):
        program, invariant = build_mp_token_ring(n, k=n + 2)
        result = stabilize(program, invariant, seed)
        assert result.stabilized


class TestFourState:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_stabilizes_and_keeps_single_privilege(self, n, seed):
        program = build_four_state_line(n)
        invariant = four_state_invariant(program)
        result = stabilize(program, invariant, seed)
        assert result.stabilized
        follow = run(
            program,
            result.computation.final_state,
            RandomScheduler(seed + 1),
            max_steps=5 * n,
        )
        for state in follow.computation.states():
            assert len(privileged_machines(program, state)) == 1


class TestTreeProtocols:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_leader_election_broadcasts_the_root(self, size, seed):
        tree = random_tree(size, seed=seed % 1000)
        design = build_leader_election_design(tree)
        result = stabilize(design.program, election_invariant(tree), seed)
        assert result.stabilized
        final = result.computation.final_state
        assert all(final[leader_var(j)] == tree.root for j in tree.nodes)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_tree_coloring_proper(self, size, seed):
        tree = random_tree(size, seed=seed % 1000)
        design = build_coloring_design(tree, k=2)
        result = stabilize(design.program, coloring_invariant(tree), seed)
        assert result.stabilized


class TestGraphProtocols:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=3, max_value=18),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_spanning_tree_distances_exact(self, size, seed):
        graph = random_connected_graph(size, size // 2, seed=seed % 1000)
        program = build_spanning_tree_program(graph, 0)
        result = stabilize(program, spanning_tree_invariant(graph, 0), seed)
        assert result.stabilized
        final = result.computation.final_state
        levels = graph.bfs_levels(0)
        assert all(final[dist_var(j)] == levels[j] for j in graph.nodes)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=18),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_mis_independent_and_maximal(self, size, seed):
        graph = random_connected_graph(size, size // 2, seed=seed % 1000)
        program = build_mis_program(graph)
        result = stabilize(program, mis_invariant(graph), seed)
        assert result.stabilized
        chosen = members(graph, result.computation.final_state)
        for u, v in graph.edges():
            assert not (u in chosen and v in chosen)
        for j in graph.nodes:
            assert j in chosen or any(k in chosen for k in graph.neighbors(j))

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=18),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_greedy_coloring_conflict_free(self, size, seed):
        graph = random_connected_graph(size, size, seed=seed % 1000)
        program = build_graph_coloring_program(graph)
        result = stabilize(program, graph_coloring_invariant(graph), seed)
        assert result.stabilized
        assert not conflicted_nodes(graph, result.computation.final_state)
