"""Unit tests for convergence stairs."""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    TRUE,
    Variable,
)
from repro.verification import check_stair


def lower_bound(bound: int) -> Predicate:
    return Predicate(
        lambda s: s["n"] <= bound, name=f"n <= {bound}", support=("n",)
    )


def step_down_to(floor: int) -> Action:
    return Action(
        f"down-to-{floor}",
        Predicate(lambda s: s["n"] > floor, name=f"n > {floor}", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )


def countdown_program() -> Program:
    return Program(
        "countdown",
        [Variable("n", IntegerRangeDomain(0, 4))],
        [step_down_to(0)],
    )


class TestCheckStair:
    def test_valid_stair(self):
        program = countdown_program()
        stair = [TRUE, lower_bound(2), lower_bound(0)]
        report = check_stair(program, stair, program.state_space())
        assert report.ok
        assert len(report.steps) == 2
        assert "VALID" in report.describe()

    def test_single_step_stair(self):
        program = countdown_program()
        report = check_stair(program, [TRUE, lower_bound(0)], program.state_space())
        assert report.ok

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            check_stair(countdown_program(), [TRUE], [])

    def test_non_subset_chain_detected(self):
        # lower_bound(3) does not imply lower_bound(1)... the chain below
        # is ordered wrongly: the second predicate is weaker than the
        # third but the first step's "subset" check compares adjacent
        # pairs, so swapping two levels is caught.
        program = countdown_program()
        stair = [TRUE, lower_bound(0), lower_bound(2)]
        report = check_stair(program, stair, program.state_space())
        assert not report.ok
        assert not report.steps[1].subset_ok

    def test_non_closed_intermediate_detected(self):
        # "n is even" is not closed under decrement.
        program = countdown_program()
        even = Predicate(lambda s: s["n"] % 2 == 0, name="even", support=("n",))
        report = check_stair(program, [TRUE, even, lower_bound(0)], program.state_space())
        assert not report.ok
        failing = [s for s in report.steps if not s.ok]
        assert failing

    def test_non_converging_step_detected(self):
        # The program only reaches n = 2; the final level n = 0 is never
        # established from level n <= 2.
        program = Program(
            "partial",
            [Variable("n", IntegerRangeDomain(0, 4))],
            [step_down_to(2)],
        )
        stair = [TRUE, lower_bound(2), lower_bound(0)]
        report = check_stair(program, stair, program.state_space())
        assert not report.ok
        assert report.steps[0].ok
        assert not report.steps[1].ok

    def test_spanning_tree_stair_integration(self):
        from repro.protocols.spanning_tree import (
            build_spanning_tree_program,
            spanning_tree_stair,
        )
        from repro.topology import path_graph

        graph = path_graph(3)
        program = build_spanning_tree_program(graph, 0)
        report = check_stair(
            program, spanning_tree_stair(graph, 0), program.state_space()
        )
        assert report.ok
        # depth 2 -> H_0, H_1, H_2 after TRUE.
        assert len(report.steps) == 3
