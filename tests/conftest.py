"""Shared fixtures: small programs, trees, rings, and designs."""

from __future__ import annotations

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    Variable,
)
from repro.topology import balanced_tree, chain_tree, star_tree


@pytest.fixture
def counter_program() -> Program:
    """A tiny single-variable program: a saturating counter on 0..3.

    Two actions: increment (enabled below 3) and reset (enabled at 3).
    Handy for scheduler, engine and verification unit tests.
    """
    domain = IntegerRangeDomain(0, 3)
    inc = Action(
        "inc",
        Predicate(lambda s: s["n"] < 3, name="n < 3", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
        process="p",
    )
    reset = Action(
        "reset",
        Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
        process="p",
    )
    return Program("counter", [Variable("n", domain, process="p")], [inc, reset])


@pytest.fixture
def two_var_program() -> Program:
    """Two independent counters owned by different processes.

    Used by daemon tests: the synchronous daemon can fire both processes
    in one step because their write sets are disjoint.
    """
    domain = IntegerRangeDomain(0, 2)
    actions = []
    for name in ("a", "b"):
        actions.append(
            Action(
                f"inc.{name}",
                Predicate(
                    lambda s, name=name: s[name] < 2,
                    name=f"{name} < 2",
                    support=(name,),
                ),
                Assignment({name: lambda s, name=name: s[name] + 1}),
                reads=(name,),
                process=name,
            )
        )
    variables = [
        Variable("a", domain, process="a"),
        Variable("b", domain, process="b"),
    ]
    return Program("two-counters", variables, actions)


@pytest.fixture
def chain3():
    return chain_tree(3)


@pytest.fixture
def star4():
    return star_tree(4)


@pytest.fixture
def btree7():
    return balanced_tree(2, 2)
