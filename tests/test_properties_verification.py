"""Property-based cross-validation of the verification stack.

These tests generate *random small programs* and check meta-level laws
that must relate the independent analyses:

- fairness monotonicity: convergence under no fairness implies
  convergence under weak fairness (weak fairness only removes schedules);
- worst-case duality: a finite worst-case step bound exists iff the
  program converges under an arbitrary daemon;
- Markov consistency: unfair convergence forces finite expected hitting
  times, and infinite expected time from some state forbids unfair
  convergence;
- explorer soundness: every reachable-set is closed and reproduces the
  full-space edges on its states.

Any violation would expose a bug in one of the three independently
implemented analyses, so these are the library's strongest self-checks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantitative import hitting_times
from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    Variable,
)
from repro.verification import (
    build_transition_system,
    check_convergence,
    explore,
    worst_case_convergence_steps,
)

HI = 2  # each variable ranges over 0..2
VARIABLES = ("u", "v")


@st.composite
def random_programs(draw):
    """A random program over two small variables plus a random target."""
    action_count = draw(st.integers(min_value=1, max_value=4))
    actions = []
    for index in range(action_count):
        guard_var = draw(st.sampled_from(VARIABLES))
        guard_op = draw(st.sampled_from(("eq", "ne", "lt", "ge")))
        guard_val = draw(st.integers(min_value=0, max_value=HI))
        target_var = draw(st.sampled_from(VARIABLES))
        rhs_kind = draw(st.sampled_from(("const", "copy", "inc")))
        rhs_val = draw(st.integers(min_value=0, max_value=HI))
        other = "u" if target_var == "v" else "v"

        def guard_fn(s, gv=guard_var, op=guard_op, val=guard_val):
            current = s[gv]
            if op == "eq":
                return current == val
            if op == "ne":
                return current != val
            if op == "lt":
                return current < val
            return current >= val

        if rhs_kind == "const":
            rhs = rhs_val
        elif rhs_kind == "copy":
            rhs = (lambda s, o=other: s[o])
        else:
            rhs = (lambda s, tv=target_var: (s[tv] + 1) % (HI + 1))

        actions.append(
            Action(
                f"a{index}",
                Predicate(
                    guard_fn,
                    name=f"{guard_var} {guard_op} {guard_val}",
                    support=(guard_var,),
                ),
                Assignment({target_var: rhs}),
                reads=VARIABLES,
                process=f"p{index}",
            )
        )
    program = Program(
        "random",
        [Variable(name, IntegerRangeDomain(0, HI)) for name in VARIABLES],
        actions,
    )
    target_var = draw(st.sampled_from(VARIABLES))
    target_val = draw(st.integers(min_value=0, max_value=HI))
    target = Predicate(
        lambda s, tv=target_var, val=target_val: s[tv] == val,
        name=f"{target_var} = {target_val}",
        support=(target_var,),
    )
    return program, target


@settings(max_examples=120, deadline=None)
@given(random_programs())
def test_fairness_monotonicity(case):
    program, target = case
    states = list(program.state_space())
    ts = build_transition_system(program, states)
    unfair = check_convergence(program, states, target, fairness="none", system=ts)
    weak = check_convergence(program, states, target, fairness="weak", system=ts)
    if unfair.ok:
        assert weak.ok


@settings(max_examples=120, deadline=None)
@given(random_programs())
def test_worst_case_duality(case):
    program, target = case
    states = list(program.state_space())
    ts = build_transition_system(program, states)
    unfair = check_convergence(program, states, target, fairness="none", system=ts)
    worst = worst_case_convergence_steps(program, states, target, system=ts)
    if unfair.ok:
        assert worst is not None
        assert worst <= len(states)
    if worst is None:
        assert not unfair.ok
    elif unfair.counterexample is not None:
        # A deadlock may coexist with an acyclic bad graph.
        assert unfair.counterexample.kind == "deadlock"


@settings(max_examples=100, deadline=None)
@given(random_programs())
def test_markov_consistency(case):
    program, target = case
    states = list(program.state_space())
    ts = build_transition_system(program, states)
    unfair = check_convergence(program, states, target, fairness="none", system=ts)
    hitting = hitting_times(program, states, target, system=ts)
    if unfair.ok:
        assert hitting.all_finite
        assert hitting.maximum <= len(states)  # acyclic: path-bounded
    if not hitting.all_finite:
        assert not unfair.ok


@settings(max_examples=80, deadline=None)
@given(random_programs(), st.integers(min_value=0, max_value=8))
def test_explorer_soundness(case, start_index):
    program, _ = case
    states = list(program.state_space())
    start = states[start_index % len(states)]
    reachable = explore(program, [start])
    full = build_transition_system(program, states)
    # Reachable sets are closed and edge-consistent with the full space.
    member = set(reachable.states)
    for index, state in enumerate(reachable.states):
        full_edges = {
            (name, full.states[dest])
            for name, dest in full.edges[full.index_of(state)]
        }
        local_edges = {
            (name, reachable.states[dest])
            for name, dest in reachable.edges[index]
        }
        assert local_edges == full_edges
        for _, successor in local_edges:
            assert successor in member


@settings(max_examples=60, deadline=None)
@given(random_programs())
def test_synchronous_orbit_well_formed(case):
    from repro.core import ValidationError
    from repro.verification import synchronous_orbit

    program, _ = case
    states = list(program.state_space())
    try:
        orbit = synchronous_orbit(program, states[0])
    except ValidationError:
        # Random programs may give two processes the same write target,
        # which the synchronous daemon legitimately rejects.
        return
    assert len(orbit.cycle) >= 1
    # The cycle really cycles: stepping from its last state leads to its
    # first (or the single state is a fixed point).
    from repro.scheduler import SynchronousDaemon

    daemon = SynchronousDaemon()
    last = orbit.cycle[-1]
    outcome = daemon.advance(program, last, 0)
    if outcome is None:
        assert len(orbit.cycle) == 1
    else:
        assert outcome[0] == orbit.cycle[0]
