"""Kernel v2 tests: vectorized sweeps, sharding, and engine parity.

Three layers:

- unit tests for the array primitives in :mod:`repro.kernel.sweeps`
  (closure scan, deadlock scan, Kahn acyclicity peel, frontier BFS, CSR
  fragment merging) against hand-built CSR graphs;
- differential tests pinning the vectorized full-space path (forced by
  lowering ``VECTOR_MIN_STATES``) and the sharded path bit-identical to
  the scalar packed sweep across the protocol library and crafted
  failing instances;
- engine-parity tests at the ``max_states`` boundary and pool-robustness
  tests for the ``BrokenProcessPool`` sequential fallback.
"""

import multiprocessing
import os

import pytest

from repro.core import (
    Action,
    Assignment,
    FALSE,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.core.errors import StateSpaceTooLargeError
from repro.core.predicates import TRUE
from repro.kernel import sweeps
from repro.kernel.shard import plan_shards
from repro.kernel.verify import check_tolerance_packed
from repro.protocols.library import build_case, case_names
from repro.verification.checker import _check_tolerance as check_tolerance

needs_numpy = pytest.mark.skipif(
    not sweeps.HAVE_NUMPY, reason="numpy is not installed"
)

if sweeps.HAVE_NUMPY:
    import numpy as np


# ----------------------------------------------------------------------
# Array primitives over hand-built CSR graphs
# ----------------------------------------------------------------------


def _csr(edges, n):
    """Build (offsets, targets) from {source: [targets...]}."""
    offsets = [0]
    targets = []
    for source in range(n):
        targets.extend(edges.get(source, []))
        offsets.append(len(targets))
    return (
        np.asarray(offsets, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
    )


@needs_numpy
class TestClosureScan:
    def test_closed_set(self):
        offsets, targets = _csr({0: [1], 1: [0], 2: [2]}, 3)
        mask = np.array([True, True, False])
        ok, checked, witnesses = sweeps.closure_scan(mask, offsets, targets)
        assert ok and checked == 2 and witnesses == []

    def test_failing_edges_in_order(self):
        # 0 -> 2 and 1 -> 2 leave the set {0, 1}.
        offsets, targets = _csr({0: [1, 2], 1: [2]}, 3)
        mask = np.array([True, True, False])
        ok, checked, witnesses = sweeps.closure_scan(mask, offsets, targets)
        assert not ok
        assert witnesses == [1, 2]  # CSR edge indices, edge order
        assert checked == 2

    def test_early_exit_checked_matches_scalar_walk(self):
        # Six failing edges from six sources: the scalar walk stops after
        # the fifth witness, having examined five sources.
        offsets, targets = _csr({i: [6] for i in range(6)}, 7)
        mask = np.array([True] * 6 + [False])
        ok, checked, witnesses = sweeps.closure_scan(mask, offsets, targets)
        assert not ok
        assert len(witnesses) == 5
        assert checked == 5


@needs_numpy
class TestDeadlockAndAcyclicity:
    def test_first_bad_deadlock(self):
        offsets, targets = _csr({0: [1]}, 3)
        bad = np.array([True, True, True])
        # States 1 and 2 both deadlock; the scan reports the first.
        assert sweeps.first_bad_deadlock(bad, offsets) == 1

    def test_no_deadlock(self):
        offsets, targets = _csr({0: [1], 1: [0], 2: [0]}, 3)
        assert sweeps.first_bad_deadlock(np.ones(3, dtype=bool), offsets) is None

    def test_acyclic_chain_peels(self):
        offsets, targets = _csr({0: [1], 1: [2], 2: [3]}, 4)
        bad = np.array([True, True, True, False])
        assert sweeps.bad_region_acyclic(bad, offsets, targets)

    def test_cycle_is_detected(self):
        offsets, targets = _csr({0: [1], 1: [0], 2: [0]}, 3)
        bad = np.ones(3, dtype=bool)
        assert not sweeps.bad_region_acyclic(bad, offsets, targets)

    def test_self_loop_is_a_cycle(self):
        offsets, targets = _csr({1: [1]}, 2)
        bad = np.array([False, True])
        assert not sweeps.bad_region_acyclic(bad, offsets, targets)

    def test_edges_through_good_states_do_not_count(self):
        # 0 -> 1 -> 0 would be a cycle, but 1 is good: the bad region
        # {0} only has the outgoing edge and is acyclic.
        offsets, targets = _csr({0: [1], 1: [0]}, 2)
        bad = np.array([True, False])
        assert sweeps.bad_region_acyclic(bad, offsets, targets)


@needs_numpy
class TestFrontierReach:
    def test_reaches_closure_of_roots(self):
        offsets, targets = _csr({0: [1], 1: [2], 3: [4]}, 5)
        visited = sweeps.frontier_reach(offsets, targets, [0], 5)
        assert visited.tolist() == [True, True, True, False, False]

    def test_multiple_roots_and_cycles(self):
        offsets, targets = _csr({0: [1], 1: [0], 2: [2], 4: [3]}, 5)
        visited = sweeps.frontier_reach(offsets, targets, [1, 4], 5)
        assert visited.tolist() == [True, True, False, True, True]

    def test_no_roots(self):
        offsets, targets = _csr({}, 3)
        assert not sweeps.frontier_reach(offsets, targets, [], 3).any()


class TestPlanShards:
    def test_auto_single_shard_below_threshold(self):
        assert plan_shards(1000) == [(0, 1000)]

    def test_explicit_shards_partition_contiguously(self):
        ranges = plan_shards(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_shards_clamped_to_size(self):
        assert plan_shards(2, 100) == [(0, 1), (1, 2)]
        assert plan_shards(5, 0) == [(0, 5)]

    def test_empty_space(self):
        assert plan_shards(0) == []

    def test_auto_large_space_targets_shard_size(self):
        ranges = plan_shards(1 << 23)
        assert 1 < len(ranges) <= 64
        assert ranges[0][0] == 0 and ranges[-1][1] == 1 << 23


# ----------------------------------------------------------------------
# Differential: vectorized (and sharded) vs scalar packed sweep
# ----------------------------------------------------------------------


def _force_vectorized(monkeypatch):
    monkeypatch.setattr(sweeps, "VECTOR_MIN_STATES", 0)


def _force_scalar(monkeypatch):
    monkeypatch.setattr(sweeps, "VECTOR_MIN_STATES", 1 << 62)


def _packed_report(program, invariant, fault_span, *, fairness="weak", **kw):
    return check_tolerance_packed(
        program, invariant, fault_span, fairness=fairness, **kw
    )


@needs_numpy
@pytest.mark.parametrize("name", case_names())
@pytest.mark.parametrize("fairness", ["weak", "none"])
def test_library_vectorized_matches_scalar(name, fairness, monkeypatch):
    program, invariant = build_case(name)
    _force_scalar(monkeypatch)
    scalar = _packed_report(program, invariant, TRUE, fairness=fairness)
    _force_vectorized(monkeypatch)
    vectorized = _packed_report(program, invariant, TRUE, fairness=fairness)
    sharded = _packed_report(
        program, invariant, TRUE, fairness=fairness, shards=3
    )
    assert vectorized == scalar
    assert sharded == scalar


@needs_numpy
@pytest.mark.parametrize("name", case_names())
def test_library_sharded_matches_unsharded(name, monkeypatch):
    program, invariant = build_case(name)
    _force_vectorized(monkeypatch)
    unsharded = _packed_report(program, invariant, TRUE, shards=1)
    sharded = _packed_report(program, invariant, TRUE, shards=4)
    assert sharded == unsharded


def _counter(hi=3) -> Program:
    inc = Action(
        "inc",
        Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
        process="p",
    )
    reset = Action(
        "reset",
        Predicate(lambda s: s["n"] == hi, name=f"n = {hi}", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
        process="p",
    )
    return Program(
        "counter", [Variable("n", IntegerRangeDomain(0, hi), process="p")], [inc, reset]
    )


@needs_numpy
class TestFailingVerdictsVectorized:
    """Counterexample paths: witnesses, deadlocks, cycles, open spans."""

    @pytest.fixture(autouse=True)
    def _vectorize(self, monkeypatch):
        self.monkeypatch = monkeypatch

    def _both(self, program, invariant, fault_span, *, fairness="weak"):
        _force_scalar(self.monkeypatch)
        scalar = _packed_report(
            program, invariant, fault_span, fairness=fairness
        )
        _force_vectorized(self.monkeypatch)
        vectorized = _packed_report(
            program, invariant, fault_span, fairness=fairness
        )
        sharded = _packed_report(
            program, invariant, fault_span, fairness=fairness, shards=3
        )
        assert vectorized == scalar
        assert sharded == scalar
        return scalar

    def test_s_closure_witness_order_and_checked(self):
        program = _counter()
        invariant = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        report = self._both(program, invariant, TRUE)
        assert not report.s_closure.ok
        witness = report.s_closure.witnesses[0]
        assert witness.before == State({"n": 0})
        assert witness.action_name == "inc"
        assert witness.after == State({"n": 1})

    def test_cycle_counterexamples(self):
        program = _counter()
        for fairness in ("weak", "none"):
            report = self._both(program, FALSE, TRUE, fairness=fairness)
            assert report.convergence.counterexample.kind == "cycle"

    def test_deadlock_counterexample(self):
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "dec-only", [Variable("n", IntegerRangeDomain(0, 2), process="p")], [dec]
        )
        invariant = Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",))
        report = self._both(program, invariant, TRUE)
        assert report.convergence.counterexample.kind == "deadlock"
        assert report.convergence.counterexample.states == (State({"n": 0}),)

    def test_unclosed_span_fails_without_counterexample(self):
        program = _counter()
        invariant = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))
        span = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert not report.t_closure.ok
        assert report.convergence.counterexample is None

    def test_implication_failure(self):
        program = _counter()
        invariant = Predicate(lambda s: s["n"] <= 2, name="n <= 2", support=("n",))
        span = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert not report.implication_ok

    def test_nontrivial_closed_span(self):
        # T = (n >= 1) is closed under inc/reset-to-1 and S = (n = hi).
        hi = 3
        inc = Action(
            "inc",
            Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "climber",
            [Variable("n", IntegerRangeDomain(0, hi), process="p")],
            [inc],
        )
        invariant = Predicate(lambda s: s["n"] == hi, name="n = hi", support=("n",))
        span = Predicate(lambda s: s["n"] >= 1, name="n >= 1", support=("n",))
        report = self._both(program, invariant, span)
        assert report.ok
        assert not report.stabilizing


@needs_numpy
def test_raw_successors_fall_back_to_scalar(monkeypatch):
    # The increment overflows its domain: raw successor states are
    # outside the vectorized fragment, so forcing vectorization must
    # still produce the scalar sweep's exact witnesses.
    inc = Action(
        "inc",
        Predicate(lambda s: True, name="true", support=()),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
        process="p",
    )
    program = Program(
        "overflowing", [Variable("n", IntegerRangeDomain(0, 3), process="p")], [inc]
    )
    span = Predicate(lambda s: s["n"] <= 3, name="n <= 3", support=("n",))
    _force_scalar(monkeypatch)
    scalar = _packed_report(program, FALSE, span)
    _force_vectorized(monkeypatch)
    vectorized = _packed_report(program, FALSE, span)
    assert vectorized == scalar
    assert vectorized.t_closure.witnesses[0].after == State({"n": 4})


@needs_numpy
def test_opaque_predicate_without_support_falls_back(monkeypatch):
    program = _counter()
    # No declared support and no symbolic source: the mask compiler must
    # refuse, and the scalar sweep must give the same report.
    opaque = Predicate(lambda s: s["n"] == 0, name="opaque")
    _force_scalar(monkeypatch)
    scalar = _packed_report(program, opaque, TRUE)
    _force_vectorized(monkeypatch)
    assert _packed_report(program, opaque, TRUE) == scalar


@needs_numpy
def test_sweep_events_and_counters(monkeypatch):
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracer import Tracer

    program, invariant = build_case("dijkstra-ring")
    _force_vectorized(monkeypatch)
    tracer = Tracer.buffered()
    metrics = MetricsRegistry()
    check_tolerance_packed(
        program, invariant, TRUE, shards=3, tracer=tracer, metrics=metrics
    )
    kinds = [event.kind for event in tracer.events]
    assert "kernel.sweep.vectorized" in kinds
    assert "kernel.shard.merged" in kinds
    report = metrics.report()
    assert report.counters["kernel.sweep.vectorized"] == 3
    assert report.counters["kernel.shard.merged"] == 3


# ----------------------------------------------------------------------
# Engine parity at the max_states boundary
# ----------------------------------------------------------------------


class TestMaxStatesParity:
    """Both engines agree — verdict or identical error — at the limit."""

    def test_at_exactly_max_states_both_verify(self):
        program, invariant = build_case("coloring-chain")
        size = len(list(program.state_space()))
        dict_report = check_tolerance(
            program, invariant, TRUE, engine="dict", max_states=size
        )
        packed_report = check_tolerance(
            program, invariant, TRUE, engine="packed", max_states=size
        )
        assert packed_report == dict_report
        assert packed_report.total_states == size

    def test_one_below_max_states_identical_error(self):
        program, invariant = build_case("coloring-chain")
        size = len(list(program.state_space()))
        with pytest.raises(StateSpaceTooLargeError) as dict_error:
            check_tolerance(
                program, invariant, TRUE, engine="dict", max_states=size - 1
            )
        with pytest.raises(StateSpaceTooLargeError) as packed_error:
            check_tolerance(
                program, invariant, TRUE, engine="packed", max_states=size - 1
            )
        assert str(packed_error.value) == str(dict_error.value)

    def test_service_threads_max_states_through(self):
        from repro.verification.service import VerificationService

        program, invariant = build_case("coloring-chain")
        size = len(list(program.state_space()))
        for engine in ("dict", "packed"):
            with pytest.raises(StateSpaceTooLargeError):
                VerificationService().verify_tolerance(
                    program,
                    invariant,
                    engine=engine,
                    case="boundary",
                    max_states=size - 1,
                )

    def test_raised_limit_allows_larger_spaces(self):
        # A limit above the instance is as good as the default.
        program, invariant = build_case("coloring-chain")
        report = check_tolerance(
            program, invariant, TRUE, engine="packed", max_states=10**9
        )
        assert report.ok


# ----------------------------------------------------------------------
# Pool robustness: BrokenProcessPool degrades to sequential
# ----------------------------------------------------------------------


def _die_in_worker(value):
    """Top-level pool fn: kill the worker process, succeed in-process."""
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(1)
    return value * 2


def _build_case_killing_workers(name):
    """Builder that hard-kills any pool worker that runs it."""
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(1)
    return build_case(name)


def _build_case_ignoring(arg):
    """Builder whose argument only matters for pickling."""
    return build_case("coloring-chain")


class TestBrokenPoolFallback:
    def test_run_on_pool_falls_back_sequentially(self):
        from repro.verification.parallel import run_on_pool

        assert run_on_pool(_die_in_worker, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_run_on_pool_sequential_modes(self):
        from repro.verification.parallel import run_on_pool

        assert run_on_pool(_die_in_worker, [], workers=4) == []
        assert run_on_pool(_die_in_worker, [5], workers=4) == [10]
        assert run_on_pool(_die_in_worker, [1, 2], workers=1) == [2, 4]

    def test_run_batch_falls_back_sequentially(self):
        from repro.verification.parallel import VerificationTask, run_batch

        tasks = [
            VerificationTask(
                case=f"killer-{index}",
                builder=f"{__name__}:_build_case_killing_workers",
                args=("coloring-chain",),
            )
            for index in range(2)
        ]
        records = run_batch(tasks, workers=2)
        assert len(records) == 2
        assert all(record["ok"] for record in records)
        assert all(
            record["worker"] == "MainProcess" for record in records
        )

    def test_unpicklable_probe_task_degrades(self):
        # An unpicklable first task defeats the representative probe and
        # the whole batch runs sequentially in-process.
        from repro.verification.parallel import VerificationTask, run_batch

        bad = VerificationTask(
            case="unpicklable-arg",
            builder=f"{__name__}:_build_case_ignoring",
            args=(lambda: None,),  # closures do not pickle
        )
        records = run_batch([bad], workers=2)
        assert records[0]["ok"]
        assert records[0]["worker"] == "MainProcess"

    def test_unpicklable_task_past_the_probe_degrades(self):
        # The probe only checks tasks[0]; a later unpicklable task fails
        # at submit time and the pool degrades to the sequential rerun.
        from repro.verification.parallel import VerificationTask, run_batch

        good = VerificationTask(
            case="picklable",
            builder=f"{__name__}:_build_case_ignoring",
            args=("anything",),
        )
        bad = VerificationTask(
            case="unpicklable-arg",
            builder=f"{__name__}:_build_case_ignoring",
            args=(lambda: None,),
        )
        records = run_batch([good, bad], workers=2)
        assert len(records) == 2
        assert all(record["ok"] for record in records)


# ----------------------------------------------------------------------
# Sharding plumbing: service and CLI
# ----------------------------------------------------------------------


@needs_numpy
def test_service_shards_do_not_change_record(monkeypatch):
    from repro.verification.service import VerificationService

    _force_vectorized(monkeypatch)
    program, invariant = build_case("dijkstra-ring")
    plain = VerificationService().verify_tolerance(
        program, invariant, engine="packed", case="s"
    )
    sharded = VerificationService().verify_tolerance(
        program, invariant, engine="packed", case="s", shards=4
    )
    assert sharded.report == plain.report
    ignore = ("seconds",)
    assert {k: v for k, v in sharded.record.items() if k not in ignore} == {
        k: v for k, v in plain.record.items() if k not in ignore
    }


@needs_numpy
def test_shards_hit_the_service_cache(monkeypatch, tmp_path):
    # shards= is deliberately NOT part of the cache key: a sharded run
    # re-answers an unsharded run's cached verdict and vice versa.
    from repro.verification.service import VerificationService

    _force_vectorized(monkeypatch)
    program, invariant = build_case("dijkstra-ring")
    service = VerificationService(cache_dir=str(tmp_path))
    first = service.verify_tolerance(
        program, invariant, engine="packed", case="c", shards=3
    )
    second = service.verify_tolerance(
        program, invariant, engine="packed", case="c"
    )
    assert not first.cached
    assert second.cached
