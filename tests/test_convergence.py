"""Unit tests for convergence checking with and without fairness.

The fairness-sensitive cases are the heart of this module: a cycle among
bad states kills convergence under an arbitrary daemon, but under weak
fairness only cycles that a fair computation can actually follow count —
an SCC from which some always-enabled action forcibly exits is harmless.
"""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    ValidationError,
    Variable,
)
from repro.verification import check_convergence, worst_case_convergence_steps

TARGET = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


def program_with(actions) -> Program:
    return Program("p", [Variable("n", IntegerRangeDomain(0, 5))], actions)


def dec() -> Action:
    return Action(
        "dec",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )


def spin() -> Action:
    """A self-loop available at every bad state."""
    return Action(
        "spin",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"]}),
        reads=("n",),
    )


def all_states():
    return [State({"n": v}) for v in range(6)]


class TestUnfairConvergence:
    def test_countdown_converges(self):
        result = check_convergence(
            program_with([dec()]), all_states(), TARGET, fairness="none"
        )
        assert result.ok
        assert result.bad_states == 5

    def test_self_loop_breaks_unfair_convergence(self):
        result = check_convergence(
            program_with([dec(), spin()]), all_states(), TARGET, fairness="none"
        )
        assert not result.ok
        assert result.counterexample.kind == "cycle"
        assert len(result.counterexample.states) == 1

    def test_deadlock_outside_target_detected(self):
        # dec disabled at n = 1 leaves a stuck bad state.
        lame_dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 1, name="n > 1", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
        )
        result = check_convergence(
            program_with([lame_dec]), all_states(), TARGET, fairness="none"
        )
        assert not result.ok
        assert result.counterexample.kind == "deadlock"
        assert result.counterexample.states[0] == State({"n": 1})


class TestWeakFairConvergence:
    def test_spin_plus_dec_converges_weakly_fair(self):
        # The spin cycle is unfair: dec is enabled at every state of the
        # cycle but all its transitions leave it, so weak fairness forces
        # the exit.
        result = check_convergence(
            program_with([dec(), spin()]), all_states(), TARGET, fairness="weak"
        )
        assert result.ok

    def test_fair_oscillation_detected(self):
        # Two actions alternating between 1 and 2: each is executed inside
        # the cycle, so the cycle is fair and convergence fails.
        up = Action(
            "up",
            Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",)),
            Assignment({"n": 2}),
            reads=("n",),
        )
        down = Action(
            "down",
            Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",)),
            Assignment({"n": 1}),
            reads=("n",),
        )
        escape = Action(
            "escape",
            Predicate(lambda s: s["n"] >= 3, name="n >= 3", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
        )
        result = check_convergence(
            program_with([up, down, escape]), all_states(), TARGET, fairness="weak"
        )
        assert not result.ok
        cycle_values = {s["n"] for s in result.counterexample.states}
        assert cycle_values == {1, 2}

    def test_oscillation_with_always_enabled_exit_converges(self):
        # Same oscillation, but an exit action enabled at BOTH cycle
        # states: weak fairness must eventually take it.
        up = Action(
            "up",
            Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",)),
            Assignment({"n": 2}),
            reads=("n",),
        )
        down = Action(
            "down",
            Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",)),
            Assignment({"n": 1}),
            reads=("n",),
        )
        exit_both = Action(
            "exit",
            Predicate(lambda s: s["n"] in (1, 2), name="n in {1,2}", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
        )
        drain = Action(
            "drain",
            Predicate(lambda s: s["n"] >= 3, name="n >= 3", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
        )
        result = check_convergence(
            program_with([up, down, exit_both, drain]),
            all_states(),
            TARGET,
            fairness="weak",
        )
        assert result.ok

    def test_weak_fairness_deadlock_still_fails(self):
        result = check_convergence(
            program_with([]), all_states(), TARGET, fairness="weak"
        )
        assert not result.ok
        assert result.counterexample.kind == "deadlock"


def _assert_followable_cycle(program, states):
    """The listed states must form an actual cycle of the program: each
    state steps to the next by some enabled action, and the last steps
    back to the first."""
    assert states, "a cycle counterexample cannot be empty"
    for before, after in zip(states, states[1:] + (states[0],)):
        stepped = any(
            action.enabled(before) and action.effect.apply(before) == after
            for action in program.actions
        )
        assert stepped, f"no action steps {dict(before)} -> {dict(after)}"


class TestCycleCounterexampleShape:
    """``describe()`` claims a cycle, so the states must actually be one."""

    def _figure_eight_actions(self):
        # Bad SCC {1, 2, 3} shaped like a figure eight: 1<->2 and 1<->3.
        # The component is strongly connected but is NOT itself a cycle
        # (no single cycle visits all three states), so emitting the
        # whole SCC would not be followable.
        def hop(name, source, target):
            return Action(
                name,
                Predicate(
                    lambda s, source=source: s["n"] == source,
                    name=f"n = {source}",
                    support=("n",),
                ),
                Assignment({"n": target}),
                reads=("n",),
            )

        return [hop("a12", 1, 2), hop("a21", 2, 1), hop("a13", 1, 3), hop("a31", 3, 1)]

    @pytest.mark.parametrize("fairness", ["weak", "none"])
    def test_figure_eight_emits_followable_cycle(self, fairness):
        program = program_with(self._figure_eight_actions())
        states = [State({"n": v}) for v in (0, 1, 2, 3)]
        result = check_convergence(program, states, TARGET, fairness=fairness)
        assert not result.ok
        ce = result.counterexample
        assert ce.kind == "cycle"
        values = {s["n"] for s in ce.states}
        assert values <= {1, 2, 3}
        _assert_followable_cycle(program, ce.states)

    def test_always_enabled_trap_emits_followable_cycle(self):
        # up/down oscillation plus a self-loop everywhere: "loop" is
        # always enabled and internal, so the trap is fair; the emitted
        # states must still chain into a cycle.
        up = Action(
            "up",
            Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",)),
            Assignment({"n": 2}),
            reads=("n",),
        )
        down = Action(
            "down",
            Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",)),
            Assignment({"n": 1}),
            reads=("n",),
        )
        loop = Action(
            "loop",
            Predicate(lambda s: s["n"] in (1, 2), name="n in {1,2}", support=("n",)),
            Assignment({"n": lambda s: s["n"]}),
            reads=("n",),
        )
        program = program_with([up, down, loop])
        states = [State({"n": v}) for v in (0, 1, 2)]
        result = check_convergence(program, states, TARGET, fairness="weak")
        assert not result.ok
        assert result.counterexample.kind == "cycle"
        _assert_followable_cycle(program, result.counterexample.states)

    def test_both_engines_emit_the_same_followable_cycle(self):
        from repro.core import IntegerRangeDomain, Program, Variable
        from repro.core.predicates import TRUE
        from repro.verification.checker import _check_tolerance

        # Restrict the domain so the full space is exactly the span;
        # n = 0 satisfies the invariant, so the figure eight is the
        # whole bad region and the counterexample must be a cycle.
        program = Program(
            "figure-eight",
            [Variable("n", IntegerRangeDomain(0, 3))],
            self._figure_eight_actions(),
        )
        reports = [
            _check_tolerance(program, TARGET, TRUE, fairness="weak", engine=engine)
            for engine in ("dict", "packed")
        ]
        assert reports[0] == reports[1]
        ce = reports[0].convergence.counterexample
        assert ce is not None and ce.kind == "cycle"
        _assert_followable_cycle(program, ce.states)


class TestValidation:
    def test_unknown_fairness_rejected(self):
        with pytest.raises(ValidationError, match="fairness"):
            check_convergence(
                program_with([dec()]), all_states(), TARGET, fairness="strong"
            )

    def test_non_closed_span_rejected(self):
        result_states = [State({"n": v}) for v in (0, 2, 3)]  # 1 missing
        with pytest.raises(ValidationError, match="not closed"):
            check_convergence(
                program_with([dec()]), result_states, TARGET, fairness="none"
            )


class TestWorstCase:
    def test_countdown_worst_case(self):
        steps = worst_case_convergence_steps(
            program_with([dec()]), all_states(), TARGET
        )
        assert steps == 5

    def test_cycle_makes_worst_case_unbounded(self):
        steps = worst_case_convergence_steps(
            program_with([dec(), spin()]), all_states(), TARGET
        )
        assert steps is None

    def test_already_converged_is_zero(self):
        steps = worst_case_convergence_steps(
            program_with([dec()]), [State({"n": 0})], TARGET
        )
        assert steps == 0

    def test_branching_takes_longest_path(self):
        # From n, either jump straight to 0 or step down by 1: the
        # adversary can force n steps.
        jump = Action(
            "jump",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
        )
        steps = worst_case_convergence_steps(
            program_with([dec(), jump]), all_states(), TARGET
        )
        assert steps == 5
