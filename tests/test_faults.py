"""Unit tests for the fault model, injectors and scenarios."""

import random

import pytest

from repro.core import State
from repro.faults import (
    Fault,
    LambdaFault,
    NoFaults,
    ProbabilisticFaults,
    ProcessCorruption,
    ScheduledFaults,
    TransientCorruption,
    corrupt_everything,
    corrupt_processes,
    corrupt_random_processes,
    corrupt_variables,
)


class TestTransientCorruption:
    def test_targets_only_listed_variables(self, two_var_program):
        fault = corrupt_variables(two_var_program, ["a"])
        state = State({"a": 0, "b": 0})
        seen_changes = set()
        rng = random.Random(0)
        for _ in range(30):
            after = fault.apply(state, rng)
            assert after["b"] == 0
            assert 0 <= after["a"] <= 2
            seen_changes.add(after["a"])
        assert len(seen_changes) > 1  # actually randomizes

    def test_corrupt_everything_covers_all(self, two_var_program):
        fault = corrupt_everything(two_var_program)
        assert fault.name == "corrupt-everything"
        after = fault.apply(State({"a": 0, "b": 0}), random.Random(1))
        assert set(after) == {"a", "b"}

    def test_values_stay_in_domain(self, two_var_program):
        fault = corrupt_everything(two_var_program)
        rng = random.Random(2)
        for _ in range(40):
            after = fault.apply(State({"a": 0, "b": 0}), rng)
            assert 0 <= after["a"] <= 2 and 0 <= after["b"] <= 2

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            TransientCorruption([])


class TestProcessCorruption:
    def test_corrupts_owned_variables_only(self, two_var_program):
        fault = ProcessCorruption(two_var_program, "a")
        after = fault.apply(State({"a": 0, "b": 1}), random.Random(3))
        assert after["b"] == 1

    def test_unknown_process_rejected(self, two_var_program):
        with pytest.raises(ValueError, match="owns no variables"):
            ProcessCorruption(two_var_program, "ghost")

    def test_corrupt_processes_builder(self, two_var_program):
        faults = corrupt_processes(two_var_program, ["a", "b"])
        assert len(faults) == 2
        assert all(isinstance(f, ProcessCorruption) for f in faults)


class TestRandomProcesses:
    def test_count_respected(self, two_var_program):
        fault = corrupt_random_processes(two_var_program, 1)
        state = State({"a": 0, "b": 0})
        rng = random.Random(4)
        for _ in range(20):
            after = fault.apply(state, rng)
            changed = [name for name in state if after[name] != state[name]]
            # At most one process corrupted (its value may coincide).
            assert len(changed) <= 1

    def test_bad_count_rejected(self, two_var_program):
        with pytest.raises(ValueError):
            corrupt_random_processes(two_var_program, 0)
        with pytest.raises(ValueError):
            corrupt_random_processes(two_var_program, 3)


class TestLambdaFault:
    def test_applies_function(self):
        fault = LambdaFault("zero-a", lambda s, rng: s.update({"a": 0}))
        assert fault.apply(State({"a": 5}), random.Random(0)) == State({"a": 0})


class TestScenarios:
    def test_no_faults(self):
        scenario = NoFaults()
        assert scenario.faults_for_step(0, random.Random(0)) == ()
        assert scenario.last_scheduled_step() == -1

    def test_scheduled_faults(self):
        fault = LambdaFault("f", lambda s, rng: s)
        scenario = ScheduledFaults({3: fault, 7: [fault, fault]})
        rng = random.Random(0)
        assert scenario.faults_for_step(0, rng) == ()
        assert len(scenario.faults_for_step(3, rng)) == 1
        assert len(scenario.faults_for_step(7, rng)) == 2
        assert scenario.last_scheduled_step() == 7

    def test_probabilistic_rate_zero_and_one(self):
        fault = LambdaFault("f", lambda s, rng: s)
        never = ProbabilisticFaults([fault], rate=0.0)
        always = ProbabilisticFaults([fault], rate=1.0)
        rng = random.Random(0)
        assert all(not never.faults_for_step(i, rng) for i in range(10))
        assert all(len(always.faults_for_step(i, rng)) == 1 for i in range(10))

    def test_probabilistic_until_step(self):
        fault = LambdaFault("f", lambda s, rng: s)
        scenario = ProbabilisticFaults([fault], rate=1.0, until_step=5)
        rng = random.Random(0)
        assert scenario.faults_for_step(5, rng)
        assert not scenario.faults_for_step(6, rng)
        assert scenario.last_scheduled_step() == 5

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticFaults([], rate=1.5)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            Fault("abstract").apply(State({}), random.Random(0))
