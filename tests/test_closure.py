"""Unit tests for closure checking."""

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.verification import check_closure


def modular_counter(k: int = 4) -> Program:
    inc = Action(
        "inc",
        Predicate(lambda s: True, name="true", support=()),
        Assignment({"n": lambda s: (s["n"] + 1) % k}),
        reads=("n",),
    )
    return Program("mod-counter", [Variable("n", IntegerRangeDomain(0, k - 1))], [inc])


class TestCheckClosure:
    def test_whole_space_is_closed(self):
        program = modular_counter()
        everything = Predicate(lambda s: True, name="true", support=())
        result = check_closure(everything, program, program.state_space())
        assert result.ok
        assert result.checked == 4

    def test_non_closed_predicate_reports_witness(self):
        program = modular_counter()
        small = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        result = check_closure(small, program, program.state_space())
        assert not result.ok
        witness = result.witnesses[0]
        assert witness.before == State({"n": 1})
        assert witness.after == State({"n": 2})
        assert witness.action_name == "inc"
        assert "inc" in witness.describe()

    def test_only_holding_states_expanded(self):
        program = modular_counter()
        exact = Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",))
        result = check_closure(exact, program, program.state_space())
        assert result.checked == 1

    def test_empty_predicate_trivially_closed(self):
        program = modular_counter()
        from repro.core import FALSE

        result = check_closure(FALSE, program, program.state_space())
        assert result.ok
        assert result.checked == 0

    def test_witness_cap(self):
        program = modular_counter(8)
        # "n is even" is violated by every step from an even state.
        even = Predicate(lambda s: s["n"] % 2 == 0, name="even", support=("n",))
        result = check_closure(even, program, program.state_space(), max_witnesses=2)
        assert not result.ok
        assert len(result.witnesses) == 2

    def test_describe(self):
        program = modular_counter()
        small = Predicate(lambda s: s["n"] <= 1, name="n <= 1", support=("n",))
        text = check_closure(small, program, program.state_space()).describe()
        assert "NOT closed" in text

    def test_invariant_of_diffusing_program_closed(self, chain3):
        from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant

        design = build_diffusing_design(chain3)
        result = check_closure(
            diffusing_invariant(chain3),
            design.program,
            design.program.state_space(),
        )
        assert result.ok
