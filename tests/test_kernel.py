"""Unit tests for the packed exploration kernel (:mod:`repro.kernel`)."""

import pickle

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerDomain,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    StateSpaceTooLargeError,
    UnknownStateError,
    Variable,
)
from repro.core.expr import C, V, ite, min_
from repro.core.state import enumerate_states
from repro.kernel import (
    DigitStateView,
    PackedUnsupported,
    StateCodec,
    action_supports_ok,
    build_packed_system,
    compile_expr,
    compile_predicate_fn,
    compile_program,
    explore_packed,
    kernel_supported,
)
from repro.kernel.compile import probe_battery
from repro.verification.explorer import build_transition_system, explore


def _two_var_program() -> Program:
    """Two coupled counters: a on 0..2, b on 0..3."""
    bump_a = Action(
        "bump.a",
        Predicate(lambda s: s["a"] < s["b"], name="a < b", support=("a", "b")),
        Assignment({"a": lambda s: s["a"] + 1}),
        reads=("a", "b"),
        process="p",
    )
    reset_b = Action(
        "reset.b",
        Predicate(lambda s: s["b"] == 3, name="b = 3", support=("b",)),
        Assignment({"b": 0}),
        reads=("b",),
        process="q",
    )
    return Program(
        "two-var",
        [
            Variable("a", IntegerRangeDomain(0, 2), process="p"),
            Variable("b", IntegerRangeDomain(0, 3), process="q"),
        ],
        [bump_a, reset_b],
    )


class TestStateCodec:
    def test_codes_enumerate_in_state_space_order(self):
        program = _two_var_program()
        codec = StateCodec.for_program(program)
        states = list(enumerate_states(program.variables.values()))
        assert codec.size == len(states) == 12
        for k, state in enumerate(states):
            assert codec.encode_state(state) == k
            assert codec.decode_state(k) == state

    def test_decode_digits_round_trip(self):
        codec = StateCodec.for_program(_two_var_program())
        for code in range(codec.size):
            digits = codec.decode_digits(code)
            assert sum(d * w for d, w in zip(digits, codec.weights)) == code

    def test_infinite_domain_unsupported(self):
        program = Program(
            "unbounded",
            [Variable("n", IntegerDomain(), process="p")],
            [],
        )
        assert not kernel_supported(program)
        with pytest.raises(PackedUnsupported):
            StateCodec.for_program(program)

    def test_out_of_domain_state_unsupported(self):
        codec = StateCodec.for_program(_two_var_program())
        with pytest.raises(PackedUnsupported):
            codec.encode_state(State({"a": 99, "b": 0}))
        with pytest.raises(PackedUnsupported):
            codec.encode_state(State({"a": 0}))

    def test_pack_codes_round_trip(self):
        codec = StateCodec.for_program(_two_var_program())
        codes = [0, 5, 11, 3]
        assert list(codec.unpack_codes(codec.pack_codes(codes))) == codes


class TestCompileExpr:
    def test_expr_matches_state_evaluation(self):
        codec = StateCodec.for_program(_two_var_program())
        expression = ite(V("a") < V("b"), V("a") + 1, min_(V("b"), C(2)))
        compiled = compile_expr(expression, codec)
        assert compiled is not None
        for code in range(codec.size):
            state = codec.decode_state(code)
            assert compiled(codec.decode_values(code)) == expression(state)

    def test_unknown_variable_compiles_to_none(self):
        codec = StateCodec.for_program(_two_var_program())
        assert compile_expr(V("missing") + 1, codec) is None

    def test_opaque_predicate_evaluates_through_view(self):
        codec = StateCodec.for_program(_two_var_program())
        view = DigitStateView(codec)
        predicate = Predicate(
            lambda s: s["a"] + s["b"] >= 3, name="a+b >= 3", support=("a", "b")
        )
        evaluate = compile_predicate_fn(predicate, codec, view)
        for code in range(codec.size):
            state = codec.decode_state(code)
            assert evaluate(codec.decode_values(code)) == predicate(state)

    def test_view_raises_like_state_on_unknown_name(self):
        codec = StateCodec.for_program(_two_var_program())
        view = DigitStateView(codec)
        view.values = codec.decode_values(0)
        from repro.core.errors import UnknownVariableError

        with pytest.raises(UnknownVariableError):
            view["missing"]


class TestRWGate:
    def test_honest_declarations_pass(self):
        program = _two_var_program()
        battery = probe_battery(program)
        for action in program.actions:
            assert action_supports_ok(action, battery)

    def test_undeclared_read_fails_gate(self):
        # The guard declares no support, so only probe inference can
        # notice it actually consults b.
        lying = Action(
            "lying",
            Predicate(lambda s: s["b"] == 0, name="b = 0"),
            Assignment({"a": 0}),
            reads=("a",),
            process="p",
        )
        program = Program(
            "liar",
            [
                Variable("a", IntegerRangeDomain(0, 2), process="p"),
                Variable("b", IntegerRangeDomain(0, 3), process="p"),
            ],
            [lying],
        )
        assert not action_supports_ok(lying, probe_battery(program))
        # The kernel falls back to per-state evaluation, never the table.
        kernel = compile_program(program)
        assert kernel.actions[0].mode == "fallback"

    def test_fallback_action_still_correct(self):
        lying = Action(
            "lying",
            Predicate(lambda s: s["b"] == 0, name="b = 0"),
            Assignment({"a": 0}),
            reads=("a",),
            process="p",
        )
        program = Program(
            "liar",
            [
                Variable("a", IntegerRangeDomain(0, 2), process="p"),
                Variable("b", IntegerRangeDomain(0, 3), process="p"),
            ],
            [lying],
        )
        states = list(program.state_space())
        packed = build_packed_system(program, states)
        plain = build_transition_system(program, states, engine="dict")
        assert packed.edges == plain.edges


class TestCompiledSuccessors:
    def test_successors_match_dict_engine(self):
        program = _two_var_program()
        kernel = compile_program(program)
        codec = kernel.codec
        for code, digits, values in kernel.iter_space():
            state = codec.decode_state(code)
            for action, compiled in zip(program.actions, kernel.actions):
                successor = compiled.successor(code, list(digits), list(values))
                if not action.guard(state):
                    assert successor is None
                    continue
                expected = action.effect.apply(state)
                if isinstance(successor, State):
                    # The written value left its domain (a = 3): the raw
                    # dict-engine State is reported instead of a code.
                    assert successor == expected
                else:
                    assert successor == codec.encode_state(expected)

    def test_kernel_cached_per_program(self):
        program = _two_var_program()
        assert compile_program(program) is compile_program(program)


class TestPackedTransitionSystem:
    def test_matches_dict_system(self):
        program = _two_var_program()
        states = list(program.state_space())
        packed = build_packed_system(program, states)
        plain = build_transition_system(program, states, engine="dict")
        assert len(packed) == len(plain)
        assert list(packed.states) == list(plain.states)
        assert packed.edges == plain.edges
        assert packed.escapes == plain.escapes
        for position in range(len(plain)):
            assert packed.successors(position) == plain.successors(position)
            assert packed.index_of(states[position]) == plain.index_of(
                states[position]
            )

    def test_escapes_match_on_non_closed_subset(self):
        program = _two_var_program()
        subset = [s for s in program.state_space() if s["a"] < 2]
        packed = build_packed_system(program, subset)
        plain = build_transition_system(program, subset, engine="dict")
        assert packed.escapes == plain.escapes
        assert packed.edges == plain.edges

    def test_index_of_unknown_state_message_parity(self):
        program = _two_var_program()
        states = list(program.state_space())
        packed = build_packed_system(program, states)
        plain = build_transition_system(program, states, engine="dict")
        missing = State({"a": 99, "b": 99})
        with pytest.raises(UnknownStateError) as packed_error:
            packed.index_of(missing)
        with pytest.raises(UnknownStateError) as plain_error:
            plain.index_of(missing)
        assert str(packed_error.value) == str(plain_error.value)

    def test_satisfying_returns_memoized_tuple(self):
        program = _two_var_program()
        states = list(program.state_space())
        predicate = Predicate(lambda s: s["a"] == 0, name="a = 0", support=("a",))
        packed = build_packed_system(program, states)
        plain = build_transition_system(program, states, engine="dict")
        assert isinstance(packed.satisfying(predicate), tuple)
        assert packed.satisfying(predicate) == plain.satisfying(predicate)
        assert packed.satisfying(predicate) is packed.satisfying(predicate)
        assert plain.satisfying(predicate) is plain.satisfying(predicate)

    def test_pickle_round_trip(self):
        program = _two_var_program()
        states = list(program.state_space())
        packed = build_packed_system(program, states)
        clone = pickle.loads(pickle.dumps(packed))
        assert list(clone.states) == list(packed.states)
        assert clone.edges == packed.edges
        assert clone.escapes == packed.escapes


class TestExplorePacked:
    def test_matches_dict_explore(self):
        program = _two_var_program()
        roots = [State({"a": 0, "b": 0})]
        packed = explore_packed(program, roots)
        plain = explore(program, roots, engine="dict")
        assert list(packed.states) == list(plain.states)
        assert packed.edges == plain.edges

    def test_max_states_message_parity(self):
        program = _two_var_program()
        roots = [State({"a": 0, "b": 3})]
        with pytest.raises(StateSpaceTooLargeError) as packed_error:
            explore_packed(program, roots, max_states=2)
        with pytest.raises(StateSpaceTooLargeError) as plain_error:
            explore(program, roots, max_states=2, engine="dict")
        assert str(packed_error.value) == str(plain_error.value)

    def test_out_of_domain_successor_unsupported(self):
        overflow = Action(
            "overflow",
            Predicate(lambda s: True, name="true", support=()),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "overflowing",
            [Variable("n", IntegerRangeDomain(0, 2), process="p")],
            [overflow],
        )
        with pytest.raises(PackedUnsupported):
            explore_packed(program, [State({"n": 2})])


class TestEngineDispatch:
    def test_auto_picks_packed_for_finite_programs(self):
        from repro.kernel.engine import PackedTransitionSystem

        program = _two_var_program()
        states = list(program.state_space())
        assert isinstance(
            build_transition_system(program, states), PackedTransitionSystem
        )
        assert isinstance(
            build_transition_system(program, states, engine="packed"),
            PackedTransitionSystem,
        )
        assert not isinstance(
            build_transition_system(program, states, engine="dict"),
            PackedTransitionSystem,
        )

    def test_auto_falls_back_on_infinite_domains(self):
        from repro.kernel.engine import PackedTransitionSystem

        count = Action(
            "count",
            Predicate(lambda s: s["n"] < 3, name="n < 3", support=("n",)),
            Assignment({"n": lambda s: s["n"] + 1}),
            reads=("n",),
            process="p",
        )
        program = Program(
            "unbounded",
            [Variable("n", IntegerDomain(), process="p")],
            [count],
        )
        states = [State({"n": v}) for v in range(4)]
        system = build_transition_system(program, states)
        assert not isinstance(system, PackedTransitionSystem)
        with pytest.raises(PackedUnsupported):
            build_transition_system(program, states, engine="packed")

    def test_unknown_engine_rejected(self):
        from repro.core.errors import ValidationError

        program = _two_var_program()
        with pytest.raises(ValidationError, match="unknown engine"):
            build_transition_system(program, [], engine="vectorized")
