"""Tests for the extension protocols: coloring, leader election,
spanning tree, and maximal matching."""

import random

import pytest

from repro.core import TRUE
from repro.protocols.coloring import (
    build_coloring_design,
    coloring_invariant,
    is_proper_coloring,
)
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
    leader_var,
)
from repro.protocols.matching import (
    build_matching_program,
    matched_pairs,
    matching_invariant,
)
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    derived_parent,
    dist_var,
    spanning_tree_invariant,
    spanning_tree_stair,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import (
    Graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    random_tree,
)
from repro.verification import check_stair
from repro.verification.checker import _check_tolerance as check_tolerance


class TestColoring:
    @pytest.mark.parametrize("k", [2, 3])
    def test_theorem1_certificate(self, k, btree7):
        design = build_coloring_design(btree7, k=k)
        states = list(design.program.state_space())
        report = design.validate(states)
        assert report.ok
        assert "Theorem 1" in report.selected.theorem

    def test_exhaustively_stabilizing(self, chain3):
        design = build_coloring_design(chain3, k=2)
        report = check_tolerance(
            design.program,
            coloring_invariant(chain3),
            TRUE,
            design.program.state_space(),
        )
        assert report.ok and report.stabilizing

    def test_silent_once_proper(self, btree7):
        design = build_coloring_design(btree7, k=3)
        program = design.program
        rng = random.Random(1)
        result = run(
            program, program.random_state(rng), FirstEnabledScheduler(), max_steps=500
        )
        assert result.terminated
        assert is_proper_coloring(btree7, result.computation.final_state)

    def test_large_tree_simulation(self):
        tree = random_tree(40, seed=3)
        design = build_coloring_design(tree, k=2)
        program = design.program
        invariant = coloring_invariant(tree)
        rng = random.Random(2)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(7),
            max_steps=5000,
            target=invariant,
            stop_on_target=True,
        )
        assert result.stabilized

    def test_parameter_validation(self, chain3):
        with pytest.raises(ValueError):
            build_coloring_design(chain3, k=1)


class TestLeaderElection:
    def test_theorem2_certificate_with_self_loop(self, star4):
        design = build_leader_election_design(star4)
        graph = design.graph
        assert graph.classification() == "self-looping"
        assert any(edge.is_self_loop for edge in graph.edges)
        states = list(design.program.state_space())
        report = design.validate(states)
        assert report.ok
        assert "Theorem 2" in report.selected.theorem

    def test_exhaustively_stabilizing(self, chain3):
        design = build_leader_election_design(chain3)
        report = check_tolerance(
            design.program,
            election_invariant(chain3),
            TRUE,
            design.program.state_space(),
        )
        assert report.ok

    def test_everyone_learns_the_root(self):
        tree = random_tree(25, seed=9)
        design = build_leader_election_design(tree)
        program = design.program
        rng = random.Random(4)
        result = run(
            program, program.random_state(rng), RandomScheduler(0), max_steps=5000,
            target=election_invariant(tree), stop_on_target=True,
        )
        assert result.stabilized
        final = result.computation.final_state
        assert all(final[leader_var(j)] == tree.root for j in tree.nodes)


class TestSpanningTree:
    def test_stair_certificate(self):
        graph = random_connected_graph(5, 2, seed=1)
        program = build_spanning_tree_program(graph, 0)
        report = check_stair(
            program, spanning_tree_stair(graph, 0), program.state_space()
        )
        assert report.ok, report.describe()

    def test_exhaustively_stabilizing_weak_and_unfair(self):
        graph = path_graph(4)
        program = build_spanning_tree_program(graph, 0)
        states = list(program.state_space())
        invariant = spanning_tree_invariant(graph, 0)
        assert check_tolerance(program, invariant, TRUE, states, fairness="weak").ok
        assert check_tolerance(program, invariant, TRUE, states, fairness="none").ok

    def test_derived_parents_form_bfs_tree(self):
        graph = random_connected_graph(12, 4, seed=8)
        program = build_spanning_tree_program(graph, 0)
        rng = random.Random(5)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(2),
            max_steps=8000,
            target=spanning_tree_invariant(graph, 0),
            stop_on_target=True,
        )
        assert result.stabilized
        final = result.computation.final_state
        levels = graph.bfs_levels(0)
        for node in graph.nodes:
            assert final[dist_var(node)] == levels[node]
            parent = derived_parent(graph, 0, final, node)
            if node == 0:
                assert parent is None
            else:
                assert levels[parent] == levels[node] - 1

    def test_disconnected_graph_rejected(self):
        graph = Graph([0, 1, 2], [(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            build_spanning_tree_program(graph, 0)


class TestMatching:
    @pytest.mark.parametrize(
        "make_graph",
        [lambda: path_graph(4), lambda: cycle_graph(4), lambda: star_tree_graph()],
        ids=["path4", "cycle4", "star4"],
    )
    def test_exhaustively_stabilizing(self, make_graph):
        graph = make_graph()
        program = build_matching_program(graph)
        report = check_tolerance(
            program, matching_invariant(graph), TRUE, program.state_space()
        )
        assert report.ok

    def test_converges_under_unfair_central_daemon(self):
        # Hsu-Huang's variant-function proof needs no fairness.
        graph = path_graph(4)
        program = build_matching_program(graph)
        report = check_tolerance(
            program, matching_invariant(graph), TRUE, program.state_space(),
            fairness="none",
        )
        assert report.ok

    def test_matching_is_maximal_and_symmetric(self):
        graph = random_connected_graph(10, 5, seed=12)
        program = build_matching_program(graph)
        rng = random.Random(6)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(1),
            max_steps=5000,
            target=matching_invariant(graph),
            stop_on_target=True,
        )
        assert result.stabilized
        final = result.computation.final_state
        pairs = matched_pairs(graph, final)
        matched_nodes = {node for pair in pairs for node in pair}
        # Maximality: every edge touches a matched node.
        for u, v in graph.edges():
            assert u in matched_nodes or v in matched_nodes

    def test_pairs_disjoint(self):
        graph = cycle_graph(6)
        program = build_matching_program(graph)
        rng = random.Random(7)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(9),
            max_steps=3000,
            target=matching_invariant(graph),
            stop_on_target=True,
        )
        assert result.stabilized
        pairs = matched_pairs(graph, result.computation.final_state)
        nodes = [node for pair in pairs for node in pair]
        assert len(nodes) == len(set(nodes))


def star_tree_graph():
    """The star on 4 nodes as an undirected graph."""
    return Graph(range(4), [(0, j) for j in range(1, 4)])
