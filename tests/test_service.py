"""Tests for recurrent-class service analysis."""

import pytest

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.verification import check_service, recurrent_classes


class TestRecurrentClasses:
    def test_cycle_is_single_recurrent_class(self, counter_program):
        states = list(counter_program.state_space())
        classes = recurrent_classes(counter_program, states)
        assert len(classes) == 1
        assert len(classes[0].states) == 4
        assert classes[0].served == frozenset({"p"})

    def test_transient_states_excluded(self):
        # 2 -> 1 -> 0 with a self-loop at 0: only {0} is recurrent.
        domain = IntegerRangeDomain(0, 2)
        dec = Action(
            "dec",
            Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
            process="p",
        )
        spin = Action(
            "spin",
            Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
            process="q",
        )
        program = Program("drain", [Variable("n", domain, process="p")], [dec, spin])
        classes = recurrent_classes(program, program.state_space())
        assert len(classes) == 1
        assert classes[0].states == (State({"n": 0}),)
        assert classes[0].served == frozenset({"q"})

    def test_terminal_states_are_recurrent_singletons(self):
        program = Program(
            "silent", [Variable("n", IntegerRangeDomain(0, 1), process="p")], []
        )
        classes = recurrent_classes(program, program.state_space())
        assert len(classes) == 2
        assert all(cls.served == frozenset() for cls in classes)

    def test_non_closed_set_rejected(self, counter_program):
        with pytest.raises(ValueError, match="not closed"):
            recurrent_classes(counter_program, [State({"n": 0})])


class TestCheckService:
    def test_token_ring_serves_every_node(self):
        from repro.protocols.token_ring import build_dijkstra_ring

        program, spec = build_dijkstra_ring(4, 4)
        legit = [s for s in program.state_space() if spec(s)]
        report = check_service(program, legit)
        assert report.ok
        assert "every process served" in report.describe()

    def test_four_state_line_serves_every_machine(self):
        from repro.protocols.four_state_ring import (
            build_four_state_line,
            four_state_invariant,
        )

        program = build_four_state_line(4)
        invariant = four_state_invariant(program)
        legit = [s for s in program.state_space() if invariant(s)]
        report = check_service(program, legit)
        assert report.ok

    def test_diffusing_wave_serves_every_node(self, chain3):
        from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant

        design = build_diffusing_design(chain3)
        invariant = diffusing_invariant(chain3)
        legit = [s for s in design.program.state_space() if invariant(s)]
        report = check_service(design.program, legit)
        assert report.ok

    def test_silent_protocol_reports_deficiency(self, chain3):
        # The coloring protocol is silent inside S: no process acts, so
        # "service" in the privilege sense is (correctly) absent.
        from repro.protocols.coloring import build_coloring_design, coloring_invariant

        design = build_coloring_design(chain3, k=2)
        invariant = coloring_invariant(chain3)
        legit = [s for s in design.program.state_space() if invariant(s)]
        report = check_service(design.program, legit)
        assert not report.ok
        assert report.deficiencies
        assert "DEFICIENT" in report.describe()

    def test_required_subset(self, counter_program):
        states = list(counter_program.state_space())
        report = check_service(counter_program, states, processes=["p"])
        assert report.ok
        report = check_service(counter_program, states, processes=["p", "ghost"])
        assert not report.ok
