"""Targeted tests for individual Theorem 3 conditions on crafted designs."""

from repro.core import (
    Action,
    Assignment,
    CandidateTriple,
    Constraint,
    ConvergenceBinding,
    GraphNode,
    IntegerDomain,
    Predicate,
    Program,
    State,
    Variable,
    validate_theorem3,
)

DOMAIN = IntegerDomain(sample_lo=-2, sample_hi=2)


def states(bound=2):
    return [
        State({"a": x, "b": y})
        for x in range(-bound, bound + 1)
        for y in range(-bound, bound + 1)
    ]


def nodes():
    return [GraphNode("a", frozenset({"a"})), GraphNode("b", frozenset({"b"}))]


def variables():
    return [Variable("a", DOMAIN, process="a"), Variable("b", DOMAIN, process="b")]


def constraint(name, fn, support):
    return Constraint(name=name, predicate=Predicate(fn, name=name, support=support))


def make_candidate(constraints, closure_actions=()):
    conj = Predicate(
        lambda s: all(c.predicate(s) for c in constraints),
        name="S",
        support=("a", "b"),
    )
    return CandidateTriple(
        program=Program("crafted", variables(), closure_actions),
        invariant=conj,
        constraints=tuple(constraints),
    )


class TestValidLayeredDesign:
    def test_two_clean_layers_validate(self):
        c_a = constraint("A", lambda s: s["a"] >= 0, ("a",))
        c_b = constraint("B", lambda s: s["b"] == s["a"], ("a", "b"))
        fix_a = Action(
            "fix-a",
            (~c_a.predicate).renamed("a < 0"),
            Assignment({"a": 0}),
            reads=("a",),
            process="a",
        )
        fix_b = Action(
            "fix-b",
            (~c_b.predicate).renamed("b != a"),
            Assignment({"b": lambda s: s["a"]}),
            reads=("a", "b"),
            process="b",
        )
        candidate = make_candidate([c_a, c_b])
        layers = [
            [ConvergenceBinding(constraint=c_a, action=fix_a)],
            [ConvergenceBinding(constraint=c_b, action=fix_b)],
        ]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert certificate.ok, certificate.describe()


class TestConditionFailures:
    def test_cyclic_layer_graph_rejected(self):
        # Two constraints in ONE layer whose actions form a 2-cycle
        # between the nodes: a -> b and b -> a.
        c_ab = constraint("A", lambda s: s["a"] <= s["b"], ("a", "b"))
        c_ba = constraint("B", lambda s: s["b"] <= s["a"] + 1, ("a", "b"))
        fix_ab = Action(
            "fix-ab",
            (~c_ab.predicate).renamed("a > b"),
            Assignment({"b": lambda s: s["a"]}),
            reads=("a", "b"),
            process="b",
        )
        fix_ba = Action(
            "fix-ba",
            (~c_ba.predicate).renamed("b > a + 1"),
            Assignment({"a": lambda s: s["b"]}),
            reads=("a", "b"),
            process="a",
        )
        candidate = make_candidate([c_ab, c_ba])
        layers = [
            [
                ConvergenceBinding(constraint=c_ab, action=fix_ab),
                ConvergenceBinding(constraint=c_ba, action=fix_ba),
            ]
        ]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert not certificate.ok
        assert any(
            "self-looping" in cond.name and not cond.ok
            for cond in certificate.conditions
        )

    def test_partial_guard_fails_enabledness(self):
        c_a = constraint("A", lambda s: s["a"] >= 0, ("a",))
        lazy_fix = Action(
            "lazy-fix",
            Predicate(lambda s: s["a"] < -1, name="a < -1", support=("a",)),
            Assignment({"a": 0}),
            reads=("a",),
            process="a",
        )
        candidate = make_candidate([c_a])
        layers = [[ConvergenceBinding(constraint=c_a, action=lazy_fix)]]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert not certificate.ok
        assert any(
            "enabled whenever" in cond.name and not cond.ok
            for cond in certificate.conditions
        )

    def test_non_establishing_action_fails(self):
        c_a = constraint("A", lambda s: s["a"] >= 0, ("a",))
        bad_fix = Action(
            "bad-fix",
            (~c_a.predicate).renamed("a < 0"),
            Assignment({"a": lambda s: s["a"] + 0}),  # no-op
            reads=("a",),
            process="a",
        )
        candidate = make_candidate([c_a])
        layers = [[ConvergenceBinding(constraint=c_a, action=bad_fix)]]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert not certificate.ok
        assert any(
            "establishes" in cond.name and not cond.ok
            for cond in certificate.conditions
        )

    def test_closure_breaking_converging_layer_fails(self):
        # A closure action decrements `a` (breaking constraint A1) while
        # the layer is still converging on A2: the refined Theorem 3
        # closure condition must reject it, with a witness. (The design
        # happens to converge anyway under weak fairness — the conditions
        # are sufficient, not necessary — but it cannot be *certified*.)
        c_a1 = constraint("A1", lambda s: s["a"] >= 0, ("a",))
        c_a2 = constraint("A2", lambda s: s["b"] >= 0, ("b",))
        breaker = Action(
            "breaker",
            Predicate(
                lambda s: s["a"] >= 0 and s["b"] < 0,
                name="a >= 0 and b < 0",
                support=("a", "b"),
            ),
            Assignment({"a": lambda s: s["a"] - 1}),
            reads=("a", "b"),
            process="a",
        )
        fix_a = Action(
            "fix-a",
            (~c_a1.predicate).renamed("a < 0"),
            Assignment({"a": 0}),
            reads=("a",),
            process="a",
        )
        fix_b = Action(
            "fix-b",
            (~c_a2.predicate).renamed("b < 0"),
            Assignment({"b": 0}),
            reads=("b",),
            process="b",
        )
        candidate = make_candidate([c_a1, c_a2], closure_actions=[breaker])
        layers = [
            [
                ConvergenceBinding(constraint=c_a1, action=fix_a),
                ConvergenceBinding(constraint=c_a2, action=fix_b),
            ]
        ]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert not certificate.ok
        failing = next(
            cond for cond in certificate.conditions
            if "closure actions" in cond.name and not cond.ok
        )
        assert failing.violations  # concrete witness state attached

    def test_invariant_closure_condition(self):
        # A closure action that leaves S entirely: the global S-closure
        # condition must flag it even if per-layer contexts are vacuous.
        c_a = constraint("A", lambda s: s["a"] == 0, ("a",))
        escape = Action(
            "escape",
            Predicate(lambda s: s["a"] == 0, name="a = 0", support=("a",)),
            Assignment({"a": 1}),
            reads=("a",),
            process="a",
        )
        fix_a = Action(
            "fix-a",
            (~c_a.predicate).renamed("a != 0"),
            Assignment({"a": 0}),
            reads=("a",),
            process="a",
        )
        candidate = make_candidate([c_a], closure_actions=[escape])
        layers = [[ConvergenceBinding(constraint=c_a, action=fix_a)]]
        certificate = validate_theorem3(candidate, layers, nodes(), states())
        assert not certificate.ok
        assert any(
            "closed under every" in cond.name and not cond.ok
            for cond in certificate.conditions
        )
