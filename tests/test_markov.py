"""Tests for the exact convergence-time analysis (random-daemon chain).

Historically computed by ``repro.analysis.markov``; these exercise its
successor, :func:`repro.quantitative.hitting_times`, against the same
closed-form answers (the shim itself is covered in ``test_api.py``).
"""

import math

import pytest

from repro.quantitative import hitting_times
from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)

TARGET = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


def program_with(actions, hi=3) -> Program:
    return Program("p", [Variable("n", IntegerRangeDomain(0, hi))], actions)


def dec() -> Action:
    return Action(
        "dec",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )


def jump() -> Action:
    return Action(
        "jump",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
    )


class TestExactValues:
    def test_deterministic_countdown(self):
        program = program_with([dec()])
        result = hitting_times(program, program.state_space(), TARGET)
        # From n, exactly n steps.
        for n in range(4):
            assert result.expectation_of(State({"n": n})) == pytest.approx(n)
        assert result.maximum == pytest.approx(3)
        assert result.mean == pytest.approx((0 + 1 + 2 + 3) / 4)

    def test_uniform_choice_halves(self):
        # With dec and jump both enabled: E[n] = 1 + (E[n-1] + 0)/2.
        program = program_with([dec(), jump()])
        result = hitting_times(program, program.state_space(), TARGET)
        expected = {0: 0.0, 1: 1.0, 2: 1.5, 3: 1.75}
        for n, value in expected.items():
            assert result.expectation_of(State({"n": n})) == pytest.approx(value)

    def test_geometric_self_loop(self):
        # n=1 with a self-loop and an exit: E = 1 + E/2 => E = 2.
        spin = Action(
            "spin",
            Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",)),
            Assignment({"n": 1}),
            reads=("n",),
        )
        exit_action = Action(
            "exit",
            Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",)),
            Assignment({"n": 0}),
            reads=("n",),
        )
        program = program_with([spin, exit_action], hi=1)
        result = hitting_times(program, program.state_space(), TARGET)
        assert result.expectation_of(State({"n": 1})) == pytest.approx(2.0)


class TestInfiniteExpectations:
    def test_deadlock_outside_target_is_infinite(self):
        program = program_with([])  # nothing moves
        result = hitting_times(program, program.state_space(), TARGET)
        assert math.isinf(result.expectation_of(State({"n": 2})))
        assert result.expectation_of(State({"n": 0})) == 0.0
        assert math.isinf(result.mean)
        assert not result.all_finite

    def test_possible_wandering_into_dead_region_is_infinite(self):
        # From 2 the chain may go to 1 (then 0) or to 3 (stuck).
        split = Action(
            "up",
            Predicate(lambda s: s["n"] == 2, name="n = 2", support=("n",)),
            Assignment({"n": 3}),
            reads=("n",),
        )
        down = Action(
            "down",
            Predicate(lambda s: 0 < s["n"] <= 2, name="0 < n <= 2", support=("n",)),
            Assignment({"n": lambda s: s["n"] - 1}),
            reads=("n",),
        )
        program = program_with([split, down])
        result = hitting_times(program, program.state_space(), TARGET)
        assert math.isinf(result.expectation_of(State({"n": 3})))
        assert math.isinf(result.expectation_of(State({"n": 2})))
        # n = 1 only goes down: finite.
        assert result.expectation_of(State({"n": 1})) == pytest.approx(1.0)


class TestAgainstSimulation:
    def test_matches_simulated_mean_for_dijkstra_ring(self):
        from repro.protocols.token_ring import build_dijkstra_ring
        from repro.scheduler import RandomScheduler
        from repro.simulation import stabilization_trials

        program, spec = build_dijkstra_ring(3, 4)
        exact = hitting_times(program, program.state_space(), spec)
        stats = stabilization_trials(
            program, spec, lambda s: RandomScheduler(s),
            trials=600, max_steps=5000, base_seed=3,
        )
        assert stats.all_stabilized
        assert stats.steps.mean == pytest.approx(exact.mean, rel=0.15)

    def test_non_closed_states_rejected(self):
        program = program_with([dec()])
        with pytest.raises(ValueError, match="not closed"):
            hitting_times(program, [State({"n": 3})], TARGET)
