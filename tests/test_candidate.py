"""Unit tests for candidate triples and decomposition checks."""

import pytest

from repro.core import (
    CandidateTriple,
    Constraint,
    DesignError,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    TRUE,
    Variable,
)


def make_candidate(constraint_exprs, invariant, variables=("x",)):
    program = Program(
        "p",
        [Variable(name, IntegerRangeDomain(-2, 2)) for name in variables],
        [],
    )
    constraints = tuple(
        Constraint(
            name=f"c{i}",
            predicate=Predicate(fn, name=f"c{i}", support=support),
        )
        for i, (fn, support) in enumerate(constraint_exprs)
    )
    return CandidateTriple(
        program=program,
        invariant=invariant,
        constraints=constraints,
    )


STATES = [State({"x": v}) for v in range(-2, 3)]


class TestConstruction:
    def test_needs_constraints(self):
        program = Program("p", [Variable("x", IntegerRangeDomain(0, 1))], [])
        with pytest.raises(DesignError, match="at least one constraint"):
            CandidateTriple(program=program, invariant=TRUE, constraints=())

    def test_duplicate_constraint_names_rejected(self):
        program = Program("p", [Variable("x", IntegerRangeDomain(0, 1))], [])
        c = Constraint(
            name="c",
            predicate=Predicate(lambda s: True, name="t", support=("x",)),
        )
        with pytest.raises(DesignError, match="duplicate"):
            CandidateTriple(program=program, invariant=TRUE, constraints=(c, c))

    def test_constraint_on_unknown_variable_rejected(self):
        program = Program("p", [Variable("x", IntegerRangeDomain(0, 1))], [])
        c = Constraint(
            name="c",
            predicate=Predicate(lambda s: True, name="t", support=("ghost",)),
        )
        with pytest.raises(DesignError, match="undeclared"):
            CandidateTriple(program=program, invariant=TRUE, constraints=(c,))

    def test_constraint_lookup(self):
        candidate = make_candidate(
            [(lambda s: s["x"] >= 0, ("x",))],
            Predicate(lambda s: s["x"] >= 0, name="S", support=("x",)),
        )
        assert candidate.constraint("c0").name == "c0"
        with pytest.raises(KeyError):
            candidate.constraint("nope")


class TestDecomposition:
    def test_equivalent_decomposition(self):
        invariant = Predicate(lambda s: s["x"] >= 0, name="S", support=("x",))
        candidate = make_candidate([(lambda s: s["x"] >= 0, ("x",))], invariant)
        report = candidate.check_decomposition(STATES)
        assert report.ok
        assert report.equivalent
        assert report.checked == len(STATES)

    def test_stronger_constraints_imply_but_not_equivalent(self):
        # The paper's token-ring situation: constraints force x = 0 while
        # S only requires x >= 0.
        invariant = Predicate(lambda s: s["x"] >= 0, name="S", support=("x",))
        candidate = make_candidate([(lambda s: s["x"] == 0, ("x",))], invariant)
        report = candidate.check_decomposition(STATES)
        assert report.ok
        assert not report.equivalent

    def test_weaker_constraints_fail(self):
        invariant = Predicate(lambda s: s["x"] == 0, name="S", support=("x",))
        candidate = make_candidate([(lambda s: s["x"] >= 0, ("x",))], invariant)
        report = candidate.check_decomposition(STATES)
        assert not report.ok
        assert report.mismatches  # a state with x > 0

    def test_constraints_conjunction(self):
        invariant = Predicate(
            lambda s: 0 <= s["x"] <= 1, name="S", support=("x",)
        )
        candidate = make_candidate(
            [
                (lambda s: s["x"] >= 0, ("x",)),
                (lambda s: s["x"] <= 1, ("x",)),
            ],
            invariant,
        )
        conj = candidate.constraints_conjunction()
        assert conj(State({"x": 0}))
        assert not conj(State({"x": 2}))
        assert candidate.check_decomposition(STATES).equivalent
