"""Tests for program composition (parallel and superposition)."""

import pytest

from repro.core import (
    Action,
    Assignment,
    DesignError,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
    parallel,
    superpose,
)


def make_counter(var: str, action_name: str) -> Program:
    domain = IntegerRangeDomain(0, 3)
    action = Action(
        action_name,
        Predicate(lambda s, var=var: s[var] < 3, name=f"{var} < 3", support=(var,)),
        Assignment({var: lambda s, var=var: s[var] + 1}),
        reads=(var,),
        process=var,
    )
    return Program(f"counter-{var}", [Variable(var, domain, process=var)], [action])


class TestParallel:
    def test_union_of_variables_and_actions(self):
        composite = parallel(make_counter("a", "inc.a"), make_counter("b", "inc.b"))
        assert set(composite.variables) == {"a", "b"}
        assert {action.name for action in composite.actions} == {"inc.a", "inc.b"}

    def test_interleaving_execution(self):
        composite = parallel(make_counter("a", "inc.a"), make_counter("b", "inc.b"))
        state = State({"a": 0, "b": 0})
        enabled = {action.name for action in composite.enabled_actions(state)}
        assert enabled == {"inc.a", "inc.b"}

    def test_shared_variable_with_same_domain_allowed(self):
        first = make_counter("a", "inc.a")
        observer = Program(
            "observer",
            [
                Variable("a", IntegerRangeDomain(0, 3), process="a"),
                Variable("seen", IntegerRangeDomain(0, 3), process="obs"),
            ],
            [
                Action(
                    "observe",
                    Predicate(
                        lambda s: s["seen"] != s["a"],
                        name="seen != a",
                        support=("seen", "a"),
                    ),
                    Assignment({"seen": lambda s: s["a"]}),
                    reads=("seen", "a"),
                    process="obs",
                )
            ],
        )
        composite = parallel(first, observer)
        assert set(composite.variables) == {"a", "seen"}

    def test_domain_mismatch_rejected(self):
        first = make_counter("a", "inc.a")
        other = Program(
            "other", [Variable("a", IntegerRangeDomain(0, 9), process="a")], []
        )
        with pytest.raises(DesignError, match="different domains"):
            parallel(first, other)

    def test_owner_mismatch_rejected(self):
        first = make_counter("a", "inc.a")
        other = Program(
            "other", [Variable("a", IntegerRangeDomain(0, 3), process="elsewhere")], []
        )
        with pytest.raises(DesignError, match="different owners"):
            parallel(first, other)

    def test_action_name_collision_rejected(self):
        with pytest.raises(DesignError, match="both components"):
            parallel(make_counter("a", "inc"), make_counter("b", "inc"))


class TestSuperpose:
    def _observer_layer(self) -> Program:
        return Program(
            "observer",
            [
                Variable("a", IntegerRangeDomain(0, 3), process="a"),
                Variable("high", IntegerRangeDomain(0, 1), process="obs"),
            ],
            [
                Action(
                    "flag-high",
                    Predicate(
                        lambda s: s["a"] >= 2 and s["high"] == 0,
                        name="a >= 2 and not flagged",
                        support=("a", "high"),
                    ),
                    Assignment({"high": 1}),
                    reads=("a", "high"),
                    process="obs",
                )
            ],
        )

    def test_layer_observes_base(self):
        base = make_counter("a", "inc.a")
        composite = superpose(base, self._observer_layer())
        state = State({"a": 2, "high": 0})
        enabled = {action.name for action in composite.enabled_actions(state)}
        assert "flag-high" in enabled

    def test_layer_writing_base_rejected(self):
        base = make_counter("a", "inc.a")
        meddler = Program(
            "meddler",
            [Variable("a", IntegerRangeDomain(0, 3), process="a")],
            [
                Action(
                    "reset-a",
                    Predicate(lambda s: s["a"] > 0, name="a > 0", support=("a",)),
                    Assignment({"a": 0}),
                    reads=("a",),
                    process="a",
                )
            ],
        )
        with pytest.raises(DesignError, match="write-disjoint"):
            superpose(base, meddler)

    def test_base_properties_preserved(self):
        # A predicate over base variables closed in the base stays closed
        # in the superposition (the layer cannot write base variables).
        from repro.verification import check_closure

        base = make_counter("a", "inc.a")
        composite = superpose(base, self._observer_layer())
        bounded = Predicate(lambda s: s["a"] <= 3, name="a <= 3", support=("a",))
        result = check_closure(bounded, composite, composite.state_space())
        assert result.ok
