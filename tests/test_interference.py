"""Tests for the interference analysis (repro.staticcheck.interference).

The load-bearing property is the library-wide differential: running the
compositional certifier with the static fast path on must produce the
same verdict, bit for bit, as the pure enumerative path — and every
obligation the fast path discharged must be one the projected sweep
independently confirms. The rest covers the discharge routes and the
IF* detectors directly.
"""

import pytest

from repro.compositional import certify_compositional
from repro.core import Action, Assignment, Constraint, ConvergenceBinding
from repro.core.domains import IntegerRangeDomain
from repro.core.expr import C, V, expr_action
from repro.protocols.library import CASES
from repro.staticcheck.absint import AbstractContext
from repro.staticcheck.interference import (
    StaticDischarger,
    find_establish_failures,
    find_fault_hazards,
    find_order_conflicts,
    find_write_write_races,
    guard_negates,
    predicate_expr,
    update_exprs,
)

DESIGN_CASES = sorted(
    name for name, case in CASES.items() if case.build_design is not None
)

VERDICT_FIELDS = (
    "status", "ok", "classification", "stabilizing", "theorem", "refusal",
)


def _design(name, size=None):
    case = CASES[name]
    return case.build_design(size if size is not None else case.default_size)


class TestLibraryDifferential:
    """Static discharge must never change a verdict (acceptance bar)."""

    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_verdicts_bit_identical(self, name):
        static = certify_compositional(_design(name), semantic=True)
        swept = certify_compositional(_design(name), semantic=False)
        for field in VERDICT_FIELDS:
            assert getattr(static, field) == getattr(swept, field), (
                f"{name}: semantic flips {field}"
            )

    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_every_static_discharge_confirmed_by_sweep(self, name):
        static = certify_compositional(_design(name), semantic=True)
        swept = certify_compositional(_design(name), semantic=False)
        # The sweep run certifies, so every obligation it discharged
        # holds; the static run must cover the same obligation set.
        assert static.status == "certified"
        assert swept.status == "certified"
        static_keys = {(o.name, o.subject) for o in static.obligations}
        swept_keys = {(o.name, o.subject) for o in swept.obligations}
        assert static_keys == swept_keys
        # No obligation is enumerated-by-static: discharged_by="static"
        # entries report zero projected space.
        for obligation in static.obligations:
            if obligation.discharged_by == "static":
                assert obligation.space == 0
                assert obligation.variables == ()

    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_static_run_carries_certificates(self, name):
        certificate = certify_compositional(_design(name), semantic=True)
        statics = [
            o for o in certificate.obligations if o.discharged_by == "static"
        ]
        assert statics, f"{name}: no obligation discharged statically"
        assert certificate.static_certificates
        # One certificate per statically discharged obligation (the
        # node-level linear-order summaries aggregate several).
        assert len(certificate.static_certificates) >= len(
            [o for o in statics if o.name != "linear-order"]
        )
        for entry in certificate.static_certificates:
            assert entry.obligation in {
                "closure-preserves", "enabled-when-violated",
                "establishes-in-one-step", "merged-behaviour", "linear-order",
            }
            assert entry.cases >= 0

    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_discharge_rate_meets_the_bar(self, name):
        certificate = certify_compositional(_design(name), semantic=True)
        statics = sum(
            1 for o in certificate.obligations if o.discharged_by == "static"
        )
        assert statics / len(certificate.obligations) >= 0.30

    @pytest.mark.parametrize("name", DESIGN_CASES)
    def test_no_interference_findings_on_clean_designs(self, name):
        design = _design(name)
        context = AbstractContext(
            {n: v.domain for n, v in design.program.variables.items()}
        )
        assert find_write_write_races(
            list(design.program.actions), context
        ) == []
        assert find_order_conflicts(design, context) == []
        assert find_establish_failures(design, context) == []


BIT = IntegerRangeDomain(0, 1)


def _binding(constraint, action):
    return ConvergenceBinding(constraint=constraint, action=action)


class TestDischargeRoutes:
    def _discharger(self, design):
        return StaticDischarger(design)

    def test_negation_guard_route(self):
        design = _design("coloring-chain")
        discharger = StaticDischarger(design)
        binding = design.bindings[0]
        certificate = discharger.enabled_when_violated(binding, "b0")
        assert certificate is not None
        assert certificate.rule == "negation-guard"
        assert certificate.cases == 0

    def test_opaque_guard_is_dont_know(self):
        from repro.core.predicates import Predicate

        design = _design("coloring-chain")
        discharger = StaticDischarger(design)
        original = design.bindings[0]
        opaque = ConvergenceBinding(
            constraint=original.constraint,
            action=Action(
                "opaque",
                Predicate(lambda s: True, name="?", support=()),
                original.action.effect,
                reads=original.action.reads,
            ),
        )
        assert discharger.enabled_when_violated(opaque, "b0") is None

    def test_closure_preserves_disjoint_truth(self):
        # x-action cannot touch a y-constraint: the post-state equals the
        # pre-state on the constraint's support, so substitution proves it.
        from repro.core.candidate import CandidateTriple
        from repro.core.constraint_graph import GraphNode
        from repro.core.design import NonmaskingDesign
        from repro.core.program import Program
        from repro.core.variables import Variable

        x, yv = V("x"), V("y")
        constraint_x = Constraint("Cx", x == 0)
        constraint_y = Constraint("Cy", yv == 0)
        fix_x = expr_action("fix-x", x != 0, {"x": 0})
        fix_y = expr_action("fix-y", yv != 0, {"y": 0})
        program = Program(
            "two", [Variable("x", BIT), Variable("y", BIT)], []
        )
        invariant = ((x == C(0)) & (yv == C(0))).predicate(name="S")
        design = NonmaskingDesign(
            "two",
            CandidateTriple(program, invariant, (constraint_x, constraint_y)),
            [_binding(constraint_x, fix_x), _binding(constraint_y, fix_y)],
            [GraphNode("X", frozenset({"x"})), GraphNode("Y", frozenset({"y"}))],
        )
        discharger = StaticDischarger(design)
        certificate = discharger.closure_preserves(fix_x, constraint_y, "s")
        assert certificate is not None
        assert certificate.obligation == "closure-preserves"

    def test_establishes_constant_assignment(self):
        design = _design("leader-election-star")
        discharger = StaticDischarger(design)
        results = [
            discharger.establishes(binding, f"b{i}")
            for i, binding in enumerate(design.bindings)
        ]
        assert any(r is not None for r in results)
        for certificate in results:
            if certificate is not None:
                assert certificate.obligation == "establishes-in-one-step"

    def test_attempt_and_discharge_counters(self):
        design = _design("coloring-chain")
        discharger = StaticDischarger(design)
        assert discharger.attempts == 0
        discharger.enabled_when_violated(design.bindings[0], "b0")
        assert discharger.attempts == 1
        assert discharger.discharged == 1


class TestHelpers:
    def test_predicate_expr_roundtrip(self):
        expr = (V("a") == C(1)) & (V("b") != C(0))
        predicate = expr.predicate(name="p")
        recovered = predicate_expr(predicate)
        assert recovered is not None
        for a in (0, 1):
            for b in (0, 1):
                state = {"a": a, "b": b}
                assert bool(recovered(state)) == bool(predicate(state))

    def test_predicate_expr_opaque_is_none(self):
        from repro.core.predicates import Predicate

        assert predicate_expr(Predicate(lambda s: True, name="?")) is None
        assert predicate_expr(None) is None

    def test_predicate_expr_rebuilds_negation(self):
        base = (V("a") == C(1)).predicate(name="p")
        negated = ~base
        recovered = predicate_expr(negated)
        assert recovered is not None
        assert bool(recovered({"a": 0})) is True
        assert bool(recovered({"a": 1})) is False

    def test_guard_negates_by_identity_and_structure(self):
        base = (V("a") == C(1)).predicate(name="p")
        constraint = Constraint("c", base)
        assert guard_negates((~base).renamed("not p"), constraint)
        # Structural: independently built ~(a = 1).
        rebuilt = (~(V("a") == C(1))).predicate(name="g")
        assert guard_negates(rebuilt, constraint)
        # A different guard is not recognised.
        other = (V("a") == C(0)).predicate(name="g2")
        assert not guard_negates(other, constraint)

    def test_update_exprs_filters_and_degrades(self):
        action = expr_action("a", V("x") != 0, {"x": 0, "y": V("x")})
        symbolic = update_exprs(action, {"x"})
        assert set(symbolic) == {"x"}
        opaque = Action(
            "b",
            (V("x") != C(0)).predicate(name="g"),
            Assignment({"x": lambda s: 0}),
            reads=("x",),
        )
        assert update_exprs(opaque, {"x"}) is None


class TestDetectors:
    def _context(self, **domains):
        return AbstractContext(domains or {"r": BIT, "u": BIT, "v": BIT})

    def test_write_write_race_needs_distinct_processes(self):
        r = V("r")
        one = expr_action("one", r == 0, {"r": 1}, process="p1")
        two = expr_action("two", r == 0, {"r": 1}, process="p1")
        context = self._context(r=IntegerRangeDomain(0, 2))
        assert find_write_write_races([one, two], context) == []

    def test_write_write_race_found_with_witness(self):
        r = V("r")
        one = expr_action("one", r == 0, {"r": 1}, process="p1")
        two = expr_action("two", r == 0, {"r": 2}, process="p2")
        context = self._context(r=IntegerRangeDomain(0, 2))
        [(first, second, name, witness)] = find_write_write_races(
            [one, two], context
        )
        assert (first.name, second.name, name) == ("one", "two", "r")
        assert witness == {"r": 0}

    def test_same_value_writes_are_not_a_race(self):
        r = V("r")
        one = expr_action("one", r == 0, {"r": 1}, process="p1")
        two = expr_action("two", r == 0, {"r": 1}, process="p2")
        context = self._context(r=IntegerRangeDomain(0, 2))
        assert find_write_write_races([one, two], context) == []

    def test_fault_hazard_from_declared_sets(self):
        design = _design("coloring-chain")
        binding = design.bindings[0]
        guard_reads = sorted(binding.action.reads)
        outside = [
            v for v in guard_reads if v not in binding.constraint.support
        ]
        fault_var = (outside or guard_reads)[0]
        from repro.core.predicates import TRUE

        fault = Action(
            "fault", TRUE, Assignment({fault_var: 0}), reads=()
        )
        hazards = find_fault_hazards(design, [fault])
        if outside:
            assert any(b is binding for _f, b, _vars in hazards)
        else:
            assert all(b is not binding for _f, b, _vars in hazards)

    def test_no_faults_no_hazards(self):
        assert find_fault_hazards(_design("coloring-chain"), []) == []
