"""The verification daemon and the sharded verdict store.

The daemon tests run a real :class:`DaemonThread` and speak HTTP to it
with :mod:`http.client` — no mocked transport — pinning:

- the endpoint schemas against the ``--json`` schemas of
  ``tests/test_cli_json.py`` (a daemon answer is the CLI record plus
  call provenance);
- in-flight dedup: N concurrent identical requests cause exactly one
  verification;
- ``/healthz`` responsiveness while every executor thread is blocked;
- graceful shutdown draining accepted requests.

The store tests cover the sharded layout, the LRU warm tier,
size-bounded eviction, index recovery across restarts, and the
truncated-entry-is-a-miss contract behind the atomic-write fix.
"""

import json
import http.client
import threading
import time

import pytest

from repro.observability import (
    EVENT_KINDS,
    RingBufferSink,
    Tracer,
)
from repro.verification.server import (
    PROVENANCE_KEYS,
    DaemonThread,
    VerificationDaemon,
)
from repro.verification.service import VerificationService
from repro.verification.store import VerdictStore

from tests.test_cli_json import (
    COMPOSITIONAL_RECORD_KEYS,
    LINT_CASE_KEYS,
    QUANTITATIVE_KEYS,
    VERIFY_RECORD_KEYS,
)

# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------


def _request(handle, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def post(handle, path, body, timeout=60):
    return _request(handle, "POST", path, body, timeout)


def get(handle, path, timeout=60):
    return _request(handle, "GET", path, timeout=timeout)


@pytest.fixture
def daemon():
    handle = DaemonThread(workers=1, batch_window=0.005).start()
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# Endpoint schemas (pinned against the CLI --json schemas)
# ----------------------------------------------------------------------


class TestEndpointSchemas:
    def test_verify_record_matches_cli_schema(self, daemon):
        status, record = post(daemon, "/verify", {"case": "dijkstra-ring", "size": 3})
        assert status == 200
        assert VERIFY_RECORD_KEYS <= set(record)
        assert set(PROVENANCE_KEYS) <= set(record)
        assert record["ok"] is True
        assert record["method"] == "full"
        assert record["cached"] is False and record["cache_layer"] == ""

    def test_verify_repeat_is_memory_hit(self, daemon):
        body = {"case": "dijkstra-ring", "size": 3}
        post(daemon, "/verify", body)
        status, record = post(daemon, "/verify", body)
        assert status == 200
        assert record["cached"] is True
        assert record["cache_layer"] == "memory"
        assert record["deduped"] is False

    def test_compositional_record_matches_cli_schema(self, daemon):
        status, record = post(
            daemon, "/verify",
            {"case": "diffusing-chain", "size": 3, "method": "compositional"},
        )
        assert status == 200
        assert set(record) == COMPOSITIONAL_RECORD_KEYS | set(PROVENANCE_KEYS)
        assert record["ok"] is True
        assert record["status"] == "certified"

    def test_auto_method_prefers_cached_compositional(self, daemon):
        body = {"case": "diffusing-chain", "size": 3}
        post(daemon, "/verify", {**body, "method": "compositional"})
        status, record = post(daemon, "/verify", body)  # method=auto
        assert status == 200
        assert record["method"] == "compositional"
        assert record["cached"] is True

    def test_lint_record_matches_cli_schema(self, daemon):
        status, record = post(daemon, "/lint", {"case": "coloring-chain"})
        assert status == 200
        assert set(record) == LINT_CASE_KEYS | set(PROVENANCE_KEYS)
        assert record["ok"] is True

    def test_simulate_is_seeded_and_cached(self, daemon):
        body = {"case": "dijkstra-ring", "size": 3, "trials": 4,
                "max_steps": 5000, "seed": 7}
        status, first = post(daemon, "/simulate", body)
        assert status == 200
        assert first["trials"] == 4 and first["seed"] == 7
        assert first["all_stabilized"] is True
        assert first["steps"]["count"] >= 1
        status, second = post(daemon, "/simulate", body)
        assert second["cached"] is True
        assert {k: second[k] for k in first if k not in PROVENANCE_KEYS} == {
            k: first[k] for k in first if k not in PROVENANCE_KEYS
        }

    def test_healthz_and_stats(self, daemon):
        status, health = get(daemon, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        post(daemon, "/verify", {"case": "dijkstra-ring", "size": 3})
        status, stats = get(daemon, "/stats")
        assert status == 200
        assert stats["requests"]["verify"] == 1
        assert stats["requests"]["computed"] == 1
        assert stats["service"]["misses"] >= 1
        assert stats["store"] is None  # no cache_dir on this daemon

    def test_index_lists_endpoints(self, daemon):
        status, payload = get(daemon, "/")
        assert status == 200
        assert "/verify" in payload["endpoints"]


class TestQuantify:
    def test_verify_quantify_attaches_report(self, daemon):
        status, record = post(
            daemon, "/verify",
            {"case": "dijkstra-ring", "size": 3, "quantify": True},
        )
        assert status == 200
        assert record["ok"] is True
        assert set(record["quantitative"]) == QUANTITATIVE_KEYS
        assert record["quantitative"]["ok"] is True

    def test_quantify_key_is_distinct_and_cached(self, daemon):
        plain = {"case": "dijkstra-ring", "size": 3}
        post(daemon, "/verify", plain)
        status, first = post(daemon, "/verify", {**plain, "quantify": True})
        assert status == 200
        assert first["cached"] is False  # no collision with the plain key
        status, second = post(daemon, "/verify", {**plain, "quantify": True})
        assert second["cached"] is True
        assert second["quantitative"] == first["quantitative"]

    def test_stats_grow_a_quantitative_section(self, daemon):
        post(daemon, "/verify",
             {"case": "dijkstra-ring", "size": 3, "quantify": True})
        status, stats = get(daemon, "/stats")
        assert status == 200
        assert stats["requests"]["quantify"] == 1
        assert stats["quantitative"]["requests"] == 1
        assert stats["quantitative"]["computed"] == 1

    def test_quantify_rejects_compositional(self, daemon):
        status, payload = post(
            daemon, "/verify",
            {"case": "diffusing-chain", "size": 3,
             "method": "compositional", "quantify": True},
        )
        assert status == 400
        assert "quantify" in payload["error"]

    def test_fault_rate_must_be_positive(self, daemon):
        status, payload = post(
            daemon, "/verify",
            {"case": "dijkstra-ring", "size": 3, "quantify": True,
             "fault_rate": 0},
        )
        assert status == 400
        assert "fault_rate" in payload["error"]


class TestRequestValidation:
    def test_unknown_endpoint_is_404(self, daemon):
        status, payload = post(daemon, "/nope", {})
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_wrong_method_is_405(self, daemon):
        status, _ = get(daemon, "/verify")
        assert status == 405
        status, _ = post(daemon, "/healthz", {})
        assert status == 405

    def test_unknown_case_is_400(self, daemon):
        status, payload = post(daemon, "/verify", {"case": "nope"})
        assert status == 400
        assert "unknown verification case" in payload["error"]

    def test_unknown_field_is_400(self, daemon):
        status, payload = post(
            daemon, "/verify", {"case": "dijkstra-ring", "bogus": 1}
        )
        assert status == 400
        assert "bogus" in payload["error"]

    def test_non_json_body_is_400(self, daemon):
        conn = http.client.HTTPConnection(daemon.host, daemon.port, timeout=30)
        try:
            conn.request("POST", "/verify", "{ not json",
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "not JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_compositional_without_design_is_400(self, daemon):
        status, payload = post(
            daemon, "/verify",
            {"case": "dijkstra-ring", "method": "compositional"},
        )
        assert status == 400
        assert "registers no design" in payload["error"]

    def test_errors_do_not_kill_the_daemon(self, daemon):
        post(daemon, "/verify", {"case": "nope"})
        status, record = post(daemon, "/verify", {"case": "dijkstra-ring", "size": 3})
        assert status == 200 and record["ok"] is True


# ----------------------------------------------------------------------
# Dedup, batching, saturation, shutdown
# ----------------------------------------------------------------------


class TestDedupAndBatching:
    def test_concurrent_identical_requests_compute_once(self):
        handle = DaemonThread(workers=1, batch_window=0.25).start()
        try:
            results = []

            def fire():
                results.append(
                    post(handle, "/verify", {"case": "mis-cycle", "size": 5})
                )

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _ in results)
            assert all(record["ok"] for _, record in results)
            # Exactly one verification ran; every other request either
            # coalesced onto its future or (arriving after ingestion)
            # hit the cache.
            assert handle.daemon.requests["computed"] == 1
            followers = [
                record for _, record in results
                if record["deduped"] or record["cached"]
            ]
            assert len(followers) == 5
        finally:
            handle.stop()

    def test_distinct_requests_share_one_batch_dispatch(self):
        handle = DaemonThread(workers=1, batch_window=0.25).start()
        try:
            bodies = [
                {"case": "dijkstra-ring", "size": 3},
                {"case": "mis-cycle", "size": 4},
                {"case": "matching-cycle", "size": 3},
            ]
            results = []

            def fire(body):
                results.append(post(handle, "/verify", body))

            threads = [threading.Thread(target=fire, args=(b,)) for b in bodies]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _ in results)
            assert handle.daemon.requests["computed"] == 3
            assert handle.daemon.requests["batches"] == 1
        finally:
            handle.stop()

    def test_lint_coalesces_concurrent_duplicates(self):
        handle = DaemonThread(workers=2).start()
        try:
            release = threading.Event()
            service = handle.daemon.service
            original = service.memo

            def blocking_memo(kind, key, compute):
                release.wait(timeout=30)
                return original(kind, key, compute)

            service.memo = blocking_memo
            results = []

            def fire():
                results.append(post(handle, "/lint", {"case": "coloring-chain"}))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 10
            while handle.daemon.requests["deduped"] < 2 and time.time() < deadline:
                time.sleep(0.01)
            release.set()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _ in results)
            assert handle.daemon.requests["deduped"] == 2
            # The leader computed; the two followers coalesced.
            assert service.misses == 1
        finally:
            handle.stop()


class TestSaturationAndShutdown:
    def test_healthz_answers_while_pool_is_saturated(self):
        handle = DaemonThread(workers=1).start()
        try:
            release = threading.Event()
            service = handle.daemon.service
            original = service.memo

            def blocking_memo(kind, key, compute):
                release.wait(timeout=30)
                return original(kind, key, compute)

            service.memo = blocking_memo
            # Saturate every executor thread (workers + 1) with blocked
            # lints of distinct cases so nothing coalesces.
            cases = ["coloring-chain", "dijkstra-ring", "mis-cycle"]
            threads = [
                threading.Thread(
                    target=post, args=(handle, "/lint", {"case": case})
                )
                for case in cases
            ]
            for thread in threads:
                thread.start()
            deadline = time.time() + 10
            while handle.daemon.inflight < len(cases) and time.time() < deadline:
                time.sleep(0.01)
            started = time.perf_counter()
            status, health = get(handle, "/healthz", timeout=5)
            elapsed = time.perf_counter() - started
            assert status == 200 and health["status"] == "ok"
            assert health["inflight"] >= len(cases)
            assert elapsed < 2.0  # inline on the loop, not behind the pool
            release.set()
            for thread in threads:
                thread.join()
        finally:
            handle.stop()

    def test_graceful_stop_drains_inflight_requests(self):
        handle = DaemonThread(workers=1).start()
        release = threading.Event()
        service = handle.daemon.service
        original = service.memo

        def blocking_memo(kind, key, compute):
            release.wait(timeout=30)
            return original(kind, key, compute)

        service.memo = blocking_memo
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                post(handle, "/lint", {"case": "coloring-chain"})
            )
        )
        thread.start()
        deadline = time.time() + 10
        while handle.daemon.inflight < 1 and time.time() < deadline:
            time.sleep(0.01)
        # Release the blocked request shortly after shutdown begins.
        threading.Timer(0.2, release.set).start()
        handle.stop(drain=True)
        thread.join(timeout=10)
        assert results and results[0][0] == 200
        assert results[0][1]["ok"] is True


class TestObservability:
    def test_request_events_are_emitted_and_registered(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        handle = DaemonThread(workers=1, tracer=tracer).start()
        try:
            post(handle, "/verify", {"case": "dijkstra-ring", "size": 3})
            post(handle, "/verify", {"case": "dijkstra-ring", "size": 3})
        finally:
            handle.stop()
        kinds = [event.kind for event in ring.events]
        assert "service.request.start" in kinds
        assert "service.request.finish" in kinds
        assert "service.batch.dispatch" in kinds
        assert set(kinds) <= set(EVENT_KINDS) | {"cache.hit", "cache.miss"}

    def test_report_rolls_up_request_counters(self, daemon):
        post(daemon, "/verify", {"case": "dijkstra-ring", "size": 3})
        report = daemon.daemon.report(run="test")
        assert report.counters["service.request.verify"] == 1
        assert report.counters["service.request.total"] == 1
        assert report.meta["run"] == "test"


# ----------------------------------------------------------------------
# The sharded store behind the daemon
# ----------------------------------------------------------------------


class TestDaemonStore:
    def test_verdicts_persist_across_daemon_restart(self, tmp_path):
        handle = DaemonThread(workers=1, cache_dir=tmp_path).start()
        try:
            status, record = post(
                handle, "/verify", {"case": "dijkstra-ring", "size": 3}
            )
            assert status == 200 and record["cached"] is False
        finally:
            handle.stop()
        # Entries landed in sharded bucket directories, not flat.
        buckets = [child for child in tmp_path.iterdir() if child.is_dir()]
        assert buckets
        assert list(buckets[0].glob("tolerance-*.json"))

        handle = DaemonThread(workers=1, cache_dir=tmp_path).start()
        try:
            status, record = post(
                handle, "/verify", {"case": "dijkstra-ring", "size": 3}
            )
            assert status == 200
            assert record["cached"] is True
            assert record["cache_layer"] == "disk"
            _, stats = get(handle, "/stats")
            assert stats["store"]["hits_disk"] >= 1
        finally:
            handle.stop()

    def test_eviction_under_small_budget(self, tmp_path):
        handle = DaemonThread(
            workers=1, cache_dir=tmp_path, store_entries=1
        ).start()
        try:
            post(handle, "/verify", {"case": "dijkstra-ring", "size": 3})
            post(handle, "/verify", {"case": "mis-cycle", "size": 4})
            _, stats = get(handle, "/stats")
            assert stats["store"]["entries"] == 1
            assert stats["store"]["evictions"] >= 1
        finally:
            handle.stop()
        on_disk = list(tmp_path.rglob("tolerance-*.json"))
        assert len(on_disk) == 1


def _key(index: int) -> str:
    """A 64-hex-digit fingerprint whose *leading* digits vary.

    Store filenames keep only the first 40 digits of a key, so test
    keys must differ in their prefix (real fingerprints are hashes and
    always do).
    """
    return f"{index:x}".ljust(64, "e")


class TestVerdictStore:
    def test_flat_layout_matches_historical_paths(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0, warm_capacity=0)
        path = store.put("tolerance", "a" * 64, {"ok": True})
        assert path.parent == tmp_path
        assert path.name == f"tolerance-{'a' * 40}.json"

    def test_sharded_layout_buckets_by_key_prefix(self, tmp_path):
        store = VerdictStore(tmp_path, shards=16)
        key = "00ff" * 16
        path = store.put("tolerance", key, {"ok": True})
        assert path.parent.parent == tmp_path
        assert path.parent.name == f"{int(key[:8], 16) % 16:02x}"
        assert store.get("tolerance", key) == {"ok": True}

    def test_warm_tier_avoids_disk(self, tmp_path):
        store = VerdictStore(tmp_path, shards=4, warm_capacity=8)
        store.put("tolerance", "b" * 64, {"ok": True})
        store.path("tolerance", "b" * 64).unlink()  # force: warm only
        assert store.get("tolerance", "b" * 64) == {"ok": True}
        assert store.hits_warm == 1

    def test_warm_tier_capacity_is_bounded(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0, warm_capacity=2)
        for index in range(4):
            store.put("tolerance", _key(index), {"index": index})
        assert store.stats()["warm_entries"] == 2
        # Evicted-from-warm entries still hit via disk.
        assert store.get("tolerance", _key(0)) == {"index": 0}
        assert store.hits_disk == 1

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        store = VerdictStore(tmp_path, shards=4, warm_capacity=0)
        path = store.put("tolerance", "c" * 64, {"ok": True})
        path.write_text('{"ok": tru')  # interrupted pre-fix writer
        assert store.get("tolerance", "c" * 64) is None
        assert not path.exists()
        assert store.misses == 1
        # A rewrite recovers the entry.
        store.put("tolerance", "c" * 64, {"ok": False})
        assert store.get("tolerance", "c" * 64) == {"ok": False}

    def test_atomic_put_leaves_no_partial_files(self, tmp_path):
        store = VerdictStore(tmp_path, shards=4)
        store.put("tolerance", "d" * 64, {"ok": True})
        leftovers = [
            entry for entry in tmp_path.rglob("*") if entry.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_unserializable_record_does_not_poison_the_entry(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0)
        store.put("tolerance", "e" * 64, {"ok": True})
        with pytest.raises(TypeError):
            store.put("tolerance", "e" * 64, {"ok": object()})
        # The previous complete entry survives the failed write.
        assert store.get("tolerance", "e" * 64) == {"ok": True}

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0, max_entries=2)
        for index in range(3):
            store.put("tolerance", _key(index), {"index": index})
        assert len(store) == 2
        assert store.get("tolerance", _key(0)) is None  # LRU evicted
        assert store.get("tolerance", _key(2)) == {"index": 2}
        assert store.evictions == 1

    def test_get_refreshes_recency(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0, max_entries=2)
        store.put("tolerance", _key(0), {"index": 0})
        store.put("tolerance", _key(1), {"index": 1})
        store.get("tolerance", _key(0))  # touch 0 → 1 becomes LRU
        store.put("tolerance", _key(2), {"index": 2})
        assert store.get("tolerance", _key(1)) is None
        assert store.get("tolerance", _key(0)) == {"index": 0}

    def test_max_bytes_evicts_until_under_budget(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0, max_bytes=1)
        store.put("tolerance", _key(0), {"index": 0})
        store.put("tolerance", _key(1), {"index": 1})
        # Budget of one byte: everything but at most the newest goes.
        assert store.stats()["evictions"] >= 1

    def test_index_reloads_across_restart_in_mtime_order(self, tmp_path):
        store = VerdictStore(tmp_path, shards=4)
        for index in range(3):
            store.put("tolerance", _key(index), {"index": index})
        reopened = VerdictStore(tmp_path, shards=4, max_entries=2)
        assert len(reopened) == 3  # budget enforced on next write
        reopened.put("tolerance", _key(3), {"index": 3})
        assert len(reopened) == 2

    def test_stats_hit_rate(self, tmp_path):
        store = VerdictStore(tmp_path, shards=0)
        store.put("tolerance", "f" * 64, {"ok": True})
        store.get("tolerance", "f" * 64)
        store.get("tolerance", "0" * 64)
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["writes"] == 1


class TestServiceStoreIntegration:
    def test_service_flat_store_interoperates_with_legacy_layout(self, tmp_path):
        from repro.protocols.library import build_case

        first = VerificationService(cache_dir=tmp_path)
        program, invariant = build_case("dijkstra-ring", 3)
        verdict = first.verify_tolerance(program, invariant, case="ring")
        assert verdict.cached is False
        # Flat files directly under cache_dir: pool workers and older
        # service versions share this layout.
        assert list(tmp_path.glob("tolerance-*.json"))
        assert not [child for child in tmp_path.iterdir() if child.is_dir()]

        second = VerificationService(cache_dir=tmp_path)
        verdict = second.verify_tolerance(program, invariant, case="ring")
        assert verdict.cached is True and verdict.cache_layer == "disk"

    def test_service_truncated_disk_entry_recomputes(self, tmp_path):
        from repro.protocols.library import build_case

        service = VerificationService(cache_dir=tmp_path)
        program, invariant = build_case("dijkstra-ring", 3)
        service.verify_tolerance(program, invariant, case="ring")
        (entry,) = tmp_path.glob("tolerance-*.json")
        entry.write_text('{"case": "ring", "ok"')  # truncated write
        fresh = VerificationService(cache_dir=tmp_path)
        verdict = fresh.verify_tolerance(program, invariant, case="ring")
        assert verdict.cached is False
        assert verdict.ok


# ----------------------------------------------------------------------
# The service namespace and the CLI surface
# ----------------------------------------------------------------------


class TestServiceNamespace:
    def test_documented_import_path(self):
        from repro.service import DaemonThread as NamespaceThread
        from repro.service import VerificationDaemon as NamespaceDaemon
        from repro.service import serve
        from repro.service.server import VerdictStore as NamespaceStore

        assert NamespaceDaemon is VerificationDaemon
        assert NamespaceThread is DaemonThread
        assert callable(serve)
        assert NamespaceStore is VerdictStore

    def test_cli_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3", "--store-entries", "10"]
        )
        assert args.port == 0
        assert args.workers == 3
        assert args.store_entries == 10
        assert callable(args.handler)
