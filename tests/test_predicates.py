"""Unit tests for the predicate algebra."""

from repro.core import FALSE, TRUE, Predicate, State, all_of, any_of, var_equals


def x_positive() -> Predicate:
    return Predicate(lambda s: s["x"] > 0, name="x > 0", support=("x",))


def y_positive() -> Predicate:
    return Predicate(lambda s: s["y"] > 0, name="y > 0", support=("y",))


STATE_PP = State({"x": 1, "y": 1})
STATE_PN = State({"x": 1, "y": -1})
STATE_NN = State({"x": -1, "y": -1})


class TestBasics:
    def test_call_and_holds_agree(self):
        pred = x_positive()
        assert pred(STATE_PP) and pred.holds(STATE_PP)
        assert not pred(STATE_NN)

    def test_truthiness_coerced_to_bool(self):
        pred = Predicate(lambda s: s["x"], name="x truthy", support=("x",))
        assert pred(State({"x": 5})) is True
        assert pred(State({"x": 0})) is False

    def test_constants(self):
        assert TRUE(STATE_NN)
        assert not FALSE(STATE_PP)
        assert TRUE.support == frozenset()

    def test_holds_everywhere(self):
        assert x_positive().holds_everywhere([STATE_PP, STATE_PN])
        assert not x_positive().holds_everywhere([STATE_PP, STATE_NN])

    def test_renamed_keeps_semantics(self):
        renamed = x_positive().renamed("positive-x")
        assert renamed.name == "positive-x"
        assert renamed(STATE_PP) and not renamed(STATE_NN)
        assert renamed.support == frozenset({"x"})


class TestCombinators:
    def test_and(self):
        both = x_positive() & y_positive()
        assert both(STATE_PP)
        assert not both(STATE_PN)
        assert both.support == frozenset({"x", "y"})

    def test_or(self):
        either = x_positive() | y_positive()
        assert either(STATE_PN)
        assert not either(STATE_NN)

    def test_not(self):
        neg = ~x_positive()
        assert neg(STATE_NN) and not neg(STATE_PP)
        assert neg.support == frozenset({"x"})

    def test_implies(self):
        imp = x_positive().implies(y_positive())
        assert imp(STATE_PP)
        assert not imp(STATE_PN)
        assert imp(STATE_NN)  # false antecedent

    def test_double_negation(self):
        assert (~~x_positive())(STATE_PP)
        assert not (~~x_positive())(STATE_NN)

    def test_unknown_support_propagates(self):
        opaque = Predicate(lambda s: True, name="opaque")
        assert opaque.support is None
        assert (opaque & x_positive()).support is None


class TestAggregates:
    def test_all_of_empty_is_true(self):
        assert all_of([])(STATE_NN)

    def test_any_of_empty_is_false(self):
        assert not any_of([])(STATE_PP)

    def test_all_of(self):
        conj = all_of([x_positive(), y_positive()])
        assert conj(STATE_PP) and not conj(STATE_PN)
        assert conj.support == frozenset({"x", "y"})

    def test_any_of(self):
        disj = any_of([x_positive(), y_positive()])
        assert disj(STATE_PN) and not disj(STATE_NN)

    def test_all_of_custom_name(self):
        assert all_of([x_positive()], name="S").name == "S"

    def test_var_equals(self):
        pred = var_equals("x", 1)
        assert pred(STATE_PP)
        assert not pred(STATE_NN)
        assert pred.support == frozenset({"x"})
