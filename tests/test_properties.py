"""Property-based tests (hypothesis) on the core invariants.

These encode the model's algebraic laws and the protocols' headline
guarantees over randomly generated instances: arbitrary trees, arbitrary
corrupted states, arbitrary schedules.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Predicate, State, all_of, any_of
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    privileged_nodes,
)
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import Ring, RootedTree


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

values = st.integers(min_value=-5, max_value=5)


@st.composite
def states(draw, names=("x", "y", "z")):
    return State({name: draw(values) for name in names})


@st.composite
def parent_maps(draw, max_nodes=8):
    """A random rooted tree on nodes 0..n-1, rooted at 0."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parent = {0: 0}
    for j in range(1, n):
        parent[j] = draw(st.integers(min_value=0, max_value=j - 1))
    return RootedTree(parent)


def random_predicates(seed: int, count: int = 3):
    rng = random.Random(seed)
    predicates = []
    for i in range(count):
        threshold = rng.randint(-3, 3)
        name = rng.choice(["x", "y", "z"])
        predicates.append(
            Predicate(
                lambda s, name=name, threshold=threshold: s[name] <= threshold,
                name=f"{name} <= {threshold}",
                support=(name,),
            )
        )
    return predicates


# ---------------------------------------------------------------------------
# State laws
# ---------------------------------------------------------------------------


class TestStateLaws:
    @given(states())
    def test_update_identity(self, state):
        assert state.update({}) == state

    @given(states(), values)
    def test_update_then_read(self, state, v):
        assert state.update({"x": v})["x"] == v

    @given(states(), values, values)
    def test_last_update_wins(self, state, v1, v2):
        assert state.update({"x": v1}).update({"x": v2})["x"] == v2

    @given(states())
    def test_hash_equal_on_equal_states(self, state):
        clone = State(dict(state))
        assert state == clone and hash(state) == hash(clone)

    @given(states(), values)
    def test_update_preserves_other_variables(self, state, v):
        after = state.update({"y": v})
        assert after["x"] == state["x"] and after["z"] == state["z"]


# ---------------------------------------------------------------------------
# Predicate algebra laws
# ---------------------------------------------------------------------------


class TestPredicateLaws:
    @given(states(), st.integers(min_value=0, max_value=100))
    def test_de_morgan(self, state, seed):
        p, q, _ = random_predicates(seed)
        assert (~(p & q))(state) == ((~p) | (~q))(state)
        assert (~(p | q))(state) == ((~p) & (~q))(state)

    @given(states(), st.integers(min_value=0, max_value=100))
    def test_implication_definition(self, state, seed):
        p, q, _ = random_predicates(seed)
        assert p.implies(q)(state) == ((~p) | q)(state)

    @given(states(), st.integers(min_value=0, max_value=100))
    def test_all_of_equals_chained_and(self, state, seed):
        p, q, r = random_predicates(seed)
        assert all_of([p, q, r])(state) == (p & q & r)(state)

    @given(states(), st.integers(min_value=0, max_value=100))
    def test_any_of_equals_chained_or(self, state, seed):
        p, q, r = random_predicates(seed)
        assert any_of([p, q, r])(state) == (p | q | r)(state)

    @given(states(), st.integers(min_value=0, max_value=100))
    def test_negation_involution(self, state, seed):
        p, _, _ = random_predicates(seed)
        assert (~~p)(state) == p(state)


# ---------------------------------------------------------------------------
# Protocol-level properties
# ---------------------------------------------------------------------------


class TestDiffusingProperties:
    @settings(max_examples=15, deadline=None)
    @given(parent_maps(), st.integers(min_value=0, max_value=10**6))
    def test_stabilizes_on_any_tree_from_any_corruption(self, tree, seed):
        """The headline Theorem 1 claim, sampled over random instances."""
        design = build_diffusing_design(tree)
        program = design.program
        invariant = diffusing_invariant(tree)
        initial = program.random_state(random.Random(seed))
        result = run(
            program,
            initial,
            RandomScheduler(seed),
            max_steps=600 * len(tree),
            target=invariant,
            stop_on_target=True,
        )
        assert result.stabilized

    @settings(max_examples=10, deadline=None)
    @given(parent_maps(max_nodes=6), st.integers(min_value=0, max_value=10**6))
    def test_constraint_graph_always_out_tree(self, tree, seed):
        design = build_diffusing_design(tree)
        assert design.graph.is_out_tree()
        ranks = design.graph.ranks()
        # Rank equals 1 + tree depth for every node.
        by_name = {node.name: rank for node, rank in ranks.items()}
        for j in tree.nodes:
            assert by_name[str(j)] == tree.depth(j) + 1


class TestTokenRingProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_dijkstra_ring_stabilizes_and_keeps_single_privilege(self, n, seed):
        program, spec = build_dijkstra_ring(n, k=n + 1)
        rng = random.Random(seed)
        result = run(
            program,
            program.random_state(rng),
            RandomScheduler(seed),
            max_steps=800 * n,
            target=spec,
            stop_on_target=True,
        )
        assert result.stabilized
        # Once legitimate, the privilege count stays exactly one.
        follow_up = run(
            program,
            result.computation.final_state,
            RandomScheduler(seed + 1),
            max_steps=20 * n,
        )
        ring = Ring(n)
        for state in follow_up.computation.states():
            assert len(privileged_nodes(ring, state)) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_at_least_one_privilege_in_every_state(self, n, seed):
        """No state of the ring is privilege-free (a liveness floor)."""
        program, _ = build_dijkstra_ring(n, k=n)
        rng = random.Random(seed)
        state = program.random_state(rng)
        assert len(privileged_nodes(Ring(n), state)) >= 1
