"""Tests for the Section 8 fairness-free analysis."""

from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    Variable,
)
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.token_ring import build_dijkstra_ring
from repro.topology import chain_tree, star_tree
from repro.verification import (
    check_closure_computations,
    check_fairness_free,
)

TARGET = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


def spin_and_exit_program() -> Program:
    """Needs fairness: an unfair daemon can spin forever."""
    spin = Action(
        "spin",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"]}),
        reads=("n",),
    )
    exit_action = Action(
        "exit",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": 0}),
        reads=("n",),
    )
    return Program(
        "spin-exit", [Variable("n", IntegerRangeDomain(0, 2))], [spin, exit_action]
    )


class TestClosureComputations:
    def test_paper_observation_holds_for_diffusing(self):
        tree = star_tree(4)
        design = build_diffusing_design(tree)
        closure_names = [a.name for a in design.candidate.program.actions]
        report = check_closure_computations(
            design.program,
            closure_names,
            diffusing_invariant(tree),
            design.program.state_space(),
        )
        assert report.ok

    def test_cycle_among_bad_states_detected(self):
        program = spin_and_exit_program()
        report = check_closure_computations(
            program,
            ["spin"],
            TARGET,
            program.state_space(),
        )
        assert not report.ok
        assert report.cycle is not None


class TestFullAnalysis:
    def test_diffusing_needs_no_fairness(self):
        tree = chain_tree(3)
        design = build_diffusing_design(tree)
        closure_names = [a.name for a in design.candidate.program.actions]
        report = check_fairness_free(
            design.program,
            closure_names,
            diffusing_invariant(tree),
            design.program.state_space(),
        )
        assert report.observation.ok
        assert report.weak_convergence.ok
        assert report.unfair_convergence.ok
        assert not report.fairness_needed
        assert "fairness is unnecessary" in report.describe()

    def test_token_ring_needs_no_fairness(self):
        program, spec = build_dijkstra_ring(4, k=4)
        closure_names = [a.name for a in program.actions]
        report = check_fairness_free(
            program, closure_names, spec, program.state_space()
        )
        assert not report.fairness_needed
        assert report.unfair_convergence.ok

    def test_fairness_needed_detected(self):
        program = spin_and_exit_program()
        report = check_fairness_free(
            program, ["spin"], TARGET, program.state_space()
        )
        assert report.weak_convergence.ok
        assert not report.unfair_convergence.ok
        assert report.fairness_needed
        assert "genuinely needs" in report.describe()
