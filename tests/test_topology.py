"""Unit tests for the topology substrates and generators."""

import pytest

from repro.topology import (
    Graph,
    Ring,
    RootedTree,
    balanced_tree,
    chain_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_tree,
    tree_as_graph,
)


class TestRootedTree:
    def test_root_detection(self):
        tree = RootedTree({0: 0, 1: 0, 2: 1})
        assert tree.root == 0
        assert tree.parent(2) == 1
        assert tree.parent(0) == 0

    def test_children_and_leaves(self):
        tree = RootedTree({0: 0, 1: 0, 2: 0, 3: 1})
        assert sorted(tree.children(0)) == [1, 2]
        assert tree.children(3) == []
        assert sorted(tree.leaves()) == [2, 3]
        assert tree.is_leaf(2) and not tree.is_leaf(1)

    def test_non_root_nodes(self):
        tree = chain_tree(4)
        assert tree.non_root_nodes() == [1, 2, 3]

    def test_depth_and_height(self):
        tree = chain_tree(4)
        assert tree.depth(0) == 0
        assert tree.depth(3) == 3
        assert tree.height() == 3
        assert star_tree(5).height() == 1

    def test_preorder_starts_at_root_and_covers_all(self):
        tree = balanced_tree(2, 2)
        order = list(tree.preorder())
        assert order[0] == tree.root
        assert sorted(order) == sorted(tree.nodes)

    def test_no_root_rejected(self):
        with pytest.raises(ValueError, match="exactly one root"):
            RootedTree({0: 1, 1: 0})

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError, match="exactly one root"):
            RootedTree({0: 0, 1: 1})

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            RootedTree({0: 0, 1: 9})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            RootedTree({0: 0, 1: 2, 2: 1})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RootedTree({})


class TestRing:
    def test_successor_wraps(self):
        ring = Ring(4)
        assert ring.successor(0) == 1
        assert ring.successor(3) == 0
        assert ring.predecessor(0) == 3

    def test_last(self):
        assert Ring(5).last == 4

    def test_nodes(self):
        assert Ring(3).nodes == [0, 1, 2]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Ring(1)


class TestGraph:
    def test_add_edge_symmetric(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert "b" in graph.neighbors("a")
        assert "a" in graph.neighbors("b")

    def test_no_self_loops(self):
        with pytest.raises(ValueError):
            Graph().add_edge("a", "a")

    def test_duplicate_edges_collapse(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.degree(0) == 1
        assert len(list(graph.edges())) == 1

    def test_connectivity(self):
        assert path_graph(4).is_connected()
        disconnected = Graph([0, 1, 2], [(0, 1)])
        assert not disconnected.is_connected()

    def test_bfs_levels(self):
        levels = path_graph(4).bfs_levels(0)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_unknown_root(self):
        with pytest.raises(KeyError):
            path_graph(3).bfs_levels(9)

    def test_max_degree(self):
        assert complete_graph(4).max_degree() == 3
        assert Graph().max_degree() == 0


class TestGenerators:
    def test_chain_shape(self):
        tree = chain_tree(5)
        assert len(tree) == 5
        assert tree.height() == 4

    def test_star_shape(self):
        tree = star_tree(5)
        assert len(tree) == 5
        assert tree.height() == 1
        assert len(tree.children(0)) == 4

    def test_balanced_tree_sizes(self):
        assert len(balanced_tree(2, 0)) == 1
        assert len(balanced_tree(2, 2)) == 7
        assert len(balanced_tree(3, 2)) == 13

    def test_random_tree_reproducible(self):
        a = random_tree(10, seed=5)
        b = random_tree(10, seed=5)
        assert {n: a.parent(n) for n in a.nodes} == {n: b.parent(n) for n in b.nodes}

    def test_random_tree_varies_with_seed(self):
        a = random_tree(10, seed=1)
        b = random_tree(10, seed=2)
        assert any(a.parent(n) != b.parent(n) for n in a.nodes)

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert all(graph.degree(node) == 2 for node in graph.nodes)
        assert graph.is_connected()

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_graph_edge_count(self):
        assert len(list(complete_graph(5).edges())) == 10

    def test_random_connected_graph_connected(self):
        for seed in range(5):
            assert random_connected_graph(8, 3, seed=seed).is_connected()

    def test_tree_as_graph(self):
        tree = balanced_tree(2, 2)
        graph = tree_as_graph(tree)
        assert len(graph) == len(tree)
        assert len(list(graph.edges())) == len(tree) - 1
        assert graph.is_connected()
