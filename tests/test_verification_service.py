"""The verification service and parallel batch runner.

Differential property: the cached/parallel service paths must return
verdicts identical to the plain sequential checkers on every protocol,
including when answered from the in-memory or on-disk cache.
"""

import pytest

from repro.core import TRUE, ValidationError, fingerprint_instance
from repro.protocols.library import build_case, case_names, library_tasks
from repro.verification import (
    VerificationService,
    VerificationTask,
    run_batch,
    verdicts_ok,
)
from repro.verification.checker import _check_tolerance as check_tolerance
from repro.verification.parallel import resolve_builder

# Small enough to model-check exhaustively in a unit-test run.
SMALL_CASES = [
    ("coloring-chain", 3),
    ("dijkstra-ring", 3),
    ("leader-election-star", 3),
    ("matching-cycle", 3),
    ("four-state-line", 4),
]

#: Verdict fields compared across execution paths (timing excluded).
FIELDS = (
    "ok",
    "implication_ok",
    "s_closure_ok",
    "t_closure_ok",
    "convergence_ok",
    "classification",
    "stabilizing",
    "total_states",
    "span_states",
    "bad_states",
)


def expected_record(name, size):
    program, invariant = build_case(name, size)
    report = check_tolerance(
        program, invariant, TRUE, program.state_space(), fairness="weak"
    )
    return {
        "ok": report.ok,
        "implication_ok": report.implication_ok,
        "s_closure_ok": report.s_closure.ok,
        "t_closure_ok": report.t_closure.ok,
        "convergence_ok": report.convergence.ok,
        "classification": report.classification,
        "stabilizing": report.stabilizing,
        "total_states": report.total_states,
        "span_states": report.convergence.span_states,
        "bad_states": report.convergence.bad_states,
    }


def trim(record):
    return {field: record[field] for field in FIELDS}


class TestServiceDifferential:
    @pytest.mark.parametrize("name,size", SMALL_CASES)
    def test_service_matches_sequential_checker(self, name, size):
        program, invariant = build_case(name, size)
        service = VerificationService()
        cold = service.verify_tolerance(program, invariant, case=name)
        assert not cold.cached and cold.cache_layer == ""
        assert trim(cold.record) == expected_record(name, size)
        # The full report is available on a computed verdict.
        assert cold.report is not None and cold.report.ok == cold.ok

    @pytest.mark.parametrize("name,size", SMALL_CASES)
    def test_cache_hit_is_identical(self, name, size):
        service = VerificationService()
        program, invariant = build_case(name, size)
        cold = service.verify_tolerance(program, invariant, case=name)
        # Rebuild the instance from scratch: fresh lambdas, same content.
        program2, invariant2 = build_case(name, size)
        warm = service.verify_tolerance(program2, invariant2, case=name)
        assert warm.cached and warm.cache_layer == "memory"
        assert warm.record == cold.record
        assert trim(warm.record) == expected_record(name, size)

    def test_stats_count_hits_and_misses(self):
        service = VerificationService()
        program, invariant = build_case("coloring-chain", 3)
        service.verify_tolerance(program, invariant)
        service.verify_tolerance(program, invariant)
        stats = service.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["records"] == 1


class TestDiskCache:
    def test_survives_fresh_service_instances(self, tmp_path):
        program, invariant = build_case("dijkstra-ring", 3)
        first = VerificationService(cache_dir=tmp_path)
        cold = first.verify_tolerance(program, invariant)
        assert not cold.cached
        assert list(tmp_path.glob("tolerance-*.json"))

        second = VerificationService(cache_dir=tmp_path)
        warm = second.verify_tolerance(program, invariant)
        assert warm.cached and warm.cache_layer == "disk"
        assert warm.record == cold.record
        # The disk layer has no report object to offer.
        assert warm.report is None
        assert warm.ok == cold.ok

    def test_corrupt_entry_recomputed(self, tmp_path):
        program, invariant = build_case("dijkstra-ring", 3)
        service = VerificationService(cache_dir=tmp_path)
        cold = service.verify_tolerance(program, invariant)
        path = next(tmp_path.glob("tolerance-*.json"))
        path.write_text("{ not json")
        fresh = VerificationService(cache_dir=tmp_path)
        recomputed = fresh.verify_tolerance(program, invariant)
        assert not recomputed.cached
        assert trim(recomputed.record) == trim(cold.record)

    def test_states_key_discriminates(self):
        program, invariant = build_case("dijkstra-ring", 3)
        a = fingerprint_instance(program, invariant, TRUE, extra=("w[0,2]",))
        b = fingerprint_instance(program, invariant, TRUE, extra=("w[0,4]",))
        assert a != b


class TestRunBatch:
    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_parallel_matches_sequential(self):
        tasks = library_tasks(names=["coloring-chain", "leader-election-star"])
        sequential = run_batch(tasks, workers=1)
        parallel = run_batch(tasks, workers=2)
        assert [trim(r) for r in sequential] == [trim(r) for r in parallel]
        assert [r["case"] for r in parallel] == [t.case for t in tasks]
        assert verdicts_ok(parallel)

    def test_shared_disk_cache_warms_second_run(self, tmp_path):
        tasks = library_tasks(names=["leader-election-star"])
        cold = run_batch(tasks, workers=2, cache_dir=str(tmp_path))
        warm = run_batch(tasks, workers=2, cache_dir=str(tmp_path))
        assert all(record["cached"] for record in warm)
        assert [trim(r) for r in cold] == [trim(r) for r in warm]

    def test_unpicklable_task_falls_back_to_sequential(self):
        # A lambda in args cannot cross the process boundary; run_batch
        # must detect that and execute in-process instead of crashing.
        task = VerificationTask(
            case="coloring-chain (n=3)",
            builder="repro.protocols.library:build_case",
            args=("coloring-chain", 3),
        )
        poisoned = VerificationTask(
            case="poison",
            builder="repro.protocols.library:build_case",
            args=(lambda: None,),
        )
        with pytest.raises(ValidationError):
            run_batch([poisoned, task], workers=2)
        # The fallback executed sequentially (the builder itself raised on
        # the bogus argument); a well-formed unpicklable-free batch works:
        assert run_batch([task], workers=2)[0]["ok"]

    def test_worker_failure_propagates(self):
        bad = VerificationTask(case="bad", builder="repro.protocols.library:nope")
        with pytest.raises(ValidationError):
            run_batch([bad], workers=2)


class TestResolveBuilder:
    def test_resolves(self):
        assert resolve_builder("repro.protocols.library:build_case") is build_case

    def test_malformed_reference(self):
        with pytest.raises(ValidationError):
            resolve_builder("no-colon-here")

    def test_missing_attribute(self):
        with pytest.raises(ValidationError):
            resolve_builder("repro.protocols.library:does_not_exist")


class TestLibrary:
    def test_case_names_cover_library(self):
        names = case_names()
        assert "dijkstra-ring" in names and len(names) >= 10

    def test_unknown_case_rejected(self):
        with pytest.raises(ValidationError):
            build_case("no-such-protocol")

    def test_library_tasks_filter(self):
        tasks = library_tasks(names=["mis-cycle"])
        assert len(tasks) == 1
        assert tasks[0].builder == "repro.protocols.library:build_case"
