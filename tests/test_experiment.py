"""Unit tests for replicated stabilization experiments."""

from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import chain_tree


def make_setup():
    tree = chain_tree(4)
    design = build_diffusing_design(tree)
    return design.program, diffusing_invariant(tree)


class TestStabilizationTrials:
    def test_all_trials_stabilize(self):
        program, invariant = make_setup()
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=10,
            max_steps=2000,
            base_seed=1,
        )
        assert stats.all_stabilized
        assert stats.stabilization_rate == 1.0
        assert stats.steps is not None
        assert stats.steps.count == 10
        assert stats.steps.maximum < 2000

    def test_reproducible_from_base_seed(self):
        program, invariant = make_setup()
        runs = [
            stabilization_trials(
                program,
                invariant,
                lambda seed: RandomScheduler(seed),
                trials=5,
                max_steps=2000,
                base_seed=77,
            )
            for _ in range(2)
        ]
        first = [t.steps_to_stabilize for t in runs[0].trials]
        second = [t.steps_to_stabilize for t in runs[1].trials]
        assert first == second

    def test_different_base_seeds_differ(self):
        program, invariant = make_setup()
        a = stabilization_trials(
            program, invariant, lambda s: RandomScheduler(s),
            trials=8, max_steps=2000, base_seed=1,
        )
        b = stabilization_trials(
            program, invariant, lambda s: RandomScheduler(s),
            trials=8, max_steps=2000, base_seed=2,
        )
        assert [t.seed for t in a.trials] != [t.seed for t in b.trials]

    def test_insufficient_budget_reported_honestly(self):
        program, invariant = make_setup()
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=6,
            max_steps=0,  # no budget: only initially-legitimate trials count
            base_seed=3,
        )
        assert stats.stabilized_count < len(stats.trials)

    def test_rounds_measured_when_requested(self):
        program, invariant = make_setup()
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=4,
            max_steps=2000,
            base_seed=5,
            measure_rounds=True,
        )
        assert stats.rounds is not None
        assert all(t.rounds is not None for t in stats.trials)

    def test_custom_initial_factory(self):
        program, invariant = make_setup()
        legitimate = {
            name: ("green" if name.startswith("c.") else False)
            for name in program.variables
        }
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=3,
            max_steps=10,
            base_seed=9,
            initial_factory=lambda rng: program.make_state(legitimate),
        )
        # Starting legitimate: stabilization time 0 in every trial.
        assert stats.all_stabilized
        assert stats.steps.maximum == 0
