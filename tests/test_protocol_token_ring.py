"""Tests for the token ring (paper Section 7.1) and Dijkstra's variant.

Covers: the Theorem 3 certificate for the paper's two-layer design; the
decomposition subtlety (constraints stronger than S); exactly-one
privilege closure; token circulation; exhaustive stabilization of the
K-state ring including the K >= N+1 boundary; simulation from corrupted
states.
"""

import random

import pytest

from repro.core import TRUE
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    build_token_ring_design,
    exactly_one_privilege,
    privileged_nodes,
    ring_invariant,
    window_states,
    x_var,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import Ring
from repro.verification import check_closure
from repro.verification.checker import _check_tolerance as check_tolerance


class TestPaperDesign:
    def test_theorem3_certificate(self):
        design = build_token_ring_design(4)
        report = design.validate(window_states(4, 0, 3))
        assert report.ok, report.describe()
        assert "Theorem 3" in report.selected.theorem
        assert "2 layers" in report.selected.theorem

    def test_deployed_program_is_papers_listing(self):
        program = build_token_ring_design(4).program
        names = [a.name for a in program.actions]
        assert names == ["initiate", "pass.1", "pass.2", "pass.3"]
        # The deployed pass actions carry the merged guard x.j != x.j+1.
        state = program.make_state({"x.0": 0, "x.1": 5, "x.2": 0, "x.3": 0})
        assert program.action("pass.2").enabled(state)  # x.1 > x.2
        state2 = program.make_state({"x.0": 0, "x.1": 0, "x.2": 5, "x.3": 0})
        assert program.action("pass.2").enabled(state2)  # x.1 < x.2 too

    def test_decomposition_implies_but_not_equivalent(self):
        # The paper picks constraints (all equalities) stronger than S.
        design = build_token_ring_design(4)
        report = design.candidate.check_decomposition(window_states(4, 0, 2))
        assert report.ok
        assert not report.equivalent

    def test_layers_share_the_merged_actions(self):
        design = build_token_ring_design(4)
        layer0_actions = {id(b.action) for b in design.layers[0]}
        layer1_actions = {id(b.action) for b in design.layers[1]}
        assert layer0_actions == layer1_actions

    def test_invariant_is_closed(self):
        design = build_token_ring_design(4)
        result = check_closure(
            ring_invariant(Ring(4)), design.program, window_states(4, 0, 3)
        )
        assert result.ok

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            build_token_ring_design(1)


class TestPrivileges:
    def test_exactly_one_privilege_in_invariant_states(self):
        ring = Ring(4)
        invariant = ring_invariant(ring)
        spec = exactly_one_privilege(ring)
        for state in window_states(4, 0, 3):
            if invariant(state):
                assert spec(state), state

    def test_all_equal_privileges_node_zero(self):
        ring = Ring(4)
        design = build_token_ring_design(4)
        state = design.program.make_state({x_var(j): 2 for j in range(4)})
        assert privileged_nodes(ring, state) == [0]

    def test_single_decrease_privileges_successor(self):
        ring = Ring(4)
        design = build_token_ring_design(4)
        state = design.program.make_state(
            {"x.0": 3, "x.1": 3, "x.2": 2, "x.3": 2}
        )
        assert privileged_nodes(ring, state) == [2]

    def test_corrupted_state_has_multiple_privileges(self):
        ring = Ring(4)
        design = build_token_ring_design(4)
        state = design.program.make_state(
            {"x.0": 1, "x.1": 3, "x.2": 0, "x.3": 1}
        )
        assert len(privileged_nodes(ring, state)) > 1


class TestTokenCirculation:
    def test_token_passes_around_the_ring(self):
        design = build_token_ring_design(4)
        program = design.program
        ring = Ring(4)
        initial = program.make_state({x_var(j): 0 for j in range(4)})
        result = run(program, initial, FirstEnabledScheduler(), max_steps=40)
        holders = [
            privileged_nodes(ring, state)[0]
            for state in result.computation.states()
        ]
        # Every node held the privilege, repeatedly.
        assert set(holders) == {0, 1, 2, 3}
        # Privilege moves to the successor each step.
        for before, after in zip(holders, holders[1:]):
            assert after in (before, ring.successor(before))

    def test_exactly_one_privilege_maintained(self):
        design = build_token_ring_design(5)
        program = design.program
        ring = Ring(5)
        spec = exactly_one_privilege(ring)
        initial = program.make_state({x_var(j): 7 for j in range(5)})
        result = run(program, initial, RandomScheduler(3), max_steps=200)
        assert all(spec(state) for state in result.computation.states())


class TestDijkstraRing:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_stabilizing_when_k_at_least_n(self, n):
        program, spec = build_dijkstra_ring(n, k=n)
        report = check_tolerance(
            program, spec, TRUE, program.state_space(), fairness="weak"
        )
        assert report.ok
        assert report.stabilizing

    def test_k_one_less_than_ring_size_fails(self):
        # The classic boundary: K = N (ring size N+1 = 4, K = 3)... the
        # known sufficient bound is K >= ring size - 1; one below that
        # breaks convergence.
        program, spec = build_dijkstra_ring(4, k=2)
        report = check_tolerance(
            program, spec, TRUE, program.state_space(), fairness="weak"
        )
        assert not report.ok

    def test_unfair_daemon_also_converges(self):
        # The Section 8 remark holds for the token ring too.
        program, spec = build_dijkstra_ring(3, k=3)
        report = check_tolerance(
            program, spec, TRUE, program.state_space(), fairness="none"
        )
        assert report.ok

    def test_simulation_from_corruption(self):
        program, spec = build_dijkstra_ring(6, k=7)
        rng = random.Random(31)
        for trial in range(8):
            result = run(
                program,
                program.random_state(rng),
                RandomScheduler(trial),
                max_steps=4000,
                target=spec,
                stop_on_target=True,
            )
            assert result.stabilized

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_dijkstra_ring(1, 3)
        with pytest.raises(ValueError):
            build_dijkstra_ring(3, 1)
