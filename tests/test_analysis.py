"""Unit tests for statistics and table rendering."""

import pytest

from repro.analysis import percentile, print_table, render_table, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_str_includes_stats(self):
        text = str(summarize([10.0]))
        assert "n=1" in text and "mean=10.0" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "steps"],
            [["ring", 12], ["tree", 345]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "345" in lines[3]
        # Separator row between header and data.
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_title_rendered(self):
        text = render_table(["a"], [[1]], title="E1")
        assert text.splitlines()[0] == "E1"
        assert text.splitlines()[1] == "=" * 2

    def test_bool_and_float_formatting(self):
        text = render_table(["ok", "ratio"], [[True, 0.12345], [False, 2.0]])
        assert "yes" in text and "no" in text
        assert "0.12" in text and "2.00" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_print_table(self, capsys):
        print_table(["a"], [[1]])
        captured = capsys.readouterr()
        assert "a" in captured.out
        assert captured.out.endswith("\n\n")
