"""Unit tests for variable domains."""

import random

import pytest

from repro.core import (
    BooleanDomain,
    EnumDomain,
    FiniteDomain,
    IntegerDomain,
    IntegerRangeDomain,
    ModularDomain,
    StateSpaceTooLargeError,
)


class TestFiniteDomain:
    def test_membership(self):
        domain = FiniteDomain([1, 2, 3])
        assert 2 in domain
        assert 4 not in domain

    def test_enumeration_preserves_order(self):
        domain = FiniteDomain(["b", "a", "c"])
        assert list(domain.values()) == ["b", "a", "c"]

    def test_duplicates_collapse(self):
        domain = FiniteDomain([1, 1, 2, 2, 1])
        assert list(domain.values()) == [1, 2]
        assert domain.size() == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FiniteDomain([])

    def test_is_finite(self):
        assert FiniteDomain([0]).is_finite

    def test_equality_by_content(self):
        assert FiniteDomain([1, 2]) == FiniteDomain([1, 2])
        assert FiniteDomain([1, 2]) != FiniteDomain([2, 1])

    def test_hashable(self):
        assert hash(FiniteDomain([1])) == hash(FiniteDomain([1]))

    def test_sample_stays_inside(self):
        domain = FiniteDomain(["x", "y"])
        rng = random.Random(0)
        for _ in range(20):
            assert domain.sample(rng) in domain


class TestBooleanDomain:
    def test_values(self):
        assert set(BooleanDomain().values()) == {False, True}

    def test_size(self):
        assert BooleanDomain().size() == 2


class TestEnumDomain:
    def test_names(self):
        domain = EnumDomain("green", "red")
        assert "green" in domain
        assert "blue" not in domain


class TestIntegerRangeDomain:
    def test_inclusive_bounds(self):
        domain = IntegerRangeDomain(-2, 2)
        assert -2 in domain
        assert 2 in domain
        assert 3 not in domain
        assert domain.size() == 5

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IntegerRangeDomain(3, 2)

    def test_sample_within_bounds(self):
        domain = IntegerRangeDomain(0, 10)
        rng = random.Random(1)
        assert all(0 <= domain.sample(rng) <= 10 for _ in range(50))


class TestModularDomain:
    def test_values(self):
        assert list(ModularDomain(3).values()) == [0, 1, 2]

    def test_succ_wraps(self):
        domain = ModularDomain(4)
        assert domain.succ(2) == 3
        assert domain.succ(3) == 0

    def test_modulus_one(self):
        assert list(ModularDomain(1).values()) == [0]
        assert ModularDomain(1).succ(0) == 0

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            ModularDomain(0)


class TestIntegerDomain:
    def test_contains_any_int(self):
        domain = IntegerDomain()
        assert -(10**12) in domain
        assert 10**12 in domain

    def test_excludes_bools_and_non_ints(self):
        domain = IntegerDomain()
        assert True not in domain
        assert 1.5 not in domain
        assert "1" not in domain

    def test_not_finite(self):
        assert not IntegerDomain().is_finite
        assert IntegerDomain().size() is None

    def test_enumeration_raises(self):
        with pytest.raises(StateSpaceTooLargeError):
            IntegerDomain().values()

    def test_sample_window(self):
        domain = IntegerDomain(sample_lo=5, sample_hi=7)
        rng = random.Random(0)
        assert all(5 <= domain.sample(rng) <= 7 for _ in range(30))

    def test_bad_window(self):
        with pytest.raises(ValueError):
            IntegerDomain(sample_lo=2, sample_hi=1)
