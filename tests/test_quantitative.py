"""The quantitative tolerance analysis: ``repro.quantitative``.

The load-bearing test here is differential: the CSR value iteration of
:func:`hitting_times` must agree with the historical dense linear solve
(:func:`dense_hitting_times`) within :data:`DENSE_AGREEMENT_RTOL` on
every library protocol, under both engines — including where both
report ``math.inf``. On top of that the suite pins:

- bit-parity of the pure-Python scalar sweep against the vectorized
  numpy sweep (``FORCE_SCALAR``);
- the adversarial game value dominating the random-daemon expectation;
- fault-rate weighting (named fault actions are downweighted);
- the :class:`QuantitativeReport` schema and Verdict conformance;
- structured refusals (``memory_budget``, ``fault_rate <= 0``,
  ``method="compositional"``) and the quantify-aware cache keys of the
  verification service.
"""

import json
import math

import pytest

import repro
import repro.quantitative as quantitative
from repro.core import (
    Action,
    Assignment,
    IntegerRangeDomain,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.core.errors import ValidationError
from repro.protocols.library import CASES, build_case
from repro.quantitative import (
    DEFAULT_FAULT_RATE,
    DENSE_AGREEMENT_RTOL,
    HAVE_NUMPY,
    QuantitativeReport,
    QuantitativeUnsupported,
    dense_hitting_times,
    hitting_times,
    quantify,
    worst_case_steps,
)
from repro.verification.service import VerificationService, tolerance_fingerprint

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")

#: Small instances of every registered protocol — the differential bar
#: is "every library protocol", kept at toy sizes so the dense reference
#: (O(states^3)) stays fast.
LIBRARY = [
    ("diffusing-chain", 3),
    ("diffusing-star", 3),
    ("dijkstra-ring", 3),
    ("coloring-chain", 3),
    ("leader-election-star", 3),
    ("spanning-tree-path", 3),
    ("matching-cycle", 3),
    ("mis-cycle", 3),
    ("mp-token-ring", 2),
    ("reset-chain", 2),
    ("graph-coloring-cycle", 3),
    ("four-state-line", 3),
]


def _case(name, size):
    program, invariant = build_case(name, size)
    states = list(program.state_space())
    return program, invariant, states


TARGET = Predicate(lambda s: s["n"] == 0, name="n = 0", support=("n",))


def _counter(actions, hi=3):
    return Program("q", [Variable("n", IntegerRangeDomain(0, hi))], actions)


def _dec():
    return Action(
        "dec",
        Predicate(lambda s: s["n"] > 0, name="n > 0", support=("n",)),
        Assignment({"n": lambda s: s["n"] - 1}),
        reads=("n",),
    )


def _fault_up(hi=2):
    return Action(
        "fault_up",
        Predicate(lambda s: s["n"] < hi, name=f"n < {hi}", support=("n",)),
        Assignment({"n": lambda s: s["n"] + 1}),
        reads=("n",),
    )


class TestLibraryDifferential:
    """CSR value iteration == dense solve, across the whole library."""

    @needs_numpy
    @pytest.mark.parametrize("name,size", LIBRARY, ids=[n for n, _ in LIBRARY])
    @pytest.mark.parametrize("engine", ["packed", "dict"])
    def test_matches_dense_solve(self, name, size, engine):
        program, invariant, states = _case(name, size)
        fast = hitting_times(program, states, invariant, engine=engine)
        dense = dense_hitting_times(program, states, invariant)
        assert len(fast.expectations) == len(dense.expectations)
        for got, want in zip(fast.expectations, dense.expectations):
            if math.isinf(want):
                assert math.isinf(got)
            else:
                assert got == pytest.approx(want, rel=DENSE_AGREEMENT_RTOL)
        assert fast.converged

    @pytest.mark.parametrize("name,size", LIBRARY, ids=[n for n, _ in LIBRARY])
    def test_adversarial_dominates_random_daemon(self, name, size):
        # The max-player game value is an upper bound on the uniform
        # average, state by state (inductively: max >= mean).
        program, invariant, states = _case(name, size)
        mean = hitting_times(program, states, invariant)
        worst = worst_case_steps(program, states, invariant)
        for value, bound in zip(mean.expectations, worst):
            if math.isinf(value):
                assert math.isinf(bound)
            else:
                assert bound >= value - 1e-9

    @pytest.mark.parametrize("name,size", LIBRARY[:4], ids=[n for n, _ in LIBRARY[:4]])
    def test_engines_agree(self, name, size):
        program, invariant, states = _case(name, size)
        packed = hitting_times(program, states, invariant, engine="packed")
        plain = hitting_times(program, states, invariant, engine="dict")
        for a, b in zip(packed.expectations, plain.expectations):
            if math.isinf(a) or math.isinf(b):
                assert math.isinf(a) and math.isinf(b)
            else:
                assert a == pytest.approx(b, rel=DENSE_AGREEMENT_RTOL)


class TestScalarVectorParity:
    """The pure-Python sweep is bit-compatible with the numpy sweep."""

    @needs_numpy
    @pytest.mark.parametrize(
        "name,size", LIBRARY[:6], ids=[n for n, _ in LIBRARY[:6]]
    )
    def test_bit_identical_expectations(self, name, size, monkeypatch):
        program, invariant, states = _case(name, size)
        vector = hitting_times(program, states, invariant)
        monkeypatch.setattr(quantitative, "FORCE_SCALAR", True)
        scalar = hitting_times(program, states, invariant)
        # Bit-compatible by construction (same accumulation order, same
        # stopping rule in python floats) — so ==, not approx.
        assert scalar.expectations == vector.expectations
        assert scalar.iterations == vector.iterations

    @needs_numpy
    def test_quantify_reports_agree_across_paths(self, monkeypatch):
        program, invariant, _ = _case("dijkstra-ring", 3)
        vector = quantify(program, invariant)
        monkeypatch.setattr(quantitative, "FORCE_SCALAR", True)
        scalar = quantify(program, invariant)
        skip = {"seconds", "path"}
        for key, value in vector.to_json().items():
            if key not in skip:
                assert scalar.to_json()[key] == value
        assert scalar.path != vector.path or scalar.path == "dict"


class TestInfinitePropagation:
    def test_doomed_states_are_inf_on_both_paths(self, monkeypatch):
        # From n=3 a deadlocking branch exists: stuck() disables
        # everything at n=2, so n>=2 never reaches the target.
        stuck_guard = Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",))
        drop = Action("drop", stuck_guard, Assignment({"n": 2}), reads=("n",))
        program = _counter([drop])
        result = hitting_times(program, program.state_space(), TARGET)
        assert result.expectation_of(State({"n": 0})) == 0.0
        assert math.isinf(result.expectation_of(State({"n": 2})))
        assert math.isinf(result.expectation_of(State({"n": 3})))
        assert math.isinf(result.maximum)
        assert not result.all_finite
        monkeypatch.setattr(quantitative, "FORCE_SCALAR", True)
        again = hitting_times(program, program.state_space(), TARGET)
        assert again.expectations == result.expectations

    @needs_numpy
    def test_dense_reference_agrees_on_inf(self):
        stuck_guard = Predicate(lambda s: s["n"] == 3, name="n = 3", support=("n",))
        drop = Action("drop", stuck_guard, Assignment({"n": 2}), reads=("n",))
        program = _counter([drop])
        states = list(program.state_space())
        fast = hitting_times(program, states, TARGET)
        dense = dense_hitting_times(program, states, TARGET)
        assert [math.isinf(x) for x in fast.expectations] == [
            math.isinf(x) for x in dense.expectations
        ]

    def test_finite_mean_with_infinite_worst_case(self):
        # A self-loop keeps the expectation finite (geometric, E = 2)
        # but hands the adversary an infinite schedule.
        at_one = Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",))
        spin = Action("spin", at_one, Assignment({"n": 1}), reads=("n",))
        exit_action = Action("exit", at_one, Assignment({"n": 0}), reads=("n",))
        program = _counter([spin, exit_action], hi=1)
        report = quantify(program, TARGET)
        assert report.mean_steps == pytest.approx(1.0)  # mean over {0, 1}
        assert math.isinf(report.worst_case_steps)
        assert report.doomed_states == 0
        assert not report.ok  # converges in expectation, not worst case

    def test_non_closed_state_set_is_rejected(self):
        program = _counter([_dec()])
        subset = [State({"n": 2}), State({"n": 1})]  # 1 -> 0 escapes
        with pytest.raises(ValueError, match="not closed"):
            hitting_times(program, subset, TARGET)


class TestFaultWeighting:
    def test_fault_prefix_is_downweighted(self):
        # dec vs fault_up at n=1: uniform E1 = 1 + (E0 + E2)/2 with
        # E2 = 1 + E1 gives E1 = 3; at rate 0.1 the fault edge carries
        # weight 0.1, so E1 = 1.2 (and E2 = E1 + 1).
        program = _counter([_dec(), _fault_up()], hi=2)
        report = quantify(program, TARGET, fault_rate=0.1)
        assert report.mean_steps == pytest.approx((0 + 3 + 4) / 3)
        assert report.weighted_mean_steps == pytest.approx((0 + 1.2 + 2.2) / 3)
        assert report.weighted_mean_steps < report.mean_steps
        assert report.fault_rate == 0.1

    def test_fault_actions_override_beats_name_prefix(self):
        program = _counter([_dec(), _fault_up()], hi=2)
        # Declaring *dec* the fault makes recovery the rare action.
        report = quantify(program, TARGET, fault_rate=0.1,
                          fault_actions=("dec",))
        assert report.weighted_mean_steps > report.mean_steps

    def test_no_fault_edges_means_weighted_equals_uniform(self):
        program = _counter([_dec()])
        report = quantify(program, TARGET)
        assert report.weighted_mean_steps == report.mean_steps

    def test_fault_rate_must_be_positive(self):
        program = _counter([_dec()])
        with pytest.raises(ValidationError, match="fault_rate"):
            quantify(program, TARGET, fault_rate=0.0)


class TestReport:
    def test_schema_and_verdict_protocol(self):
        program, invariant, _ = _case("coloring-chain", 3)
        report = quantify(program, invariant)
        assert isinstance(report, repro.Verdict)
        assert report.ok and bool(report)
        payload = report.to_json()
        assert list(payload) == [
            "case", "ok", "engine", "path", "states", "target_states",
            "span_states", "doomed_states", "escape_probability",
            "mean_steps", "max_steps", "worst_case_steps",
            "weighted_mean_steps", "fault_rate", "score", "iterations",
            "converged", "tol", "seconds",
        ]
        assert QuantitativeReport.from_record(payload) == report
        assert 0.0 <= report.score < 1.0
        assert "score" in report.describe()
        assert payload == json.loads(json.dumps(payload))

    def test_exports_are_public(self):
        assert repro.quantify is quantify
        assert repro.hitting_times is hitting_times
        assert repro.QuantitativeReport is QuantitativeReport
        assert "quantify" in repro.__all__
        assert "hitting_times" in repro.__all__
        assert "QuantitativeReport" in repro.__all__

    def test_span_escape_probability(self):
        # Within the full space the span is everything, so nothing
        # escapes; a genuine fault span exercises the escape term.
        program, invariant, states = _case("dijkstra-ring", 3)
        report = quantify(program, invariant, states=states)
        assert report.escape_probability == 0.0
        # With no fault span supplied the span defaults to TRUE, so it
        # covers the whole space.
        assert report.span_states == report.states
        assert 0 < report.target_states < report.states


class TestShardedAndBudgeted:
    @needs_numpy
    def test_sharded_full_space_matches_enumerated(self):
        program, invariant, states = _case("dijkstra-ring", 3)
        sharded = quantify(program, invariant, shards=2)
        enumerated = quantify(program, invariant, states=states)
        assert sharded.path.startswith("vector")
        assert sharded.states == enumerated.states
        assert sharded.mean_steps == pytest.approx(
            enumerated.mean_steps, rel=DENSE_AGREEMENT_RTOL
        )
        assert sharded.worst_case_steps == enumerated.worst_case_steps

    @needs_numpy
    def test_memory_budget_refusal_is_structured(self):
        program, invariant, _ = _case("dijkstra-ring", 3)
        with pytest.raises(QuantitativeUnsupported, match="memory_budget"):
            quantify(program, invariant, shards=1, memory_budget=64)

    def test_dense_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(quantitative, "_np", None)
        monkeypatch.setattr(quantitative, "HAVE_NUMPY", False)
        program = _counter([_dec()])
        with pytest.raises(QuantitativeUnsupported, match="numpy"):
            dense_hitting_times(program, list(program.state_space()), TARGET)


class TestServiceIntegration:
    def test_quantify_key_is_distinct(self):
        program, invariant, _ = _case("coloring-chain", 3)
        plain = tolerance_fingerprint(
            program, invariant, None, fairness="weak", method="full"
        )
        quant = tolerance_fingerprint(
            program, invariant, None, fairness="weak", method="full",
            quantify=True,
        )
        other_rate = tolerance_fingerprint(
            program, invariant, None, fairness="weak", method="full",
            quantify=True, fault_rate=0.5,
        )
        assert len({plain, quant, other_rate}) == 3

    def test_facade_attaches_quantitative_report(self):
        service = VerificationService()
        verdict = repro.verify("coloring-chain", size=3, quantify=True,
                               service=service)
        assert verdict.ok
        report = verdict.quantitative
        assert isinstance(report, QuantitativeReport)
        assert report.ok
        assert "quantitative tolerance" in verdict.describe()
        # The plain verdict neither collides with nor inherits it.
        plain = repro.verify("coloring-chain", size=3, service=service)
        assert plain.cached is False
        assert plain.quantitative is None
        again = repro.verify("coloring-chain", size=3, quantify=True,
                             service=service)
        assert again.cached is True
        assert again.quantitative == report

    def test_quantitative_survives_the_disk_cache(self, tmp_path):
        first = VerificationService(cache_dir=tmp_path)
        hot = repro.verify("coloring-chain", size=3, quantify=True,
                           service=first)
        second = VerificationService(cache_dir=tmp_path)
        warm = repro.verify("coloring-chain", size=3, quantify=True,
                            service=second)
        assert warm.cached and warm.cache_layer == "disk"
        assert warm.quantitative == hot.quantitative

    def test_compositional_is_rejected(self):
        with pytest.raises(ValidationError, match="compositional"):
            repro.verify("diffusing-chain", size=3, quantify=True,
                         method="compositional",
                         service=VerificationService())

    def test_record_roundtrips_infinity(self, tmp_path):
        # json.dump writes the Infinity literal; the disk tier must hand
        # back math.inf, not a string.
        at_one = Predicate(lambda s: s["n"] == 1, name="n = 1", support=("n",))
        spin = Action("spin", at_one, Assignment({"n": 1}), reads=("n",))
        exit_action = Action("exit", at_one, Assignment({"n": 0}), reads=("n",))
        program = _counter([spin, exit_action], hi=1)
        service = VerificationService(cache_dir=tmp_path)
        service.verify_tolerance(program, TARGET, quantify=True)
        warm = VerificationService(cache_dir=tmp_path).verify_tolerance(
            program, TARGET, quantify=True
        )
        assert warm.cached
        assert math.isinf(warm.quantitative.worst_case_steps)
