"""Full T-tolerance verification.

Combines the closure and convergence checkers into the paper's definition
(Section 3): a program ``p`` is **T-tolerant for S** iff

- Closure: both ``S`` and ``T`` are closed in ``p``;
- Convergence: every computation of ``p`` from a ``T``-state reaches an
  ``S``-state;

and additionally checks the standing assumption ``S => T``. The report
classifies the tolerance as *masking* (``S == T`` extensionally),
*nonmasking*, and flags the *stabilizing* special case (``T`` holds at
every state of the instance).
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.verification.closure import ClosureResult, check_closure
from repro.verification.convergence import ConvergenceResult, check_convergence
from repro.verification.explorer import build_transition_system, validate_engine

__all__ = ["ToleranceReport", "check_tolerance"]


@dataclass(frozen=True)
class ToleranceReport:
    """The verdict of a full T-tolerant-for-S verification."""

    ok: bool
    implication_ok: bool
    s_closure: ClosureResult
    t_closure: ClosureResult
    convergence: ConvergenceResult
    classification: str  # "masking", "nonmasking"
    stabilizing: bool
    total_states: int

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        verdict = "T-tolerant for S" if self.ok else "NOT T-tolerant for S"
        kind = self.classification + (" (stabilizing)" if self.stabilizing else "")
        lines = [
            f"{verdict} [{kind}] over {self.total_states} states",
            f"  S => T: {'ok' if self.implication_ok else 'FAIL'}",
            f"  closure of S: {'ok' if self.s_closure.ok else 'FAIL'}",
            f"  closure of T: {'ok' if self.t_closure.ok else 'FAIL'}",
            f"  convergence: {self.convergence.describe()}",
        ]
        for result in (self.s_closure, self.t_closure):
            for witness in result.witnesses:
                lines.append(f"    {result.predicate_name}: {witness.describe()}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """JSON-able summary (the same fields the service records)."""
        return {
            "ok": self.ok,
            "implication_ok": self.implication_ok,
            "s_closure_ok": self.s_closure.ok,
            "t_closure_ok": self.t_closure.ok,
            "convergence_ok": self.convergence.ok,
            "classification": self.classification,
            "stabilizing": self.stabilizing,
            "total_states": self.total_states,
            "span_states": self.convergence.span_states,
            "bad_states": self.convergence.bad_states,
            "fairness": self.convergence.fairness,
        }


def check_tolerance(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
    states: Iterable[State] | None = None,
    *,
    fairness: str = "weak",
    engine: str = "auto",
    max_states: int | None = None,
    shards: int | None = None,
    memory_budget: int | None = None,
    tracer=None,
    metrics=None,
) -> ToleranceReport:
    """Deprecated alias for :func:`repro.verify` — see :mod:`repro.api`.

    Still fully functional and returns the legacy
    :class:`ToleranceReport`; new code should call :func:`repro.verify`,
    which adds caching, lint prechecks and the compositional method.
    """
    warnings.warn(
        "check_tolerance() is deprecated; use the repro.verify() facade "
        "(see docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_tolerance(
        program,
        invariant,
        fault_span,
        states,
        fairness=fairness,
        engine=engine,
        max_states=max_states,
        shards=shards,
        memory_budget=memory_budget,
        tracer=tracer,
        metrics=metrics,
    )


def _check_tolerance(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
    states: Iterable[State] | None = None,
    *,
    fairness: str = "weak",
    engine: str = "auto",
    max_states: int | None = None,
    shards: int | None = None,
    memory_budget: int | None = None,
    tracer=None,
    metrics=None,
) -> ToleranceReport:
    """Verify that ``program`` is ``fault_span``-tolerant for ``invariant``.

    Args:
        program: The augmented program (closure plus convergence actions).
        invariant: ``S``.
        fault_span: ``T``.
        states: The full state set of the finite instance (or any superset
            of the ``T``-extension); the checker filters to ``T``-states
            for the convergence phase. ``None`` means the program's full
            state space — the packed engine then sweeps it in a single
            enumeration pass without materializing ``State`` objects.
        fairness: Computation model for convergence (``"weak"`` is the
            paper's; ``"none"`` checks the stronger unfair guarantee).
        max_states: Full-space size guard (``None`` means
            :data:`~repro.core.state.DEFAULT_MAX_STATES`). Threaded to
            both engines with identical comparisons and messages, so
            dict and packed agree — verdict or error — at the boundary.
        shards: Shard count for the packed engine's vectorized full-space
            sweep (``None`` = auto). Never changes results.
        memory_budget: Peak-bytes target for the packed engine's
            full-space sweep; above it the streaming count-only path
            runs (see :func:`~repro.kernel.verify.check_tolerance_packed`).
            Never changes results; ignored by the dict engine.
        engine: ``"packed"`` runs the flat-array kernel
            (:mod:`repro.kernel`) and raises
            :class:`~repro.kernel.codec.PackedUnsupported` when the
            instance cannot be packed; ``"dict"`` forces the original
            dict-backed path; ``"auto"`` (default) tries packed, falls
            back to dict. Verdicts and counterexamples are identical
            either way.
        tracer: Optional :class:`~repro.observability.trace.Tracer`
            receiving ``kernel.build`` events (packed engine only).
        metrics: Optional metrics registry receiving ``kernel.*``
            counters (packed engine only).
    """
    validate_engine(engine)
    if engine != "dict":
        from repro.kernel.codec import PackedUnsupported
        from repro.kernel.verify import check_tolerance_packed

        if states is not None:
            states = list(states)
        try:
            return check_tolerance_packed(
                program,
                invariant,
                fault_span,
                states,
                fairness=fairness,
                max_states=max_states,
                shards=shards,
                memory_budget=memory_budget,
                tracer=tracer,
                metrics=metrics,
            )
        except PackedUnsupported:
            if engine == "packed":
                raise
    if states is not None:
        all_states = list(states)
    else:
        from repro.core.state import DEFAULT_MAX_STATES

        limit = DEFAULT_MAX_STATES if max_states is None else max_states
        all_states = list(program.state_space(max_states=limit))
    implication_ok = all(
        fault_span(state) for state in all_states if invariant(state)
    )
    s_closure = check_closure(invariant, program, all_states)
    t_closure = check_closure(fault_span, program, all_states)

    span_states = [state for state in all_states if fault_span(state)]
    system = build_transition_system(program, span_states, engine="dict")
    if system.escapes:
        if t_closure.ok:
            # T-states stepping outside the supplied set even though T is
            # closed: the caller gave a strict subset of the instance.
            raise ValueError(
                "the supplied states do not contain every successor of a "
                "T-state; pass the full extension of T on this instance"
            )
        # T is not closed, so convergence relative to T is undefined;
        # report it failed without a cycle counterexample.
        convergence = ConvergenceResult(
            ok=False,
            fairness=fairness,
            span_states=len(span_states),
            bad_states=sum(1 for state in span_states if not invariant(state)),
        )
    else:
        convergence = check_convergence(
            program, span_states, invariant, fairness=fairness, system=system
        )

    masking = all(invariant(state) == fault_span(state) for state in all_states)
    stabilizing = len(span_states) == len(all_states)
    return ToleranceReport(
        ok=implication_ok and s_closure.ok and t_closure.ok and convergence.ok,
        implication_ok=implication_ok,
        s_closure=s_closure,
        t_closure=t_closure,
        convergence=convergence,
        classification="masking" if masking else "nonmasking",
        stabilizing=stabilizing,
        total_states=len(all_states),
    )
