"""The verification service: cached exhaustive verification.

Every benchmark and the CLI used to rebuild full transition systems and
re-run closure/convergence/theorem checks from scratch for every
instance. This module packages those checks behind a service with a
content-addressed cache so repeated verification of the same instance —
within a process, across processes, and across sessions — is answered
from the cache instead of recomputed:

- instances are keyed by :func:`repro.core.fingerprint_instance`
  (structure plus behavioural probe), so a cache entry survives
  rebuilding the same protocol and is invalidated by any change to its
  variables, domains, guards or statements;
- **in-memory**: built :class:`TransitionSystem` objects and full
  verdict reports are memoized per service instance;
- **on-disk** (optional ``cache_dir``): JSON verdict records persist
  across processes, which is what makes the parallel worker pool in
  :mod:`repro.verification.parallel` and cache-warm benchmark reruns
  cheap. Transition systems are not persisted — they embed program
  callables and are process-local.

The historical liveness analysis that used to live in this module moved
to :mod:`repro.verification.liveness`; its names are re-exported here
for compatibility.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.design import NonmaskingDesign
from repro.core.errors import ValidationError
from repro.core.fingerprint import (
    fingerprint_instance,
    fingerprint_predicate,
    fingerprint_program,
)
from repro.core.predicates import TRUE, Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.observability import events as ev
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import RunReport
from repro.observability.tracer import Tracer
from repro.quantitative import DEFAULT_FAULT_RATE, QuantitativeReport
from repro.verification.checker import ToleranceReport, _check_tolerance
from repro.verification.explorer import (
    TransitionSystem,
    build_transition_system,
    validate_engine,
)
from repro.verification.store import VerdictStore

__all__ = [
    "METHODS",
    "ServiceVerdict",
    "VerificationService",
    "tolerance_fingerprint",
    "validate_method",
]

#: Valid values of the ``method`` switch on :meth:`verify_tolerance`.
METHODS = ("auto", "full", "compositional")

#: The historical liveness analysis moved to
#: :mod:`repro.verification.liveness`; importing its names from this
#: module is deprecated.
_MOVED_TO_LIVENESS = (
    "RecurrentClass",
    "ServiceReport",
    "check_service",
    "recurrent_classes",
)


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_LIVENESS:
        import warnings

        warnings.warn(
            f"importing {name} from repro.verification.service is "
            f"deprecated; import it from repro.verification.liveness "
            "(or the repro.verification package)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.verification import liveness

        return getattr(liveness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def tolerance_fingerprint(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate | None = None,
    *,
    fairness: str = "weak",
    method: str = "full",
    states_extra: tuple[str, ...] = ("states=full",),
    quantify: bool = False,
    fault_rate: float = DEFAULT_FAULT_RATE,
) -> str:
    """The cache key of one tolerance verdict, as the service computes it.

    Exposed so out-of-process callers (the daemon, pool orchestration)
    can address the same cache entries the service reads and writes —
    ``method`` must be the *resolved* method (``"full"`` or
    ``"compositional"``), never ``"auto"``. A quantify-carrying record
    embeds the quantitative report, so ``quantify`` (and the
    ``fault_rate`` it was computed under) are part of the key: plain and
    quantitative verdicts of the same instance never collide.
    """
    extra = states_extra + (f"method={method}",)
    if quantify:
        extra = extra + (f"quantify=rate{fault_rate!r}",)
    return fingerprint_instance(
        program, invariant,
        fault_span if fault_span is not None else TRUE,
        fairness=fairness,
        extra=extra,
    )


def validate_method(method: str) -> None:
    """Raise :class:`~repro.core.errors.ValidationError` unless ``method``
    is one of :data:`METHODS`."""
    if method not in METHODS:
        raise ValidationError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )


@dataclass(frozen=True)
class ServiceVerdict:
    """The service's answer to one tolerance-verification request.

    ``record`` is the JSON-able verdict summary (the unit of caching);
    ``report`` is the full :class:`ToleranceReport` with witnesses and
    counterexamples, available unless the verdict came from the on-disk
    cache of another process.
    """

    record: dict[str, Any]
    report: ToleranceReport | None
    cached: bool
    #: "" (computed), "memory" or "disk".
    cache_layer: str
    #: Wall-clock seconds spent answering *this* call.
    seconds: float

    @property
    def ok(self) -> bool:
        return bool(self.record["ok"])

    @property
    def quantitative(self) -> QuantitativeReport | None:
        """The attached quantitative report (``quantify=True`` verdicts).

        Rebuilt from the cached record, so it is available whether the
        verdict was computed now or answered from any cache layer.
        """
        data = self.record.get("quantitative")
        if data is None:
            return None
        return QuantitativeReport.from_record(data)

    def __bool__(self) -> bool:
        return self.ok

    def to_json(self) -> dict[str, Any]:
        """JSON-able verdict: the cached record plus call provenance."""
        return {
            **self.record,
            "cached": self.cached,
            "cache_layer": self.cache_layer,
            "call_seconds": self.seconds,
        }

    def describe(self) -> str:
        suffix = f" [cache: {self.cache_layer}]" if self.cached else ""
        if self.record.get("method") == "compositional":
            r = self.record
            if r.get("status") == "refused":
                return (
                    f"compositional certification REFUSED for {r['case']}: "
                    f"{r['refusal']}"
                )
            kind = r["classification"] + (
                " (stabilizing)" if r["stabilizing"] else ""
            )
            return (
                f"T-tolerant for S [{kind}] by {r['theorem']}{suffix}\n"
                f"  compositional: {r['obligations']} obligations over "
                f"{r['edges']} edges, max projection {r['max_projection']} "
                f"of {r['total_states']} states"
            )
        if "lint" in self.record:
            lint = self.record["lint"]
            counts = lint["counts"]
            lines = [
                f"lint precheck FAILED for {self.record['case']}: "
                f"{counts['error']} error(s), {counts['warning']} warning(s) — "
                "state-space verification was not attempted",
            ]
            lines.extend(
                f"  {d['code']} {d['severity']}: {d['subject']}: {d['message']}"
                for d in lint["diagnostics"]
            )
            return "\n".join(lines)
        if self.report is not None:
            return self.report.describe() + suffix + self._quantitative_suffix()
        r = self.record
        verdict = "T-tolerant for S" if r["ok"] else "NOT T-tolerant for S"
        kind = r["classification"] + (" (stabilizing)" if r["stabilizing"] else "")
        return "\n".join(
            [
                f"{verdict} [{kind}] over {r['total_states']} states{suffix}",
                f"  S => T: {'ok' if r['implication_ok'] else 'FAIL'}",
                f"  closure of S: {'ok' if r['s_closure_ok'] else 'FAIL'}",
                f"  closure of T: {'ok' if r['t_closure_ok'] else 'FAIL'}",
                f"  convergence: "
                f"{'converges' if r['convergence_ok'] else 'does NOT converge'} "
                f"under {r['fairness']!r} fairness "
                f"({r['span_states']} span states, "
                f"{r['bad_states']} outside target)",
            ]
        ) + self._quantitative_suffix()

    def _quantitative_suffix(self) -> str:
        quantitative = self.quantitative
        if quantitative is None:
            return ""
        return "\n" + quantitative.describe()


def _tolerance_record(
    report: ToleranceReport, *, case: str, fairness: str, engine: str, seconds: float
) -> dict[str, Any]:
    return {
        "case": case,
        "engine": engine,
        "method": "full",
        "ok": report.ok,
        "implication_ok": report.implication_ok,
        "s_closure_ok": report.s_closure.ok,
        "t_closure_ok": report.t_closure.ok,
        "convergence_ok": report.convergence.ok,
        "classification": report.classification,
        "stabilizing": report.stabilizing,
        "total_states": report.total_states,
        "span_states": report.convergence.span_states,
        "bad_states": report.convergence.bad_states,
        "fairness": fairness,
        "seconds": seconds,
    }


def _compositional_record(
    certificate, *, case: str, fairness: str, seconds: float
) -> dict[str, Any]:
    counts = {"enumerated": 0, "disjoint-writes": 0, "trivial": 0, "static": 0}
    for obligation in certificate.obligations:
        counts[obligation.discharged_by] += 1
    return {
        "case": case,
        "method": "compositional",
        "ok": certificate.ok,
        "status": certificate.status,
        "refusal": certificate.refusal,
        "theorem": certificate.theorem,
        "classification": certificate.classification,
        "stabilizing": certificate.stabilizing,
        "obligations": len(certificate.obligations),
        "enumerated": counts["enumerated"],
        "vacuous": counts["disjoint-writes"],
        "trivial": counts["trivial"],
        "static": counts["static"],
        "edges": certificate.edges,
        "max_projection": certificate.max_projection,
        "total_states": certificate.total_states,
        "fairness": fairness,
        "seconds": seconds,
    }


class _CompositionalRefused(Exception):
    """Internal: the certifier refused — never cache, maybe fall back."""

    def __init__(self, certificate) -> None:
        super().__init__(certificate.refusal)
        self.certificate = certificate


class VerificationService:
    """Cached closure/convergence/theorem verification.

    One service instance owns one in-memory cache; pass ``cache_dir`` to
    add a persistent JSON layer shared between service instances and
    between processes (the parallel worker pool relies on this).

    Observability is opt-in: pass ``tracer=`` to emit ``cache.hit`` /
    ``cache.miss`` events, and ``metrics=`` (a
    :class:`~repro.observability.MetricsRegistry`) to aggregate cache
    counters and per-verdict wall-clock timers — both default to
    ``None`` and cost a single ``is not None`` check per cache lookup
    when unused. The plain integer counters (``hits``, ``misses`` and
    the per-layer splits) are always maintained; :meth:`stats` and
    :meth:`report` expose them.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        store: VerdictStore | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if store is not None:
            self.store: VerdictStore | None = store
        elif cache_dir is not None:
            # Flat, unbounded, no warm tier: byte-identical to the
            # historical layout, so pool workers sharing a cache_dir
            # keep interoperating across versions. No tracer/metrics —
            # the service's own cache.hit/cache.miss layer already
            # covers this store one-to-one; ``store.*`` events belong
            # to explicitly constructed (daemon-grade) stores.
            self.store = VerdictStore(cache_dir, shards=0, warm_capacity=0)
        else:
            self.store = None
        self.cache_dir = self.store.root if self.store is not None else None
        self.tracer = tracer
        self.metrics = metrics
        self._records: dict[tuple[str, str], dict[str, Any]] = {}
        self._reports: dict[str, ToleranceReport] = {}
        self._systems: dict[str, TransitionSystem] = {}
        self.hits = 0
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        #: Wall-clock seconds spent actually computing verdict records
        #: (cache misses) vs. answering from a cache layer.
        self.seconds_computing = 0.0
        self.seconds_cached = 0.0

    # ------------------------------------------------------------------
    # Generic record memoization (in-memory + on-disk JSON)
    # ------------------------------------------------------------------

    def _note_hit(self, kind: str, key: str, layer: str) -> None:
        self.hits += 1
        if layer == "memory":
            self.hits_memory += 1
        else:
            self.hits_disk += 1
        if self.metrics is not None:
            self.metrics.counter("cache.hit").add()
            self.metrics.counter(f"cache.hit.{layer}").add()
        if self.tracer is not None:
            self.tracer.emit(
                ev.CACHE_HIT, record_kind=kind, key=key[:16], layer=layer
            )

    def _note_verdict(self, operation: str, layer: str, seconds: float) -> None:
        """Fold one answered request into the wall-clock aggregates."""
        if layer:
            self.seconds_cached += seconds
        else:
            self.seconds_computing += seconds
        if self.metrics is not None:
            suffix = "cached" if layer else "computed"
            self.metrics.timer(f"{operation}.{suffix}").record(seconds)

    def _note_miss(self, kind: str, key: str) -> None:
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.miss").add()
        if self.tracer is not None:
            self.tracer.emit(ev.CACHE_MISS, record_kind=kind, key=key[:16])

    def memo(
        self,
        kind: str,
        key: str,
        compute: Callable[[], dict[str, Any]],
    ) -> tuple[dict[str, Any], str]:
        """The cached record for ``(kind, key)``, computing it on a miss.

        Returns ``(record, layer)`` where ``layer`` is ``""`` when the
        record was computed now, else ``"memory"`` or ``"disk"``.
        """
        memo_key = (kind, key)
        record = self._records.get(memo_key)
        if record is not None:
            self._note_hit(kind, key, "memory")
            return record, "memory"
        if self.store is not None:
            record = self.store.get(kind, key)
            if record is not None:
                self._records[memo_key] = record
                self._note_hit(kind, key, "disk")
                return record, "disk"
        self._note_miss(kind, key)
        record = compute()
        self._records[memo_key] = record
        if self.store is not None:
            # Atomic tempfile + os.replace publication inside the store:
            # concurrent workers race benignly and an interrupted writer
            # can never leave a partial (cache-poisoning) entry behind.
            self.store.put(kind, key, record)
        return record, ""

    def cached_record(
        self, kind: str, key: str, *, count_miss: bool = False
    ) -> tuple[dict[str, Any], str] | None:
        """Peek the cache for ``(kind, key)`` without ever computing.

        Returns ``(record, layer)`` on a hit (counting it as usual), or
        ``None`` — the daemon uses this to answer warm requests inline
        and route only true misses onto the worker pool. A miss is
        normally silent (probing several candidate keys for one request
        must not inflate the counters); pass ``count_miss=True`` on the
        last probe so each fully-missed request counts exactly once.
        """
        memo_key = (kind, key)
        record = self._records.get(memo_key)
        if record is not None:
            self._note_hit(kind, key, "memory")
            return record, "memory"
        if self.store is not None:
            record = self.store.get(kind, key)
            if record is not None:
                self._records[memo_key] = record
                self._note_hit(kind, key, "disk")
                return record, "disk"
        if count_miss:
            self._note_miss(kind, key)
        return None

    def ingest(self, kind: str, key: str, record: dict[str, Any]) -> None:
        """Adopt an externally computed ``record`` into every cache layer.

        The daemon verifies cache misses on the process pool (whose
        workers cannot share this service's memory); ingesting the
        returned records makes later duplicates memory hits here and
        persists them through the store.
        """
        self._records[(kind, key)] = record
        if self.store is not None:
            self.store.put(kind, key, record)

    # ------------------------------------------------------------------
    # Transition systems
    # ------------------------------------------------------------------

    def transition_system(
        self,
        program: Program,
        states: Iterable[State],
        *,
        states_key: str,
        engine: str = "auto",
    ) -> TransitionSystem:
        """The (memoized) transition graph of ``program`` over ``states``.

        ``states_key`` discriminates different state sets of the same
        program (e.g. ``"full"`` vs a window label); the full key also
        covers the program fingerprint. ``engine`` selects the packed or
        dict representation (see :func:`build_transition_system`) and is
        part of the memo key — the two representations are behaviourally
        interchangeable but not the same object shape.
        """
        key = f"{fingerprint_program(program)}:{states_key}:{engine}"
        system = self._systems.get(key)
        if system is None:
            system = build_transition_system(program, states, engine=engine)
            self._systems[key] = system
        return system

    # ------------------------------------------------------------------
    # Tolerance verification
    # ------------------------------------------------------------------

    def verify_tolerance(
        self,
        program: Program,
        invariant: Predicate,
        fault_span: Predicate | None = None,
        states: Iterable[State] | None = None,
        *,
        fairness: str = "weak",
        engine: str = "auto",
        method: str = "auto",
        design: NonmaskingDesign | None = None,
        case: str | None = None,
        states_key: str | None = None,
        lint: bool = False,
        max_states: int | None = None,
        shards: int | None = None,
        memory_budget: int | None = None,
        quantify: bool = False,
        fault_rate: float = DEFAULT_FAULT_RATE,
    ) -> ServiceVerdict:
        """Cached tolerance verification (the engine behind :func:`repro.verify`).

        Args:
            program: The augmented program.
            invariant: ``S``.
            fault_span: ``T``; defaults to ``TRUE`` (stabilization).
            states: The instance's state set; defaults to the full state
                space. **Pass ``states_key`` whenever this is a proper
                subset** — the default discriminator is only the set's
                size, which cannot tell two different windows apart.
            fairness: Computation model for convergence.
            engine: ``"packed"``, ``"dict"`` or ``"auto"`` (see
                :func:`~repro.verification.checker.check_tolerance`). The
                engine is **not** part of the cache key — both engines
                produce identical verdicts — but the record notes which
                one computed it under ``record["engine"]``.
            method: ``"full"`` explores the product state space;
                ``"compositional"`` certifies from per-edge projections
                (:mod:`repro.compositional` — requires ``design`` and the
                full state space, and returns a failed, *uncached*
                verdict naming the refused obligation when the theorems
                do not apply); ``"auto"`` (default) tries compositional
                when a design is available and silently falls back to
                full exploration on refusal. The method **is** part of
                the cache key — the two methods certify through different
                evidence — and is recorded under ``record["method"]``.
            design: The :class:`~repro.core.design.NonmaskingDesign` the
                instance came from; enables the compositional method.
                ``design.program`` must be the same instance as
                ``program``.
            case: Display name recorded in the verdict.
            states_key: Cache discriminator for the state set.
            lint: Run the :mod:`repro.staticcheck` passes first and, on
                any error-severity finding, short-circuit with a failed
                verdict carrying the lint report under ``record["lint"]``
                instead of exploring the state space. The lint costs
                O(actions x probe states); a failed precheck is never
                cached (fixing the declarations must retrigger it).
            max_states: Full-space size guard threaded to both engines
                (``None`` means the library default). Like the engine, it
                is not part of the cache key: it never changes a verdict,
                only whether oversize instances error out before one.
            shards: Shard count for the packed engine's vectorized
                full-space sweep; ``None`` picks automatically (one shard
                until the space is large enough to amortize worker
                startup). Sharded and unsharded runs are bit-identical,
                so this is not part of the cache key either.
            memory_budget: Peak-bytes target for the packed engine's
                full-space sweep; above it the streaming count-only path
                runs (see
                :func:`~repro.kernel.verify.check_tolerance_packed`).
                Like ``shards``, it is a memory/latency trade that never
                changes verdicts, so it is not part of the cache key.
            quantify: Also run the quantitative tolerance analysis
                (:func:`repro.quantitative.quantify`) over the instance
                and attach its report under ``record["quantitative"]``
                (surfaced as :attr:`ServiceVerdict.quantitative`).
                Quantification needs the explored state space, so it
                composes with full exploration only: ``method="auto"``
                resolves to ``"full"`` and an explicit
                ``method="compositional"`` is a
                :class:`~repro.core.errors.ValidationError`. Quantified
                records carry strictly more than plain ones, so
                ``quantify`` (with its ``fault_rate``) **is** part of
                the cache key.
            fault_rate: Relative fault-action weight for the weighted
                convergence expectation (quantify only).
        """
        validate_engine(engine)
        validate_method(method)
        if quantify and method == "compositional":
            raise ValidationError(
                "quantify=True requires state-space exploration; it cannot "
                "be combined with method='compositional' (use method='full' "
                "or 'auto')"
            )
        if method == "compositional" and design is None:
            raise ValidationError(
                "method='compositional' requires the design= argument; "
                "only a NonmaskingDesign carries the constraint graph the "
                "certifier decomposes over"
            )
        span = fault_span if fault_span is not None else TRUE
        started = time.perf_counter()
        if lint:
            from repro.staticcheck import lint_program

            lint_report = lint_program(
                program,
                invariant=invariant,
                tracer=self.tracer,
                metrics=self.metrics,
                subject=case if case is not None else program.name,
            )
            if not lint_report.ok:
                elapsed = time.perf_counter() - started
                return ServiceVerdict(
                    record={
                        "case": case if case is not None else program.name,
                        "ok": False,
                        "lint_ok": False,
                        "lint": lint_report.as_dict(),
                        "fairness": fairness,
                        "seconds": elapsed,
                    },
                    report=None,
                    cached=False,
                    cache_layer="",
                    seconds=elapsed,
                )
        if states is None:
            state_list: list[State] | None = None
            extra = ("states=full",)
        else:
            state_list = list(states)
            extra = (
                states_key if states_key is not None else f"states=n{len(state_list)}",
            )
        name = case if case is not None else program.name

        if method != "full" and design is not None and not quantify:
            verdict = self._verify_compositional(
                program,
                invariant,
                span,
                design,
                fairness=fairness,
                method=method,
                extra=extra,
                name=name,
                supplied_states=states is not None,
                started=started,
            )
            if verdict is not None:
                return verdict
            # auto: the certifier refused — fall back to full exploration.

        key = tolerance_fingerprint(
            program, invariant, span, fairness=fairness,
            method="full", states_extra=extra,
            quantify=quantify, fault_rate=fault_rate,
        )

        def compute() -> dict[str, Any]:
            from repro.kernel import kernel_supported

            compute_started = time.perf_counter()
            resolved = engine
            if resolved == "auto":
                resolved = "packed" if kernel_supported(program) else "dict"
            if resolved == "packed" and engine == "auto":
                # ``kernel_supported`` vets the program, but a *supplied*
                # state can still carry an out-of-domain value only the
                # codec notices; fall back per the auto contract.
                from repro.kernel import PackedUnsupported

                try:
                    report = _check_tolerance(
                        program,
                        invariant,
                        span,
                        state_list,
                        fairness=fairness,
                        engine="packed",
                        max_states=max_states,
                        shards=shards,
                        memory_budget=memory_budget,
                        tracer=self.tracer,
                        metrics=self.metrics,
                    )
                except PackedUnsupported:
                    resolved = "dict"
                    report = _check_tolerance(
                        program, invariant, span, state_list,
                        fairness=fairness, engine="dict",
                        max_states=max_states,
                    )
            else:
                report = _check_tolerance(
                    program,
                    invariant,
                    span,
                    state_list,
                    fairness=fairness,
                    engine=resolved,
                    max_states=max_states,
                    shards=shards,
                    memory_budget=memory_budget,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
            quantitative = None
            if quantify:
                from repro.quantitative import quantify as run_quantify

                quantitative = run_quantify(
                    program,
                    invariant,
                    span,
                    state_list,
                    engine=engine,
                    fault_rate=fault_rate,
                    shards=shards,
                    memory_budget=memory_budget,
                    case=name,
                    tracer=self.tracer,
                    metrics=self.metrics,
                ).to_json()
            seconds = time.perf_counter() - compute_started
            self._reports[key] = report
            record = _tolerance_record(
                report, case=name, fairness=fairness, engine=resolved,
                seconds=seconds,
            )
            if quantitative is not None:
                record["quantitative"] = quantitative
            return record

        record, layer = self.memo("tolerance", key, compute)
        elapsed = time.perf_counter() - started
        self._note_verdict("verify_tolerance", layer, elapsed)
        return ServiceVerdict(
            record=record,
            report=self._reports.get(key),
            cached=bool(layer),
            cache_layer=layer,
            seconds=elapsed,
        )

    def _verify_compositional(
        self,
        program: Program,
        invariant: Predicate,
        span: Predicate,
        design: NonmaskingDesign,
        *,
        fairness: str,
        method: str,
        extra: tuple[str, ...],
        name: str,
        supplied_states: bool,
        started: float,
    ) -> ServiceVerdict | None:
        """The compositional leg of :meth:`verify_tolerance`.

        Returns a :class:`ServiceVerdict` when the request is answered
        compositionally — a (cached) certificate, or a failed *uncached*
        refusal when ``method="compositional"`` was explicit. Returns
        ``None`` when ``method="auto"`` and the certifier refused, so the
        caller falls back to full exploration. Refused certifications are
        never cached: they carry no verdict, and fixing the design must
        retrigger them.
        """
        from repro.compositional import certify_compositional

        key = tolerance_fingerprint(
            program, invariant, span, fairness=fairness,
            method="compositional", states_extra=extra,
        )

        def compute() -> dict[str, Any]:
            compute_started = time.perf_counter()
            if supplied_states:
                # A state subset cannot be certified edge-locally: the
                # projections quantify over the full product space.
                from repro.compositional import CompositionalCertificate

                raise _CompositionalRefused(
                    CompositionalCertificate(
                        design=design.name,
                        theorem="",
                        status="refused",
                        classification="",
                        stabilizing=False,
                        obligations=(),
                        refusal="supplied-states: compositional "
                        "certification covers the full state space only",
                        total_states=0,
                        max_projection=0,
                        seconds=0.0,
                    )
                )
            certificate = certify_compositional(
                design,
                fairness=fairness,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            if not certificate.ok:
                raise _CompositionalRefused(certificate)
            return _compositional_record(
                certificate,
                case=name,
                fairness=fairness,
                seconds=time.perf_counter() - compute_started,
            )

        try:
            record, layer = self.memo("tolerance", key, compute)
        except _CompositionalRefused as refused:
            if method != "compositional":
                return None  # auto: fall back to full exploration
            elapsed = time.perf_counter() - started
            return ServiceVerdict(
                record=_compositional_record(
                    refused.certificate,
                    case=name,
                    fairness=fairness,
                    seconds=elapsed,
                ),
                report=None,
                cached=False,
                cache_layer="",
                seconds=elapsed,
            )
        elapsed = time.perf_counter() - started
        self._note_verdict("verify_tolerance", layer, elapsed)
        return ServiceVerdict(
            record=record,
            report=None,
            cached=bool(layer),
            cache_layer=layer,
            seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Theorem certificates
    # ------------------------------------------------------------------

    def validate_design(
        self,
        design: NonmaskingDesign,
        states: Iterable[State],
        *,
        theorem: str = "auto",
        case: str | None = None,
        states_key: str | None = None,
    ) -> dict[str, Any]:
        """Cached theorem-certificate validation of a nonmasking design.

        Returns a JSON-able record summarizing the certificate; the full
        :class:`~repro.core.design.DesignReport` is recomputed only on a
        cache miss.
        """
        started = time.perf_counter()
        state_list = list(states)
        name = case if case is not None else design.name
        tokens = [
            fingerprint_program(design.program),
            f"theorem={theorem}",
            states_key if states_key is not None else f"states=n{len(state_list)}",
        ]
        tokens.extend(
            fingerprint_predicate(c.predicate, design.program)
            for c in design.candidate.constraints
        )
        key = fingerprint_instance(
            design.program,
            design.candidate.invariant,
            design.candidate.fault_span,
            extra=tuple(tokens),
        )

        def compute() -> dict[str, Any]:
            compute_started = time.perf_counter()
            report = design.validate(state_list, theorem=theorem)
            seconds = time.perf_counter() - compute_started
            certificate = report.selected
            return {
                "case": name,
                "ok": report.ok,
                "theorem": certificate.theorem,
                "conditions": len(certificate.conditions),
                "conditions_ok": sum(1 for c in certificate.conditions if c.ok),
                "states": len(state_list),
                "seconds": seconds,
            }

        record, layer = self.memo("design", key, compute)
        self._note_verdict("validate_design", layer, time.perf_counter() - started)
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Cache-effectiveness counters for reports and benchmarks.

        ``hits`` is always ``hits_memory + hits_disk``;
        ``seconds_computing`` / ``seconds_cached`` split the total
        answering wall-clock by whether a cache layer supplied the
        record.
        """
        return {
            "hits": self.hits,
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "records": len(self._records),
            "systems": len(self._systems),
            "seconds_computing": self.seconds_computing,
            "seconds_cached": self.seconds_cached,
        }

    def report(self, **meta) -> RunReport:
        """A :class:`~repro.observability.RunReport` of this service.

        Counters come from :meth:`stats`; timers come from the attached
        metrics registry when one was passed at construction (empty
        otherwise). Extra keyword arguments land in the report's
        ``meta``.
        """
        stats = self.stats()
        counters = {
            "cache.hit": self.hits,
            "cache.hit.memory": self.hits_memory,
            "cache.hit.disk": self.hits_disk,
            "cache.miss": self.misses,
            "records": int(stats["records"]),
            "systems": int(stats["systems"]),
        }
        if self.metrics is not None:
            # Surface registry-only counters (e.g. the packed engine's
            # ``kernel.*``) next to the service's own cache counters.
            for name, counter in sorted(self.metrics.counters.items()):
                counters.setdefault(name, counter.count)
        timers = (
            {
                name: timer.snapshot()
                for name, timer in sorted(self.metrics.timers.items())
            }
            if self.metrics is not None
            else {}
        )
        return RunReport(
            counters=counters,
            timers=timers,
            meta={
                "seconds_computing": round(self.seconds_computing, 6),
                "seconds_cached": round(self.seconds_cached, 6),
                **meta,
            },
        )
