"""``repro serve`` — the asynchronous verification daemon.

Everything below the CLI in this library is one-shot: build an instance,
verify it, exit. This module turns the cached
:class:`~repro.verification.service.VerificationService`, the sharded
:class:`~repro.verification.store.VerdictStore` and the
:mod:`repro.verification.parallel` worker pool into a long-running
HTTP/JSON daemon (stdlib ``asyncio`` only — no new dependencies):

- ``POST /verify`` — tolerance verification of a library case, answered
  in the pinned :meth:`ServiceVerdict.to_json` record schema;
- ``POST /lint`` — the :mod:`repro.staticcheck` passes for a case;
- ``POST /simulate`` — seeded stabilization trials for a case;
- ``GET /healthz`` — liveness probe, served straight off the event loop
  (it answers even while every worker is busy);
- ``GET /stats`` — request, cache, store and dedup counters.

Three scaling mechanisms sit between the socket and the checkers:

1. **content-addressed dedup** — every request is fingerprinted with
   :mod:`repro.core.fingerprint` (through
   :func:`~repro.verification.service.tolerance_fingerprint`, so daemon
   and service address the same cache entries); a request whose verdict
   is already cached is answered inline, and concurrent *in-flight*
   duplicates coalesce onto the first request's future — N identical
   concurrent requests cause exactly one verification;
2. **deduped batching** — cache-missing verify requests are collected
   for a short window (``batch_window``) and dispatched as one
   :func:`~repro.verification.parallel.run_batch` call over the process
   pool, honouring each request's ``engine=``/``method=``/``shards=``;
   results are ingested back into the service so later duplicates are
   memory hits;
3. **the sharded verdict store** — with ``cache_dir=`` verdicts persist
   in bucketed directories with an LRU warm tier and size-bounded
   eviction (``store_entries``/``store_bytes``), so a restarted daemon
   keeps its corpus warm within budget.

Observability: ``service.request.*`` and ``store.*`` events/counters
flow through :mod:`repro.observability` into ``GET /stats`` and
:meth:`VerificationDaemon.report`. See ``docs/SERVICE.md`` for the
endpoint reference and operations guide.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.errors import ValidationError
from repro.observability import events as ev
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import RunReport
from repro.observability.tracer import Tracer
from repro.quantitative import DEFAULT_FAULT_RATE
from repro.verification.explorer import validate_engine
from repro.verification.parallel import VerificationTask, run_batch
from repro.verification.service import (
    VerificationService,
    tolerance_fingerprint,
    validate_method,
)
from repro.verification.store import VerdictStore

__all__ = ["DaemonThread", "VerificationDaemon", "serve"]

#: Response keys the daemon adds to every verdict record it returns.
PROVENANCE_KEYS = ("cached", "cache_layer", "call_seconds", "deduped")

#: Record keys that are per-call provenance, not verdict content — they
#: are stripped before a pool record is ingested into the cache.
_TRANSIENT_KEYS = frozenset(
    {"cached", "cache_layer", "call_seconds", "worker", "task_seconds"}
)

_JSON_HEADERS = "Content-Type: application/json\r\n"

_FAIRNESS = ("weak", "none")


class RequestError(Exception):
    """A malformed or unanswerable request — becomes an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _Pending:
    """One cache-missing verify request waiting for a batch slot."""

    task: VerificationTask
    #: Resolved-method -> cache fingerprint ("full" and, when a design
    #: exists, "compositional").
    keys: dict[str, str]
    request_key: str
    future: asyncio.Future = field(repr=False)


class VerificationDaemon:
    """The asyncio HTTP/JSON verification daemon behind ``repro serve``.

    Args:
        host: Interface to bind (default loopback).
        port: TCP port; ``0`` binds an ephemeral port (read
            :attr:`port` after :meth:`start`).
        cache_dir: Root of the sharded verdict store; ``None`` keeps
            verdicts in memory only.
        workers: Process-pool width for batched verification misses
            (``1`` = compute in the dispatcher thread).
        batch_window: Seconds cache-missing requests are collected
            before one batch is dispatched.
        max_batch: Largest batch handed to the pool at once.
        store_shards: Bucket directories in the verdict store.
        warm_capacity: Decoded records kept in the store's LRU warm tier.
        store_entries: Evict beyond this many persisted verdicts.
        store_bytes: Evict beyond this on-disk footprint.
        service: Pre-built service (tests); overrides ``cache_dir``.
        tracer: Optional tracer for ``service.request.*`` / ``store.*``
            events.
        metrics: Metrics registry; created internally when omitted so
            ``/stats`` always has counters.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8421,
        cache_dir: str | Path | None = None,
        workers: int = 2,
        batch_window: float = 0.01,
        max_batch: int = 16,
        store_shards: int = 16,
        warm_capacity: int = 128,
        store_entries: int | None = None,
        store_bytes: int | None = None,
        service: VerificationService | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if service is not None:
            self.service = service
            self.store = service.store
        else:
            self.store = (
                VerdictStore(
                    cache_dir,
                    shards=store_shards,
                    warm_capacity=warm_capacity,
                    max_entries=store_entries,
                    max_bytes=store_bytes,
                    tracer=tracer,
                    metrics=self.metrics,
                )
                if cache_dir is not None
                else None
            )
            self.service = VerificationService(
                store=self.store, tracer=tracer, metrics=self.metrics
            )
        self._server: asyncio.base_events.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers + 1, thread_name_prefix="repro-serve"
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: list[_Pending] = []
        self._batch_wakeup: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._open_requests = 0
        self._drained: asyncio.Event | None = None
        self._started_monotonic = time.monotonic()
        #: (case, size, fairness, with_design, quantify, fault_rate)
        #: -> fingerprint dict.
        self._key_cache: dict[
            tuple[str, int, str, bool, bool, float], dict[str, str]
        ] = {}
        self.requests = {
            "total": 0,
            "verify": 0,
            "quantify": 0,
            "lint": 0,
            "simulate": 0,
            "healthz": 0,
            "stats": 0,
            "deduped": 0,
            "errors": 0,
            "batches": 0,
            "batched_tasks": 0,
            "computed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; :attr:`port` is the real port."""
        self._batch_wakeup = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._batcher = asyncio.ensure_future(self._batch_loop())

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting connections and (by default) drain in-flight work.

        With ``drain=True`` every accepted request — including queued
        batch members — is answered before the daemon shuts its worker
        pool down; ``drain=False`` abandons them (their connections are
        reset).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._drained is not None:
            try:
                await asyncio.wait_for(self._drained.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        self._executor.shutdown(wait=drain)

    @property
    def inflight(self) -> int:
        """Requests accepted but not yet answered."""
        return self._open_requests

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                try:
                    method, path, headers = self._parse_head(head)
                except RequestError as error:
                    await self._respond(
                        writer, error.status, {"error": str(error)}, close=True
                    )
                    break
                length = int(headers.get("content-length", "0") or 0)
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                self._open_requests += 1
                self._drained.clear()
                try:
                    status, payload = await self._dispatch(method, path, body)
                finally:
                    self._open_requests -= 1
                    if self._open_requests == 0:
                        self._drained.set()
                await self._respond(writer, status, payload, close=close)
                if close:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:
            raise RequestError("undecodable request head") from None
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise RequestError(f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        return method.upper(), path, headers

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        close: bool = False,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 500: "Internal Server Error"}
        body = json.dumps(payload, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"{_JSON_HEADERS}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        started = time.perf_counter()
        endpoint = path.strip("/") or "index"
        self.requests["total"] += 1
        if self.metrics is not None:
            self.metrics.counter("service.request.total").add()
            self.metrics.counter(f"service.request.{endpoint}").add()
        if self.tracer is not None:
            self.tracer.emit(
                ev.SERVICE_REQUEST_START, endpoint=endpoint, method=method
            )
        try:
            status, payload = await self._route(method, path, body)
        except RequestError as error:
            self.requests["errors"] += 1
            if self.metrics is not None:
                self.metrics.counter("service.request.error").add()
            status, payload = error.status, {"error": str(error)}
        except ValidationError as error:
            self.requests["errors"] += 1
            if self.metrics is not None:
                self.metrics.counter("service.request.error").add()
            status, payload = 400, {"error": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            self.requests["errors"] += 1
            if self.metrics is not None:
                self.metrics.counter("service.request.error").add()
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        seconds = time.perf_counter() - started
        if self.metrics is not None:
            self.metrics.timer("service.request.seconds").record(seconds)
        if self.tracer is not None:
            self.tracer.emit(
                ev.SERVICE_REQUEST_FINISH,
                endpoint=endpoint,
                status=status,
                seconds=seconds,
            )
        return status, payload

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        if path in ("/", ""):
            return 200, {
                "service": "repro",
                "endpoints": ["/verify", "/lint", "/simulate",
                              "/healthz", "/stats"],
            }
        if path == "/healthz":
            self.requests["healthz"] += 1
            if method != "GET":
                raise RequestError("use GET /healthz", status=405)
            return 200, self._healthz()
        if path == "/stats":
            self.requests["stats"] += 1
            if method != "GET":
                raise RequestError("use GET /stats", status=405)
            return 200, self.stats()
        if path == "/verify":
            if method != "POST":
                raise RequestError("use POST /verify", status=405)
            self.requests["verify"] += 1
            return 200, await self._handle_verify(self._json_body(body))
        if path == "/lint":
            if method != "POST":
                raise RequestError("use POST /lint", status=405)
            self.requests["lint"] += 1
            return 200, await self._handle_lint(self._json_body(body))
        if path == "/simulate":
            if method != "POST":
                raise RequestError("use POST /simulate", status=405)
            self.requests["simulate"] += 1
            return 200, await self._handle_simulate(self._json_body(body))
        raise RequestError(f"no such endpoint {path!r}", status=404)

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise RequestError(f"request body is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # /verify
    # ------------------------------------------------------------------

    def _normalize_case(self, body: dict[str, Any]) -> tuple[str, int]:
        from repro.protocols.library import CASES

        case = body.get("case")
        if not isinstance(case, str):
            raise RequestError('"case" (a library case name) is required')
        entry = CASES.get(case)
        if entry is None:
            raise RequestError(
                f"unknown verification case {case!r}; known cases: "
                f"{', '.join(CASES)}"
            )
        size = body.get("size", entry.default_size)
        if not isinstance(size, int) or size < 1:
            raise RequestError(f'"size" must be a positive integer, got {size!r}')
        return case, size

    def _normalize_verify(self, body: dict[str, Any]) -> dict[str, Any]:
        allowed = {"case", "size", "fairness", "engine", "method", "shards",
                   "quantify", "fault_rate"}
        unknown = set(body) - allowed
        if unknown:
            raise RequestError(
                f"unknown /verify fields {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        case, size = self._normalize_case(body)
        fairness = body.get("fairness", "weak")
        if fairness not in _FAIRNESS:
            raise RequestError(
                f"unknown fairness {fairness!r}; expected one of {_FAIRNESS}"
            )
        engine = body.get("engine", "auto")
        method = body.get("method", "auto")
        shards = body.get("shards")
        try:
            validate_engine(engine)
            validate_method(method)
        except ValidationError as error:
            raise RequestError(str(error)) from None
        if shards is not None and (not isinstance(shards, int) or shards < 1):
            raise RequestError(f'"shards" must be a positive integer, got {shards!r}')
        quantify = body.get("quantify", False)
        if not isinstance(quantify, bool):
            raise RequestError(f'"quantify" must be a boolean, got {quantify!r}')
        fault_rate = body.get("fault_rate", DEFAULT_FAULT_RATE)
        if isinstance(fault_rate, bool) or not isinstance(
            fault_rate, (int, float)
        ) or not fault_rate > 0:
            raise RequestError(
                f'"fault_rate" must be a positive number, got {fault_rate!r}'
            )
        if quantify and method == "compositional":
            raise RequestError(
                '"quantify" needs state-space exploration; it cannot be '
                'combined with method "compositional"'
            )
        return {
            "case": case,
            "size": size,
            "fairness": fairness,
            "engine": engine,
            "method": method,
            "shards": shards,
            "quantify": quantify,
            "fault_rate": float(fault_rate),
        }

    def _verify_keys(self, params: dict[str, Any]) -> dict[str, str]:
        """Cache fingerprints for a verify request, by resolved method.

        Builds the instance once per distinct ``(case, size, fairness,
        design?)`` and memoizes — library builders are deterministic, so
        the fingerprints are too.
        """
        from repro.protocols.library import CASES, build_case

        entry = CASES[params["case"]]
        quantify = params["quantify"]
        fault_rate = params["fault_rate"]
        # Quantification composes with full exploration only, so a
        # quantify request never probes (or certifies) compositionally.
        with_design = (
            not quantify
            and params["method"] != "full"
            and entry.build_design is not None
        )
        memo_key = (
            params["case"], params["size"], params["fairness"], with_design,
            quantify, fault_rate,
        )
        keys = self._key_cache.get(memo_key)
        if keys is not None:
            return keys
        if with_design:
            design = entry.build_design(params["size"])
            program, invariant = design.program, design.candidate.invariant
        else:
            program, invariant = build_case(params["case"], params["size"])
        keys = {
            "full": tolerance_fingerprint(
                program, invariant, fairness=params["fairness"], method="full",
                quantify=quantify, fault_rate=fault_rate,
            )
        }
        if with_design:
            keys["compositional"] = tolerance_fingerprint(
                program, invariant,
                fairness=params["fairness"], method="compositional",
            )
        self._key_cache[memo_key] = keys
        return keys

    @staticmethod
    def _probe_order(method: str, keys: dict[str, str]) -> list[str]:
        if method == "compositional":
            return [keys["compositional"]] if "compositional" in keys else []
        if method == "full":
            return [keys["full"]]
        order = []
        if "compositional" in keys:
            order.append(keys["compositional"])
        order.append(keys["full"])
        return order

    async def _handle_verify(self, body: dict[str, Any]) -> dict[str, Any]:
        started = time.perf_counter()
        params = self._normalize_verify(body)
        if params["quantify"]:
            self.requests["quantify"] += 1
            if self.metrics is not None:
                self.metrics.counter("quantitative.requests").add()
        if params["method"] == "compositional":
            from repro.protocols.library import CASES

            if CASES[params["case"]].build_design is None:
                raise RequestError(
                    f"case {params['case']!r} registers no design; "
                    'method "compositional" needs the constraint-graph '
                    "decomposition"
                )
        loop = asyncio.get_event_loop()
        keys = await loop.run_in_executor(
            self._executor, self._verify_keys, params
        )

        # 1. Answer warm requests inline from the cache layers.
        probes = self._probe_order(params["method"], keys)
        for index, key in enumerate(probes):
            cached = self.service.cached_record(
                "tolerance", key, count_miss=(index == len(probes) - 1)
            )
            if cached is not None:
                record, layer = cached
                return self._verify_response(
                    record, cached_layer=layer, deduped=False,
                    seconds=time.perf_counter() - started,
                )

        # 2. Coalesce onto an identical in-flight request, if any.
        request_key = f"verify:{params['method']}:{keys['full']}"
        existing = self._inflight.get(request_key)
        if existing is not None:
            self.requests["deduped"] += 1
            if self.metrics is not None:
                self.metrics.counter("service.request.deduped").add()
            if self.tracer is not None:
                self.tracer.emit(
                    ev.SERVICE_REQUEST_DEDUPED,
                    endpoint="verify", key=keys["full"][:16],
                )
            record = await asyncio.shield(existing)
            return self._verify_response(
                record, cached_layer="", deduped=True,
                seconds=time.perf_counter() - started,
            )

        # 3. A true miss: enqueue for the next batch dispatch.
        entry_design = "compositional" in keys
        task = VerificationTask(
            case=f"{params['case']} (n={params['size']})",
            builder="repro.protocols.library:build_case",
            args=(params["case"], params["size"]),
            fairness=params["fairness"],
            engine=params["engine"],
            shards=params["shards"],
            method=params["method"],
            design_builder=(
                "repro.protocols.library:build_case_design"
                if entry_design else None
            ),
            quantify=params["quantify"],
            fault_rate=params["fault_rate"],
        )
        if params["quantify"] and self.metrics is not None:
            self.metrics.counter("quantitative.computed").add()
        future: asyncio.Future = loop.create_future()
        self._inflight[request_key] = future
        self._pending.append(
            _Pending(task=task, keys=keys, request_key=request_key, future=future)
        )
        self._batch_wakeup.set()
        try:
            record = await asyncio.shield(future)
        finally:
            if self._inflight.get(request_key) is future:
                del self._inflight[request_key]
        return self._verify_response(
            record, cached_layer="", deduped=False,
            seconds=time.perf_counter() - started,
        )

    def _verify_response(
        self,
        record: dict[str, Any],
        *,
        cached_layer: str,
        deduped: bool,
        seconds: float,
    ) -> dict[str, Any]:
        payload = {
            key: value
            for key, value in record.items()
            if key not in _TRANSIENT_KEYS
        }
        payload["cached"] = bool(cached_layer)
        payload["cache_layer"] = cached_layer
        payload["call_seconds"] = seconds
        payload["deduped"] = deduped
        return payload

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await self._batch_wakeup.wait()
            self._batch_wakeup.clear()
            if not self._pending:
                continue
            if self.batch_window > 0:
                # The collection window: let compatible concurrent
                # requests pile into this dispatch.
                await asyncio.sleep(self.batch_window)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            if self._pending:
                self._batch_wakeup.set()
            if not batch:
                continue
            self.requests["batches"] += 1
            self.requests["batched_tasks"] += len(batch)
            if self.metrics is not None:
                self.metrics.counter("service.batch.dispatched").add()
                self.metrics.counter("service.batch.tasks").add(len(batch))
            if self.tracer is not None:
                self.tracer.emit(
                    ev.SERVICE_BATCH_DISPATCH,
                    tasks=len(batch),
                    workers=self.workers,
                    cases=tuple(pending.task.case for pending in batch),
                )
            tasks = [pending.task for pending in batch]
            try:
                records = await loop.run_in_executor(
                    self._executor, self._run_batch, tasks
                )
            except Exception as error:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(
                            RequestError(
                                f"verification failed: {error}", status=500
                            )
                        )
                continue
            for pending, record in zip(batch, records):
                self._ingest(pending, record)
                if not pending.future.done():
                    pending.future.set_result(record)

    def _run_batch(self, tasks: list[VerificationTask]) -> list[dict[str, Any]]:
        self.requests["computed"] += len(tasks)
        # Workers get no cache_dir: the daemon owns the store and
        # ingests the returned records itself (pool workers write the
        # flat layout, the daemon's store is sharded — mixing them
        # would fork the corpus).
        return run_batch(
            tasks,
            workers=self.workers if len(tasks) > 1 else 1,
            cache_dir=None,
        )

    def _ingest(self, pending: _Pending, record: dict[str, Any]) -> None:
        """Adopt one pool record into the service's cache layers."""
        if record.get("status") == "refused" or "lint" in record:
            return  # refusals and lint failures are never cached
        resolved = record.get("method", "full")
        key = pending.keys.get(resolved)
        if key is None:
            return
        pure = {
            name: value
            for name, value in record.items()
            if name not in _TRANSIENT_KEYS
        }
        self.service.ingest("tolerance", key, pure)

    # ------------------------------------------------------------------
    # /lint and /simulate
    # ------------------------------------------------------------------

    async def _handle_lint(self, body: dict[str, Any]) -> dict[str, Any]:
        from repro.core.fingerprint import fingerprint_program
        from repro.protocols.library import build_case
        from repro.staticcheck import lint_case

        allowed = {"case", "size", "probes", "semantic"}
        unknown = set(body) - allowed
        if unknown:
            raise RequestError(
                f"unknown /lint fields {sorted(unknown)}; allowed: "
                f"{sorted(allowed)}"
            )
        case, size = self._normalize_case(body)
        probes = body.get("probes", 32)
        if not isinstance(probes, int) or probes < 1:
            raise RequestError(f'"probes" must be a positive integer, got {probes!r}')
        semantic = body.get("semantic", True)
        if not isinstance(semantic, bool):
            raise RequestError(f'"semantic" must be a boolean, got {semantic!r}')

        started = time.perf_counter()
        loop = asyncio.get_event_loop()

        def compute() -> tuple[dict[str, Any], str]:
            program, _ = build_case(case, size)
            key = (
                f"{fingerprint_program(program)}:probes={probes}"
                f":semantic={semantic}"
            )
            return self.service.memo(
                "lint", key,
                lambda: dict(
                    lint_case(
                        case, size, probes=probes, semantic=semantic
                    ).as_dict()
                ),
            )

        request_key = f"lint:{case}:{size}:{probes}:{semantic}"
        record, layer, deduped = await self._coalesce(
            request_key, lambda: loop.run_in_executor(self._executor, compute)
        )
        return {
            **record,
            "cached": bool(layer),
            "cache_layer": layer,
            "call_seconds": time.perf_counter() - started,
            "deduped": deduped,
        }

    async def _handle_simulate(self, body: dict[str, Any]) -> dict[str, Any]:
        from repro.core.fingerprint import fingerprint_program
        from repro.protocols.library import build_case
        from repro.scheduler import RandomScheduler
        from repro.simulation import stabilization_trials

        allowed = {"case", "size", "trials", "max_steps", "seed"}
        unknown = set(body) - allowed
        if unknown:
            raise RequestError(
                f"unknown /simulate fields {sorted(unknown)}; allowed: "
                f"{sorted(allowed)}"
            )
        case, size = self._normalize_case(body)
        trials = body.get("trials", 20)
        max_steps = body.get("max_steps", 200_000)
        seed = body.get("seed", 0)
        for name, value in (("trials", trials), ("max_steps", max_steps)):
            if not isinstance(value, int) or value < 1:
                raise RequestError(
                    f'"{name}" must be a positive integer, got {value!r}'
                )
        if not isinstance(seed, int):
            raise RequestError(f'"seed" must be an integer, got {seed!r}')

        started = time.perf_counter()
        loop = asyncio.get_event_loop()

        def compute() -> tuple[dict[str, Any], str]:
            program, invariant = build_case(case, size)
            key = (
                f"{fingerprint_program(program)}:trials={trials}"
                f":max_steps={max_steps}:seed={seed}"
            )

            def simulate() -> dict[str, Any]:
                stats = stabilization_trials(
                    program,
                    invariant,
                    lambda s: RandomScheduler(s),
                    trials=trials,
                    max_steps=max_steps,
                    base_seed=seed,
                )
                steps = None
                if stats.steps is not None:
                    steps = {
                        "count": stats.steps.count,
                        "mean": stats.steps.mean,
                        "median": stats.steps.median,
                        "p95": stats.steps.p95,
                        "min": stats.steps.minimum,
                        "max": stats.steps.maximum,
                    }
                return {
                    "case": f"{case} (n={size})",
                    "trials": trials,
                    "stabilized": stats.stabilized_count,
                    "all_stabilized": stats.all_stabilized,
                    "stabilization_rate": stats.stabilization_rate,
                    "steps": steps,
                    "max_steps": max_steps,
                    "seed": seed,
                }

            return self.service.memo("simulate", key, simulate)

        request_key = f"simulate:{case}:{size}:{trials}:{max_steps}:{seed}"
        record, layer, deduped = await self._coalesce(
            request_key, lambda: loop.run_in_executor(self._executor, compute)
        )
        return {
            **record,
            "cached": bool(layer),
            "cache_layer": layer,
            "call_seconds": time.perf_counter() - started,
            "deduped": deduped,
        }

    async def _coalesce(self, request_key, thunk):
        """Run ``thunk`` once per concurrent ``request_key`` cohort.

        Returns ``(record, layer, deduped)`` — followers observe the
        leader's result with ``deduped=True``.
        """
        existing = self._inflight.get(request_key)
        if existing is not None:
            self.requests["deduped"] += 1
            if self.metrics is not None:
                self.metrics.counter("service.request.deduped").add()
            if self.tracer is not None:
                self.tracer.emit(
                    ev.SERVICE_REQUEST_DEDUPED,
                    endpoint=request_key.split(":", 1)[0],
                    key=request_key,
                )
            record, _layer = await asyncio.shield(existing)
            return record, "", True
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[request_key] = future
        try:
            record, layer = await thunk()
            if not future.done():
                future.set_result((record, layer))
            return record, layer, False
        except Exception as error:
            if not future.done():
                future.set_exception(error)
            # The cohort shares the failure; ours re-raises directly.
            future.exception()  # mark retrieved for solo requests
            raise
        finally:
            if self._inflight.get(request_key) is future:
                del self._inflight[request_key]

    # ------------------------------------------------------------------
    # /healthz and /stats
    # ------------------------------------------------------------------

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": self.uptime_seconds(),
            "inflight": self._open_requests,
            "pending_batch": len(self._pending),
            "requests_total": self.requests["total"],
        }

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload: request, cache and store counters."""
        service_stats = self.service.stats()
        hits = service_stats["hits"]
        lookups = hits + service_stats["misses"]
        return {
            "uptime_seconds": self.uptime_seconds(),
            "workers": self.workers,
            "batch_window": self.batch_window,
            "inflight": self._open_requests,
            "requests": dict(self.requests),
            "service": service_stats,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "store": self.store.stats() if self.store is not None else None,
            # kernel.mem.* gauges from in-process packed sweeps (pool
            # workers report through their own registries, not this one).
            "kernel_mem": {
                name[len("kernel.mem."):]: counter.count
                for name, counter in sorted(self.metrics.counters.items())
                if name.startswith("kernel.mem.")
            },
            # quantitative.* counters: requests/computed tracked by the
            # daemon, plus any solve counters from in-process quantify
            # runs routed through this registry.
            "quantitative": {
                name[len("quantitative."):]: counter.count
                for name, counter in sorted(self.metrics.counters.items())
                if name.startswith("quantitative.")
            },
        }

    def report(self, **meta: Any) -> RunReport:
        """A :class:`RunReport` over the daemon's counters and timers."""
        counters = {
            f"service.request.{name}": count
            for name, count in sorted(self.requests.items())
        }
        for name, counter in sorted(self.metrics.counters.items()):
            counters.setdefault(name, counter.count)
        timers = {
            name: timer.snapshot()
            for name, timer in sorted(self.metrics.timers.items())
        }
        return RunReport(
            counters=counters,
            timers=timers,
            meta={
                "uptime_seconds": round(self.uptime_seconds(), 6),
                "workers": self.workers,
                **meta,
            },
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


async def serve(*, host: str = "127.0.0.1", port: int = 8421,
                **daemon_kwargs: Any) -> VerificationDaemon:
    """Run a daemon until SIGINT/SIGTERM; returns it after shutdown.

    This is the coroutine behind ``repro serve``; library callers who
    want finer control use :class:`VerificationDaemon` (or
    :class:`DaemonThread` from synchronous code) directly.
    """
    import signal

    daemon = VerificationDaemon(host=host, port=port, **daemon_kwargs)
    await daemon.start()
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"repro serve: listening on http://{daemon.host}:{daemon.port} "
          f"(workers={daemon.workers}, "
          f"store={'on' if daemon.store is not None else 'off'})")
    await stop.wait()
    print("repro serve: draining in-flight requests ...")
    await daemon.stop(drain=True)
    return daemon


class DaemonThread:
    """A daemon on a background thread, for tests and load generators.

    Synchronous code (pytest, the E18 benchmark) needs a live server
    without owning an event loop::

        handle = DaemonThread(cache_dir=tmp, workers=2).start()
        ... http.client against handle.port ...
        handle.stop()
    """

    def __init__(self, **daemon_kwargs: Any) -> None:
        daemon_kwargs.setdefault("port", 0)
        self.daemon = VerificationDaemon(**daemon_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def host(self) -> str:
        return self.daemon.host

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def url(self) -> str:
        return f"http://{self.daemon.host}:{self.daemon.port}"

    def start(self) -> "DaemonThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("daemon failed to start within 30s")
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.daemon.start())
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.stop(drain=drain, timeout=timeout), self._loop
        )
        future.result(timeout=timeout + 10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
