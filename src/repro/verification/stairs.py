"""Convergence stairs (Gouda and Multari, referenced in Section 7).

A convergence stair is a descending chain of closed predicates::

    T = R0  ⊇  R1  ⊇  …  ⊇  Rk = S

such that from every ``Ri``-state each computation reaches an
``Ri+1``-state. Convergence then follows by composing the stages. The
paper's Section 7 proposes stairs as one way to validate designs whose
constraint graph is cyclic over ``T`` but self-looping over some
intermediate closed ``R`` — the spanning-tree protocol in this library is
certified exactly this way, with one stair step per BFS level.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.verification.closure import ClosureResult, check_closure
from repro.verification.convergence import ConvergenceResult, check_convergence

__all__ = ["StairStep", "StairReport", "check_stair"]


@dataclass(frozen=True)
class StairStep:
    """One stage ``Ri -> Ri+1`` of the stair."""

    from_name: str
    to_name: str
    subset_ok: bool
    closure: ClosureResult
    convergence: ConvergenceResult

    @property
    def ok(self) -> bool:
        return self.subset_ok and self.closure.ok and self.convergence.ok


@dataclass(frozen=True)
class StairReport:
    """The verdict of a convergence-stair check."""

    ok: bool
    steps: tuple[StairStep, ...]
    final_closure: ClosureResult

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        lines = [f"convergence stair: {'VALID' if self.ok else 'INVALID'}"]
        for step in self.steps:
            mark = "ok " if step.ok else "FAIL"
            lines.append(
                f"  [{mark}] {step.from_name} -> {step.to_name} "
                f"(closure {'ok' if step.closure.ok else 'FAIL'}, "
                f"subset {'ok' if step.subset_ok else 'FAIL'}, "
                f"convergence {'ok' if step.convergence.ok else 'FAIL'})"
            )
        lines.append(
            f"  [{'ok ' if self.final_closure.ok else 'FAIL'}] closure of "
            f"{self.final_closure.predicate_name}"
        )
        return "\n".join(lines)


def check_stair(
    program: Program,
    stair: Sequence[Predicate],
    states: Iterable[State],
    *,
    fairness: str = "weak",
) -> StairReport:
    """Check a convergence stair ``stair[0] ⊇ … ⊇ stair[-1]``.

    Args:
        program: The program under test.
        stair: The predicates from the fault-span down to the invariant,
            weakest first. Must have at least two entries.
        states: The full state set of the finite instance.
        fairness: Computation model for each stage's convergence check.
    """
    if len(stair) < 2:
        raise ValueError("a stair needs at least two predicates (T and S)")
    all_states = list(states)
    steps: list[StairStep] = []
    for upper, lower in zip(stair, stair[1:]):
        upper_states = [state for state in all_states if upper(state)]
        subset_ok = all(upper(state) for state in all_states if lower(state))
        closure = check_closure(upper, program, all_states)
        if closure.ok:
            convergence = check_convergence(
                program, upper_states, lower, fairness=fairness
            )
        else:
            convergence = ConvergenceResult(
                ok=False,
                fairness=fairness,
                span_states=len(upper_states),
                bad_states=sum(1 for state in upper_states if not lower(state)),
            )
        steps.append(
            StairStep(
                from_name=upper.name,
                to_name=lower.name,
                subset_ok=subset_ok,
                closure=closure,
                convergence=convergence,
            )
        )
    final_closure = check_closure(stair[-1], program, all_states)
    return StairReport(
        ok=all(step.ok for step in steps) and final_closure.ok,
        steps=tuple(steps),
        final_closure=final_closure,
    )
