"""Process-pool fan-out for batch verification jobs.

Programs hold opaque callables (guards, assignment right-hand sides), so
they cannot cross a process boundary. A batch job therefore ships
**picklable task specs** instead: each :class:`VerificationTask` names a
builder — ``"module:function"`` — that the worker imports and calls to
rebuild the instance locally, then verifies through a
:class:`~repro.verification.service.VerificationService`. Workers given
a shared ``cache_dir`` publish their verdicts to the same on-disk cache,
so a re-run of the batch (or a later sequential run) is answered from
disk.

Results always come back in task order, regardless of which worker
finished first. The pool degrades gracefully: ``workers <= 1``, a task
that does not pickle, or an executor that cannot start (restricted
environments) all fall back to in-process sequential execution with
identical results.
"""

from __future__ import annotations

import pickle
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any

from repro.core.errors import ValidationError
from repro.verification.service import ServiceVerdict, VerificationService

__all__ = ["VerificationTask", "resolve_builder", "run_batch", "verdicts_ok"]


@dataclass(frozen=True)
class VerificationTask:
    """One picklable unit of batch verification work.

    Attributes:
        case: Display name of the instance (keys result rows).
        builder: Dotted reference ``"package.module:function"`` to a
            top-level callable returning either ``(program, invariant)``
            or ``(program, invariant, fault_span)``.
        args: Positional arguments for the builder.
        kwargs: Keyword arguments for the builder (as a tuple of pairs so
            tasks stay hashable).
        fairness: Computation model for the convergence check.
    """

    case: str
    builder: str
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()
    fairness: str = "weak"
    #: Extra cache discriminator, forwarded as ``states_key``.
    states_key: str | None = field(default=None)


def resolve_builder(reference: str):
    """Import the builder named by ``"module:function"``."""
    module_name, _, attribute = reference.partition(":")
    if not module_name or not attribute:
        raise ValidationError(
            f"builder reference {reference!r} is not of the form "
            "'package.module:function'"
        )
    module = import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ValidationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from None


def _execute(task: VerificationTask, cache_dir: str | None) -> dict[str, Any]:
    """Build and verify one task; runs inside a worker or in-process."""
    builder = resolve_builder(task.builder)
    built = builder(*task.args, **dict(task.kwargs))
    if len(built) == 2:
        program, invariant = built
        fault_span = None
    else:
        program, invariant, fault_span = built
    service = VerificationService(cache_dir=cache_dir)
    verdict = service.verify_tolerance(
        program,
        invariant,
        fault_span,
        fairness=task.fairness,
        case=task.case,
        states_key=task.states_key,
    )
    record = dict(verdict.record)
    record["cached"] = verdict.cached
    record["call_seconds"] = verdict.seconds
    return record


def _run_sequential(
    tasks: Sequence[VerificationTask], cache_dir: str | None
) -> list[dict[str, Any]]:
    return [_execute(task, cache_dir) for task in tasks]


def _picklable(tasks: Sequence[VerificationTask]) -> bool:
    try:
        pickle.dumps(tuple(tasks))
        return True
    except Exception:
        return False


def run_batch(
    tasks: Sequence[VerificationTask],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
) -> list[dict[str, Any]]:
    """Verify every task, fanning out over ``workers`` processes.

    Returns one verdict record per task, **in task order**. Records are
    the JSON-able summaries of
    :class:`~repro.verification.service.ServiceVerdict`, extended with
    ``cached`` and ``call_seconds`` fields.

    Falls back to sequential in-process execution when ``workers <= 1``,
    when a task fails to pickle, or when the process pool cannot be
    created. A worker raising is not masked — the underlying verification
    error propagates, as it would sequentially.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers <= 1 or not _picklable(tasks):
        return _run_sequential(tasks, cache_dir)
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return _run_sequential(tasks, cache_dir)
    with executor:
        futures = [executor.submit(_execute, task, cache_dir) for task in tasks]
        return [future.result() for future in futures]


def verdicts_ok(records: Sequence[dict[str, Any]]) -> bool:
    """Whether every record in a batch reports a passing verification."""
    return all(record["ok"] for record in records)
