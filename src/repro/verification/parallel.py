"""Process-pool fan-out for batch verification jobs.

Programs hold opaque callables (guards, assignment right-hand sides), so
they cannot cross a process boundary. A batch job therefore ships
**picklable task specs** instead: each :class:`VerificationTask` names a
builder — ``"module:function"`` — that the worker imports and calls to
rebuild the instance locally, then verifies through a
:class:`~repro.verification.service.VerificationService`. Workers given
a shared ``cache_dir`` publish their verdicts to the same on-disk cache,
so a re-run of the batch (or a later sequential run) is answered from
disk.

Results always come back in task order, regardless of which worker
finished first. The pool degrades gracefully: ``workers <= 1``, a task
that does not pickle, an executor that cannot start (restricted
environments), or a worker killed mid-batch (OOM, signal — the pool
reports :class:`BrokenProcessPool`) all fall back to in-process
sequential execution with identical results.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from importlib import import_module
from multiprocessing import current_process
from typing import Any

from repro.core.errors import ValidationError
from repro.core.program import Program
from repro.core.state import State
from repro.kernel import StateCodec
from repro.observability import events as ev
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import RunReport
from repro.observability.tracer import Tracer
from repro.quantitative import DEFAULT_FAULT_RATE
from repro.verification.service import VerificationService

__all__ = [
    "VerificationTask",
    "batch_report",
    "pack_states",
    "resolve_builder",
    "run_batch",
    "run_on_pool",
    "verdicts_ok",
]


@dataclass(frozen=True)
class VerificationTask:
    """One picklable unit of batch verification work.

    Attributes:
        case: Display name of the instance (keys result rows).
        builder: Dotted reference ``"package.module:function"`` to a
            top-level callable returning either ``(program, invariant)``
            or ``(program, invariant, fault_span)``.
        args: Positional arguments for the builder.
        kwargs: Keyword arguments for the builder (as a tuple of pairs so
            tasks stay hashable).
        fairness: Computation model for the convergence check.
        engine: Exploration engine, forwarded to the service
            (``"auto"``, ``"packed"`` or ``"dict"``).
        method: Verification method, forwarded to the service
            (``"auto"``, ``"full"`` or ``"compositional"``). Methods
            other than ``"full"`` only differ when ``design_builder``
            supplies the constraint-graph decomposition.
        design_builder: Optional dotted reference (same form as
            ``builder``) to a callable returning the instance's
            :class:`~repro.core.design.NonmaskingDesign`. When given it
            replaces ``builder`` — the worker verifies
            ``design.program`` against ``design.candidate.invariant``
            and the service may certify compositionally.
        packed_states: Optional explicit state subset as packed codes
            (the bytes from :func:`pack_states`). The mixed-radix codec
            is a pure function of the program's variable declarations, so
            the worker rebuilds it from the builder's program and decodes
            the same states — shipping ~8 bytes/state across the process
            boundary instead of pickled ``State`` dicts. Pass a
            ``states_key`` alongside, as for any explicit subset.
    """

    case: str
    builder: str
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()
    fairness: str = "weak"
    #: Extra cache discriminator, forwarded as ``states_key``.
    states_key: str | None = field(default=None)
    engine: str = "auto"
    packed_states: bytes | None = field(default=None)
    #: Full-space size guard, forwarded as ``max_states`` (None = default).
    max_states: int | None = field(default=None)
    #: Shard count for the packed engine's vectorized full-space sweep.
    shards: int | None = field(default=None)
    #: Verification method (``"auto"``, ``"full"`` or ``"compositional"``).
    method: str = "auto"
    #: Dotted reference to a NonmaskingDesign builder (enables the
    #: compositional method on the worker).
    design_builder: str | None = field(default=None)
    #: Peak-bytes target for the packed engine's full-space sweep
    #: (None = never stream). Never changes verdicts.
    memory_budget: int | None = field(default=None)
    #: Also run the quantitative analysis; the record gains
    #: ``"quantitative"`` (incompatible with method="compositional").
    quantify: bool = field(default=False)
    #: Fault-action weight for the quantify weighted expectation.
    fault_rate: float = field(default=DEFAULT_FAULT_RATE)


def pack_states(program: Program, states: Sequence[State]) -> bytes:
    """Encode a state list as packed codes for ``VerificationTask``.

    Raises:
        PackedUnsupported: if the program has an infinite domain or a
            state carries a value outside its variable's domain.
    """
    codec = StateCodec.for_program(program)
    return codec.pack_codes(codec.encode_state(state) for state in states)


def resolve_builder(reference: str):
    """Import the builder named by ``"module:function"``."""
    module_name, _, attribute = reference.partition(":")
    if not module_name or not attribute:
        raise ValidationError(
            f"builder reference {reference!r} is not of the form "
            "'package.module:function'"
        )
    module = import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ValidationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from None


def _execute(
    task: VerificationTask,
    cache_dir: str | None,
    tracer: Tracer | None = None,
) -> dict[str, Any]:
    """Build and verify one task; runs inside a worker or in-process.

    ``tracer`` is only ever non-``None`` on the sequential in-process
    path — tracers do not cross the process boundary.
    """
    started = time.perf_counter()
    if tracer is not None:
        tracer.emit(ev.WORKER_TASK_START, case=task.case)
    design = None
    if task.design_builder is not None:
        design = resolve_builder(task.design_builder)(
            *task.args, **dict(task.kwargs)
        )
        program, invariant = design.program, design.candidate.invariant
        fault_span = None
    else:
        builder = resolve_builder(task.builder)
        built = builder(*task.args, **dict(task.kwargs))
        if len(built) == 2:
            program, invariant = built
            fault_span = None
        else:
            program, invariant, fault_span = built
    service = VerificationService(cache_dir=cache_dir, tracer=tracer)
    states = None
    if task.packed_states is not None:
        codec = StateCodec.for_program(program)
        states = [
            codec.decode_state(code)
            for code in codec.unpack_codes(task.packed_states)
        ]
    verdict = service.verify_tolerance(
        program,
        invariant,
        fault_span,
        states,
        fairness=task.fairness,
        engine=task.engine,
        method=task.method,
        design=design,
        case=task.case,
        states_key=task.states_key,
        max_states=task.max_states,
        shards=task.shards,
        memory_budget=task.memory_budget,
        quantify=task.quantify,
        fault_rate=task.fault_rate,
    )
    record = dict(verdict.record)
    record["cached"] = verdict.cached
    record["cache_layer"] = verdict.cache_layer
    record["call_seconds"] = verdict.seconds
    record["worker"] = current_process().name
    record["task_seconds"] = time.perf_counter() - started
    if tracer is not None:
        tracer.emit(
            ev.WORKER_TASK_FINISH,
            case=task.case,
            worker=record["worker"],
            cached=record["cached"],
            task_seconds=record["task_seconds"],
        )
    return record


def _run_sequential(
    tasks: Sequence[VerificationTask],
    cache_dir: str | None,
    tracer: Tracer | None,
) -> list[dict[str, Any]]:
    return [_execute(task, cache_dir, tracer) for task in tasks]


def _picklable(tasks: Sequence[VerificationTask]) -> bool:
    # Probe one representative: tasks in a batch share their spec shape,
    # and ``submit`` pickles each task again anyway, so serializing the
    # whole tuple here would pay the full transport cost twice. A task
    # that defeats the probe (an unpicklable builder arg later in the
    # batch) is caught at submit time and degrades to sequential.
    try:
        pickle.dumps(tasks[0])
        return True
    except Exception:
        return False


def run_on_pool(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int,
) -> list[Any]:
    """Map ``fn`` over ``items`` on a process pool, **in item order**.

    The generic degradation contract shared by batch verification and
    the kernel's sharded sweeps: ``workers <= 1``, an executor that
    cannot start, a worker killed mid-run
    (:class:`~concurrent.futures.process.BrokenProcessPool`) or an
    argument that will not pickle all fall back to calling ``fn``
    sequentially in-process, so results are identical either way. A
    worker raising an ordinary exception is not masked — it propagates
    (and would propagate identically from the sequential path).
    """
    items = list(items)
    if not items:
        return []
    if workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    try:
        executor = ProcessPoolExecutor(max_workers=min(workers, len(items)))
    except (OSError, ValueError):
        return [fn(item) for item in items]
    try:
        with executor:
            futures = [executor.submit(fn, item) for item in items]
            return [future.result() for future in futures]
    except (BrokenProcessPool, pickle.PicklingError, TypeError, AttributeError):
        # Pool infrastructure failure (a worker died, or transport could
        # not serialize): rerun everything in-process. Deterministic
        # worker errors re-raise here identically.
        return [fn(item) for item in items]


def run_batch(
    tasks: Sequence[VerificationTask],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    tracer: Tracer | None = None,
) -> list[dict[str, Any]]:
    """Verify every task, fanning out over ``workers`` processes.

    Returns one verdict record per task, **in task order**. Records are
    the JSON-able summaries of
    :class:`~repro.verification.service.ServiceVerdict`, extended with
    ``cached``, ``cache_layer``, ``call_seconds``, ``worker`` (the
    executing process name) and ``task_seconds`` (build + verify
    wall-clock inside that process).

    Falls back to sequential in-process execution when ``workers <= 1``,
    when a task fails to pickle, or when the process pool cannot be
    created. A worker raising is not masked — the underlying verification
    error propagates, as it would sequentially.

    With a ``tracer``, the batch emits ``batch.start`` / ``batch.finish``
    around the run. On the sequential path the tracer is threaded into
    each task (``worker.task.start`` / ``worker.task.finish``, plus the
    service's cache events); pool workers cannot share the parent's
    tracer, so for ``workers > 1`` one ``worker.task.finish`` event per
    task is replayed from the result records as they are collected.
    """
    tasks = list(tasks)
    if tracer is not None:
        tracer.emit(
            ev.BATCH_START,
            tasks=len(tasks),
            workers=workers,
            cases=tuple(task.case for task in tasks),
        )
    started = time.perf_counter()
    records = _run_batch_inner(tasks, workers, cache_dir, tracer)
    if tracer is not None:
        tracer.emit(
            ev.BATCH_FINISH,
            tasks=len(records),
            workers=workers,
            wall_clock_seconds=time.perf_counter() - started,
            cache_hits=sum(1 for record in records if record["cached"]),
        )
    return records


def _run_batch_inner(
    tasks: list[VerificationTask],
    workers: int,
    cache_dir: str | None,
    tracer: Tracer | None,
) -> list[dict[str, Any]]:
    if not tasks:
        return []
    if workers <= 1 or not _picklable(tasks):
        return _run_sequential(tasks, cache_dir, tracer)
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError):
        return _run_sequential(tasks, cache_dir, tracer)
    try:
        with executor:
            futures = [
                executor.submit(_execute, task, cache_dir) for task in tasks
            ]
            records = []
            for future in futures:
                record = future.result()
                if tracer is not None:
                    tracer.emit(
                        ev.WORKER_TASK_FINISH,
                        case=record["case"],
                        worker=record["worker"],
                        cached=record["cached"],
                        task_seconds=record["task_seconds"],
                    )
                records.append(record)
            return records
    except (BrokenProcessPool, pickle.PicklingError, TypeError, AttributeError):
        # A worker died mid-batch (OOM, signal) or a task past the
        # representative probe failed to serialize: degrade to the
        # documented sequential fallback. Completed tasks re-answer from
        # the shared cache; deterministic verification errors still
        # propagate (they reproduce sequentially).
        return _run_sequential(tasks, cache_dir, tracer)


def verdicts_ok(records: Sequence[dict[str, Any]]) -> bool:
    """Whether every record in a batch reports a passing verification."""
    return all(record["ok"] for record in records)


def batch_report(
    records: Sequence[dict[str, Any]],
    *,
    wall_clock_seconds: float | None = None,
    workers: int | None = None,
) -> RunReport:
    """Aggregate a batch's records into a run report.

    Counters: ``tasks``, ``ok`` / ``failed``, ``cache.hit`` /
    ``cache.miss``. Timers: ``task`` over every task's in-process
    wall-clock, ``verify`` over the service-call portion, and one
    ``worker.<name>`` timer per executing process — so the per-worker
    totals sum to the ``task`` total, and (for a cold parallel run) the
    largest per-worker total lower-bounds the batch wall-clock recorded
    in ``BENCH_verification.json``.
    """
    registry = MetricsRegistry()
    tasks = registry.counter("tasks")
    for record in records:
        tasks.add()
        registry.counter("ok" if record["ok"] else "failed").add()
        registry.counter("cache.hit" if record["cached"] else "cache.miss").add()
        registry.timer("task").record(record["task_seconds"])
        registry.timer("verify").record(record["call_seconds"])
        registry.timer(f"worker.{record['worker']}").record(record["task_seconds"])
    meta: dict[str, Any] = {}
    if workers is not None:
        meta["workers"] = workers
    if wall_clock_seconds is not None:
        meta["wall_clock_seconds"] = round(wall_clock_seconds, 6)
    return registry.report(**meta)
