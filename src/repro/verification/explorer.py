"""State-space exploration.

Builds explicit transition systems for finite instances: either over a
supplied state set (typically the full space or the fault-span extension)
or by reachability from a set of roots. The transition system is the
shared substrate of the closure and convergence checkers.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.errors import StateSpaceTooLargeError, UnknownStateError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import DEFAULT_MAX_STATES, State

__all__ = [
    "ENGINES",
    "Transition",
    "TransitionSystem",
    "build_transition_system",
    "explore",
    "validate_engine",
]


@dataclass(frozen=True)
class Transition:
    """One edge of the transition system: ``source --action--> target``."""

    source: int
    action_name: str
    target: int


@dataclass
class TransitionSystem:
    """An explicit-state transition graph.

    States are indexed densely; ``edges[i]`` lists the outgoing
    ``(action_name, target_index)`` pairs of state ``i``. ``escapes``
    records transitions whose target fell outside the supplied state set —
    nonempty escapes mean the set was not closed under the program, which
    the closure checker reports with witnesses.
    """

    states: list[State]
    edges: list[list[tuple[str, int]]]
    escapes: list[tuple[int, str, State]] = field(default_factory=list)

    def index_of(self, state: State) -> int:
        """The dense index of ``state``.

        Raises:
            UnknownStateError: if the state is not part of this system.
        """
        try:
            return self._index[state]
        except KeyError:
            raise UnknownStateError(
                f"state {state!r} is not among the {len(self.states)} states "
                "of this transition system"
            ) from None

    def __post_init__(self) -> None:
        self._index: dict[State, int] = {
            state: position for position, state in enumerate(self.states)
        }
        # satisfying() memo: id(predicate) -> (predicate, indices). The
        # predicate object is kept alive so its id cannot be recycled.
        self._satisfying_cache: dict[int, tuple[Predicate, tuple[int, ...]]] = {}

    def __getstate__(self) -> dict:
        # The index is rebuilt and the satisfying() memo (which holds
        # unpicklable predicate callables) is dropped on unpickling.
        return {
            "states": self.states,
            "edges": self.edges,
            "escapes": self.escapes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    def __len__(self) -> int:
        return len(self.states)

    def successors(self, index: int) -> list[tuple[str, int]]:
        return self.edges[index]

    def satisfying(self, predicate: Predicate) -> tuple[int, ...]:
        """Indices of states where ``predicate`` holds.

        The result is computed once per predicate object and memoized —
        verification passes query the same invariant/fault-span predicates
        repeatedly over the same system. The tuple is immutable, so the
        memoized value cannot be corrupted by callers.
        """
        cached = self._satisfying_cache.get(id(predicate))
        if cached is not None:
            return cached[1]
        result = tuple(
            position
            for position, state in enumerate(self.states)
            if predicate(state)
        )
        self._satisfying_cache[id(predicate)] = (predicate, result)
        return result


#: Valid values of the ``engine`` switch on exploration entry points.
ENGINES = ("auto", "packed", "dict")


def validate_engine(engine: str) -> None:
    """Raise :class:`~repro.core.errors.ValidationError` unless ``engine``
    is one of :data:`ENGINES`."""
    if engine not in ENGINES:
        from repro.core.errors import ValidationError

        raise ValidationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )


#: Backwards-compatible alias — ``validate_engine`` is the public name.
_validate_engine = validate_engine


def build_transition_system(
    program: Program,
    states: Iterable[State],
    *,
    engine: str = "auto",
) -> TransitionSystem:
    """The transition graph of ``program`` over exactly ``states``.

    Transitions leaving the set are recorded in ``escapes`` rather than
    silently dropped.

    Args:
        engine: ``"packed"`` builds a flat-array
            :class:`~repro.kernel.engine.PackedTransitionSystem` (same
            interface, raises
            :class:`~repro.kernel.codec.PackedUnsupported` when a domain
            is infinite or a state cannot be packed); ``"dict"`` forces
            this module's dict-backed system; ``"auto"`` (default) tries
            packed and falls back to dict.
    """
    _validate_engine(engine)
    state_list = list(states)
    if engine != "dict":
        from repro.kernel.codec import PackedUnsupported
        from repro.kernel.engine import build_packed_system

        try:
            return build_packed_system(program, state_list)
        except PackedUnsupported:
            if engine == "packed":
                raise
    index = {state: position for position, state in enumerate(state_list)}
    edges: list[list[tuple[str, int]]] = []
    escapes: list[tuple[int, str, State]] = []
    for position, state in enumerate(state_list):
        outgoing: list[tuple[str, int]] = []
        for action, successor in program.successors(state):
            target = index.get(successor)
            if target is None:
                escapes.append((position, action.name, successor))
            else:
                outgoing.append((action.name, target))
        edges.append(outgoing)
    return TransitionSystem(states=state_list, edges=edges, escapes=escapes)


def explore(
    program: Program,
    roots: Iterable[State],
    *,
    max_states: int = DEFAULT_MAX_STATES,
    engine: str = "auto",
) -> TransitionSystem:
    """The transition graph reachable from ``roots`` (BFS).

    Args:
        engine: As in :func:`build_transition_system`; ``"auto"`` falls
            back to the dict engine when the program, a root, or a
            reached successor cannot be packed.

    Raises:
        StateSpaceTooLargeError: if more than ``max_states`` states become
            reachable.
    """
    _validate_engine(engine)
    root_list = list(roots)
    if engine != "dict":
        from repro.kernel.codec import PackedUnsupported
        from repro.kernel.engine import explore_packed

        try:
            return explore_packed(program, root_list, max_states=max_states)
        except PackedUnsupported:
            if engine == "packed":
                raise
    roots = root_list
    state_list: list[State] = []
    index: dict[State, int] = {}
    root_count = 0

    def intern(state: State) -> int:
        position = index.get(state)
        if position is None:
            if len(state_list) >= max_states:
                raise StateSpaceTooLargeError(
                    f"state space reachable from {root_count} root state(s) "
                    f"exceeds {max_states} states"
                )
            position = len(state_list)
            index[state] = position
            state_list.append(state)
        return position

    for state in roots:
        root_count += 1
        intern(state)
    edges: list[list[tuple[str, int]]] = []
    cursor = 0
    while cursor < len(state_list):
        state = state_list[cursor]
        outgoing = [
            (action.name, intern(successor))
            for action, successor in program.successors(state)
        ]
        edges.append(outgoing)
        cursor += 1
    return TransitionSystem(states=state_list, edges=edges)
