"""Liveness ("service") analysis inside the invariant.

Closure and convergence make a program *return* to legitimacy; whether
the legitimate behaviour then actually serves every process — each node
privileged infinitely often (token ring), every node visited by every
wave (diffusing computation) — is a separate liveness question. On a
finite instance it reduces to graph structure:

- the legitimate states' transition graph decomposes into strongly
  connected components; its **bottom components** (no edge leaving) are
  the recurrent classes — where every infinite legitimate run ends up;
- a recurrent class *serves* a process iff some state in the class
  enables one of that process's actions (under weak fairness the action
  then executes infinitely often in runs that stay in the class).

:func:`check_service` verifies that every recurrent class reachable from
the legitimate states serves every process of interest.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.core.program import Program
from repro.core.state import State
from repro.verification.convergence import _strongly_connected_components
from repro.verification.explorer import TransitionSystem, build_transition_system

__all__ = ["RecurrentClass", "ServiceReport", "recurrent_classes", "check_service"]


@dataclass(frozen=True)
class RecurrentClass:
    """A bottom SCC of the legitimate transition graph."""

    states: tuple[State, ...]
    #: Processes with an enabled action somewhere in the class.
    served: frozenset[Hashable]


def recurrent_classes(
    program: Program,
    states: Iterable[State],
    *,
    system: TransitionSystem | None = None,
) -> list[RecurrentClass]:
    """The recurrent classes of ``program`` restricted to ``states``.

    ``states`` must be closed under the program (the invariant's
    extension always is, once closure has been verified).

    Raises:
        ValueError: when the set is not closed.
    """
    ts = system if system is not None else build_transition_system(program, states)
    if ts.escapes:
        raise ValueError("the state set is not closed under the program")
    node_ids = list(range(len(ts)))
    successors = {
        index: [target for _, target in ts.edges[index]] for index in node_ids
    }
    components = _strongly_connected_components(node_ids, successors)
    classes: list[RecurrentClass] = []
    for component in components:
        members = set(component)
        is_bottom = all(
            target in members
            for index in component
            for target in successors[index]
        )
        if not is_bottom:
            continue
        served: set[Hashable] = set()
        for index in component:
            for action in program.enabled_actions(ts.states[index]):
                if action.process is not None:
                    served.add(action.process)
        classes.append(
            RecurrentClass(
                states=tuple(ts.states[index] for index in component),
                served=frozenset(served),
            )
        )
    return classes


@dataclass(frozen=True)
class ServiceReport:
    """Whether every recurrent class serves every required process."""

    ok: bool
    classes: tuple[RecurrentClass, ...]
    required: frozenset[Hashable]
    #: (class index, missing processes) for each deficient class.
    deficiencies: tuple[tuple[int, frozenset[Hashable]], ...]

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        lines = [
            f"service: {'every process served' if self.ok else 'DEFICIENT'} "
            f"({len(self.classes)} recurrent class(es), "
            f"{len(self.required)} processes)"
        ]
        for index, missing in self.deficiencies:
            lines.append(
                f"  class {index} ({len(self.classes[index].states)} states) "
                f"never serves {sorted(map(str, missing))}"
            )
        return "\n".join(lines)


def check_service(
    program: Program,
    legitimate_states: Iterable[State],
    *,
    processes: Iterable[Hashable] | None = None,
) -> ServiceReport:
    """Check that legitimate operation serves every process forever.

    Args:
        program: The program.
        legitimate_states: The extension of the (closed) invariant.
        processes: The processes that must be served; defaults to every
            process owning a variable in the program.
    """
    required = frozenset(
        processes if processes is not None else program.processes()
    )
    classes = tuple(recurrent_classes(program, legitimate_states))
    deficiencies = tuple(
        (index, required - cls.served)
        for index, cls in enumerate(classes)
        if required - cls.served
    )
    return ServiceReport(
        ok=bool(classes) and not deficiencies,
        classes=classes,
        required=required,
        deficiencies=deficiencies,
    )
