"""Fairness-free convergence diagnostics (the paper's Section 8 remark).

"The fairness requirement on program computations is often unnecessary.
(In fact, each of the programs derived in this paper is correct even when
the fairness requirement is ignored; to see this, observe that each
computation of the closure actions is either finite or has a state where
S holds.)"

Two tools:

- :func:`check_closure_computations` — the paper's observation itself:
  over the ``¬S`` region, the transition subgraph using *closure actions
  only* must be acyclic; then any closure-only computation either leaves
  the region (reaches S) or runs out of enabled closure actions
  (is finite, or continues only via convergence actions).
- :func:`check_fairness_free` — the conclusion, decided exactly: full
  convergence under an arbitrary (unfair) daemon, i.e.
  :func:`repro.verification.convergence.check_convergence` with
  ``fairness="none"``, packaged with the observation so reports show
  both the *why* and the *what*.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.verification.convergence import (
    ConvergenceResult,
    _component_has_internal_edge,
    _strongly_connected_components,
    check_convergence,
)
from repro.verification.explorer import TransitionSystem, build_transition_system

__all__ = [
    "ClosureComputationReport",
    "FairnessFreeReport",
    "check_closure_computations",
    "check_fairness_free",
]


@dataclass(frozen=True)
class ClosureComputationReport:
    """Whether closure-only computations are finite or reach the target."""

    ok: bool
    bad_states: int
    cycle: tuple[State, ...] | None = None

    def __bool__(self) -> bool:
        return self.ok


def check_closure_computations(
    program: Program,
    closure_action_names: Iterable[str],
    target: Predicate,
    states: Iterable[State],
    *,
    system: TransitionSystem | None = None,
) -> ClosureComputationReport:
    """Check the Section 8 observation for a given closure-action set.

    Holds iff the ``¬target`` subgraph restricted to transitions by the
    named closure actions is acyclic: every closure-only computation
    starting outside the target is then finite or crosses into it.
    """
    closure_names = set(closure_action_names)
    ts = system if system is not None else build_transition_system(program, states)
    bad = [index for index, state in enumerate(ts.states) if not target(state)]
    bad_set = set(bad)
    internal = {
        index: [
            target_index
            for action_name, target_index in ts.edges[index]
            if action_name in closure_names and target_index in bad_set
        ]
        for index in bad
    }
    for component in _strongly_connected_components(bad, internal):
        if _component_has_internal_edge(component, internal):
            return ClosureComputationReport(
                ok=False,
                bad_states=len(bad),
                cycle=tuple(ts.states[i] for i in component),
            )
    return ClosureComputationReport(ok=True, bad_states=len(bad))


@dataclass(frozen=True)
class FairnessFreeReport:
    """The Section 8 remark, decided for one program."""

    #: The observation: closure-only computations are finite or hit S.
    observation: ClosureComputationReport
    #: The conclusion: convergence under an arbitrary unfair daemon.
    unfair_convergence: ConvergenceResult
    #: Baseline: convergence under the paper's weak fairness.
    weak_convergence: ConvergenceResult

    @property
    def fairness_needed(self) -> bool:
        """True when the program converges fairly but not unfairly."""
        return self.weak_convergence.ok and not self.unfair_convergence.ok

    def describe(self) -> str:
        lines = [
            "Section 8 fairness analysis:",
            f"  closure-only computations finite-or-reach-S: "
            f"{'yes' if self.observation.ok else 'NO'}",
            f"  converges under weak fairness: "
            f"{'yes' if self.weak_convergence.ok else 'NO'}",
            f"  converges without fairness: "
            f"{'yes' if self.unfair_convergence.ok else 'NO'}",
        ]
        if self.fairness_needed:
            lines.append("  => this program genuinely needs the fairness assumption")
        elif self.weak_convergence.ok:
            lines.append("  => fairness is unnecessary for this program")
        return "\n".join(lines)


def check_fairness_free(
    program: Program,
    closure_action_names: Iterable[str],
    target: Predicate,
    states: Iterable[State],
) -> FairnessFreeReport:
    """Run the full Section 8 analysis on a finite instance."""
    state_list = list(states)
    system = build_transition_system(program, state_list)
    observation = check_closure_computations(
        program, closure_action_names, target, state_list, system=system
    )
    unfair = check_convergence(
        program, state_list, target, fairness="none", system=system
    )
    weak = check_convergence(
        program, state_list, target, fairness="weak", system=system
    )
    return FairnessFreeReport(
        observation=observation,
        unfair_convergence=unfair,
        weak_convergence=weak,
    )
