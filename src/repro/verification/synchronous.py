"""Verification under the synchronous daemon.

The paper's computations interleave one action at a time; real networks
often step *synchronously* (every process moves at once). Convergence is
daemon-sensitive: designs correct under a central daemon may oscillate
synchronously — the classic failure is two neighbors repeatedly reacting
to each other's simultaneous moves.

Because the protocols in this library enable at most one action per
process in any state (guards within a process are mutually exclusive),
the synchronous successor of a state is *deterministic*: the run from
any state is a ρ-shaped orbit — a tail followed by a limit cycle. This
module computes the orbit and classifies the outcome per start state:

- ``converges``: the orbit enters the target and stays;
- ``oscillates``: the orbit settles into a limit cycle outside the
  target;
- a fixed point outside the target counts as ``oscillates`` with cycle
  length 1 (a synchronous deadlock).

:func:`check_synchronous_convergence` aggregates over every start state,
returning the counterexample orbit for the first failure.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.errors import ValidationError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.scheduler.daemons import SynchronousDaemon

__all__ = [
    "SynchronousOrbit",
    "SynchronousReport",
    "synchronous_orbit",
    "check_synchronous_convergence",
]


@dataclass(frozen=True)
class SynchronousOrbit:
    """The deterministic synchronous run from one start state."""

    tail: tuple[State, ...]
    cycle: tuple[State, ...]

    @property
    def converged_state(self) -> State | None:
        """The fixed point, when the cycle has length 1."""
        return self.cycle[0] if len(self.cycle) == 1 else None

    def reaches(self, target: Predicate) -> bool:
        """Whether the orbit's *limit* satisfies the target forever.

        True iff every state of the limit cycle satisfies the target
        (for a closed target this is the right notion of convergence;
        transient target visits in the tail do not count).
        """
        return all(target(state) for state in self.cycle)


def synchronous_orbit(
    program: Program,
    start: State,
    *,
    max_steps: int = 100_000,
    on_conflict: str = "first",
) -> SynchronousOrbit:
    """Follow the deterministic synchronous run until it repeats.

    Args:
        program: The program under the synchronous daemon.
        start: The start state.
        max_steps: Safety bound on the orbit length.
        on_conflict: What to do when a process has several enabled
            actions in a state: ``"first"`` (default) fires the first in
            program order — the canonical deterministic synchronous
            daemon — while ``"error"`` raises, for programs whose
            per-process guards are meant to be mutually exclusive.

    Raises:
        ValidationError: on a per-process conflict with
            ``on_conflict="error"``, or if no repeat occurs within
            ``max_steps``.
    """
    if on_conflict not in ("first", "error"):
        raise ValidationError(f"unknown on_conflict mode {on_conflict!r}")
    daemon = SynchronousDaemon()  # deterministic: first enabled per process
    seen: dict[State, int] = {}
    trajectory: list[State] = []
    state = start
    for _ in range(max_steps):
        if state in seen:
            split = seen[state]
            return SynchronousOrbit(
                tail=tuple(trajectory[:split]),
                cycle=tuple(trajectory[split:]),
            )
        seen[state] = len(trajectory)
        trajectory.append(state)
        if on_conflict == "error":
            _check_deterministic(program, state)
        outcome = daemon.advance(program, state, len(trajectory))
        if outcome is None:
            # Terminal state: a fixed point.
            return SynchronousOrbit(tail=tuple(trajectory[:-1]), cycle=(state,))
        state, _ = outcome
    raise ValidationError(
        f"no repeat within {max_steps} synchronous steps; raise max_steps"
    )


def _check_deterministic(program: Program, state: State) -> None:
    by_process: dict = {}
    for action in program.enabled_actions(state):
        key = action.process if action.process is not None else action.name
        if key in by_process:
            raise ValidationError(
                f"process {key!r} has two enabled actions "
                f"({by_process[key]}, {action.name}) at {state!r}; the "
                "synchronous orbit is not deterministic"
            )
        by_process[key] = action.name


@dataclass(frozen=True)
class SynchronousReport:
    """Aggregate synchronous-convergence verdict over a state set."""

    ok: bool
    checked: int
    oscillating_starts: int
    #: Longest limit cycle observed outside the target.
    worst_cycle: tuple[State, ...] | None
    #: Example start state leading to the worst cycle.
    witness_start: State | None

    def __bool__(self) -> bool:
        return self.ok


def check_synchronous_convergence(
    program: Program,
    states: Iterable[State],
    target: Predicate,
) -> SynchronousReport:
    """Classify every start state's synchronous orbit against ``target``."""
    checked = 0
    oscillating = 0
    worst_cycle: tuple[State, ...] | None = None
    witness: State | None = None
    verdict_cache: dict[State, bool] = {}
    for start in states:
        checked += 1
        if start in verdict_cache:
            if not verdict_cache[start]:
                oscillating += 1
            continue
        orbit = synchronous_orbit(program, start)
        good = orbit.reaches(target)
        for visited in orbit.tail:
            verdict_cache[visited] = good
        for visited in orbit.cycle:
            verdict_cache[visited] = good
        if not good:
            oscillating += 1
            if worst_cycle is None or len(orbit.cycle) > len(worst_cycle):
                worst_cycle = orbit.cycle
                witness = start
    return SynchronousReport(
        ok=oscillating == 0,
        checked=checked,
        oscillating_starts=oscillating,
        worst_cycle=worst_cycle,
        witness_start=witness,
    )
