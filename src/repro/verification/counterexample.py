"""Human-readable rendering of states and traces.

Verification results carry raw :class:`~repro.core.state.State` objects;
these helpers render them — and whole computations — as aligned text with
per-step variable diffs, for examples, failing tests, and reports.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.state import State
from repro.scheduler.computation import Computation

__all__ = ["format_state", "format_state_diff", "format_computation", "format_states"]


def format_state(state: State, *, per_line: int = 6) -> str:
    """Render a state as ``name=value`` pairs, a few per line."""
    items = [f"{name}={state[name]!r}" for name in sorted(state)]
    lines = [
        "  " + "  ".join(items[start : start + per_line])
        for start in range(0, len(items), per_line)
    ]
    return "\n".join(lines)


def format_state_diff(before: State, after: State) -> str:
    """Render only the variables that changed between two states."""
    changes = [
        f"{name}: {before[name]!r} -> {after[name]!r}"
        for name in sorted(before)
        if before[name] != after[name]
    ]
    if not changes:
        return "(no change)"
    return ", ".join(changes)


def format_states(states: Sequence[State], *, limit: int = 10) -> str:
    """Render a sequence of states (e.g. a counterexample cycle)."""
    lines = []
    for position, state in enumerate(states[:limit]):
        lines.append(f"state {position}:")
        lines.append(format_state(state))
    if len(states) > limit:
        lines.append(f"... and {len(states) - limit} more states")
    return "\n".join(lines)


def format_computation(computation: Computation, *, limit: int = 30) -> str:
    """Render a computation as a step-by-step diff listing."""
    lines = ["initial state:", format_state(computation.initial)]
    previous = computation.initial
    for position, step in enumerate(computation.steps[:limit]):
        names = " + ".join(action.name for action in step.actions)
        lines.append(
            f"step {position + 1} [{names}]: {format_state_diff(previous, step.state)}"
        )
        previous = step.state
    if len(computation.steps) > limit:
        lines.append(f"... and {len(computation.steps) - limit} more steps")
    if computation.terminated:
        lines.append("(terminated: no action enabled)")
    return "\n".join(lines)
