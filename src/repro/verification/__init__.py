"""Exhaustive verification: closure, convergence, tolerance, stairs.

Single checks live in their own modules; the cached
:class:`~repro.verification.service.VerificationService` and the
process-pool batch runner in :mod:`repro.verification.parallel` wrap
them for repeated and fleet-wide verification.
"""

from repro.verification.checker import ToleranceReport, check_tolerance
from repro.verification.closure import ClosureResult, ClosureWitness, check_closure
from repro.verification.convergence import (
    ConvergenceCounterexample,
    ConvergenceResult,
    check_convergence,
    worst_case_convergence_steps,
)
from repro.verification.counterexample import (
    format_computation,
    format_state,
    format_state_diff,
    format_states,
)
from repro.verification.explorer import (
    ENGINES,
    Transition,
    TransitionSystem,
    build_transition_system,
    explore,
    validate_engine,
)
from repro.verification.fairness_free import (
    ClosureComputationReport,
    FairnessFreeReport,
    check_closure_computations,
    check_fairness_free,
)
from repro.verification.liveness import (
    RecurrentClass,
    ServiceReport,
    check_service,
    recurrent_classes,
)
from repro.verification.parallel import (
    VerificationTask,
    batch_report,
    run_batch,
    verdicts_ok,
)
from repro.verification.service import (
    METHODS,
    ServiceVerdict,
    VerificationService,
    validate_method,
)
from repro.verification.stairs import StairReport, StairStep, check_stair
from repro.verification.synchronous import (
    SynchronousOrbit,
    SynchronousReport,
    check_synchronous_convergence,
    synchronous_orbit,
)

__all__ = [
    "ENGINES",
    "METHODS",
    "ClosureComputationReport",
    "ClosureResult",
    "ClosureWitness",
    "FairnessFreeReport",
    "check_closure_computations",
    "check_fairness_free",
    "ConvergenceCounterexample",
    "ConvergenceResult",
    "RecurrentClass",
    "ServiceReport",
    "ServiceVerdict",
    "StairReport",
    "StairStep",
    "SynchronousOrbit",
    "VerificationService",
    "VerificationTask",
    "batch_report",
    "check_service",
    "recurrent_classes",
    "SynchronousReport",
    "ToleranceReport",
    "check_synchronous_convergence",
    "synchronous_orbit",
    "Transition",
    "TransitionSystem",
    "build_transition_system",
    "check_closure",
    "check_convergence",
    "check_stair",
    "check_tolerance",
    "explore",
    "format_computation",
    "format_state",
    "format_state_diff",
    "format_states",
    "run_batch",
    "validate_engine",
    "validate_method",
    "verdicts_ok",
    "worst_case_convergence_steps",
]
