"""Convergence checking.

Convergence (Section 3): every computation of the program that starts at
any state where ``T`` holds reaches a state where ``S`` holds. On a finite
instance this is decidable from the transition graph of the ``T``-states:

- A **deadlock** outside ``S`` (a ``T ∧ ¬S`` state with no enabled action)
  violates convergence — the maximal finite computation ends outside ``S``.
- An infinite computation avoiding ``S`` exists iff the subgraph induced
  by the ``¬S`` states contains a cycle that the daemon can follow:

  * Under **no fairness** ("none"), any cycle among ``¬S`` states is a
    violation: the daemon may loop on it forever.
  * Under **weak fairness** ("weak" — the paper's computation model),
    a cycle is followable iff it lies in a strongly connected component
    ``C`` of the ``¬S`` subgraph such that every action enabled at *all*
    states of ``C`` has some transition inside ``C``. If instead some
    action is enabled throughout ``C`` but all its transitions leave
    ``C``, weak fairness forces the computation out of ``C`` (and out of
    any subset of ``C``, since the action is enabled there too); such a
    component cannot trap a fair computation. Conversely, when every
    always-enabled action has an internal transition, a walk that
    traverses all of ``C``'s internal transitions infinitely often is
    fair and never reaches ``S``. The SCC test is therefore exact.

The checker returns concrete counterexamples (a deadlock state, or the
states of a followable cycle) so a failed design can be debugged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.errors import ValidationError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.verification.explorer import TransitionSystem, build_transition_system

__all__ = [
    "ConvergenceCounterexample",
    "ConvergenceResult",
    "check_convergence",
    "worst_case_convergence_steps",
]

FAIRNESS_MODES = ("none", "weak")


@dataclass(frozen=True)
class ConvergenceCounterexample:
    """Why convergence fails: a deadlock state or a followable cycle."""

    kind: str  # "deadlock" or "cycle"
    states: tuple[State, ...]

    def describe(self) -> str:
        if self.kind == "deadlock":
            return f"deadlock outside the target at {self.states[0]!r}"
        lines = [f"followable cycle of {len(self.states)} states outside the target:"]
        lines.extend(f"  {state!r}" for state in self.states[:10])
        if len(self.states) > 10:
            lines.append(f"  ... and {len(self.states) - 10} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class ConvergenceResult:
    """Outcome of a convergence check."""

    ok: bool
    fairness: str
    span_states: int
    bad_states: int
    counterexample: ConvergenceCounterexample | None = None

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        verdict = "converges" if self.ok else "does NOT converge"
        base = (
            f"{verdict} under {self.fairness!r} fairness "
            f"({self.span_states} span states, {self.bad_states} outside target)"
        )
        if self.counterexample is None:
            return base
        return f"{base}\n{self.counterexample.describe()}"


def _strongly_connected_components(
    node_ids: Sequence[int],
    successors: dict[int, list[int]],
) -> list[list[int]]:
    """Iterative Tarjan SCC over the given nodes."""
    index_counter = 0
    stack: list[int] = []
    on_stack: set[int] = set()
    indices: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    components: list[list[int]] = []

    for root in node_ids:
        if root in indices:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_cursor = work.pop()
            if child_cursor == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            children = successors.get(node, [])
            for position in range(child_cursor, len(children)):
                child = children[position]
                if child not in indices:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if recursed:
                continue
            if lowlink[node] == indices[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def _internal_successors(
    ts: TransitionSystem,
    bad: list[int],
    bad_set: set[int],
) -> dict[int, list[int]]:
    """Per-bad-state successors staying inside the bad region.

    Reads the packed engine's CSR arrays directly when the system carries
    them, skipping ``ts.edges``'s per-edge tuple materialization.
    """
    offsets = getattr(ts, "offsets", None)
    if offsets is None:
        return {
            position: [
                target_index
                for _, target_index in ts.edges[position]
                if target_index in bad_set
            ]
            for position in bad
        }
    targets = ts.targets
    return {
        position: [
            targets[k]
            for k in range(offsets[position], offsets[position + 1])
            if targets[k] in bad_set
        ]
        for position in bad
    }


def _component_has_internal_edge(
    component: list[int],
    successors: dict[int, list[int]],
) -> bool:
    members = set(component)
    if len(component) > 1:
        return True
    node = component[0]
    return node in successors and node in successors[node] and node in members


def _find_cycle_in_component(
    component: list[int],
    successors: dict[int, list[int]],
) -> list[int]:
    """A concrete cycle inside a nontrivial SCC, as a list of node ids."""
    members = set(component)
    start = component[0]
    # DFS until we revisit a node on the current path.
    path: list[int] = [start]
    position_on_path = {start: 0}
    while True:
        node = path[-1]
        advanced = False
        for child in successors.get(node, []):
            if child not in members:
                continue
            if child in position_on_path:
                return path[position_on_path[child] :]
            path.append(child)
            position_on_path[child] = len(path) - 1
            advanced = True
            break
        if not advanced:
            # Within an SCC every node has an internal successor, so this
            # is unreachable; guard against malformed input anyway.
            raise ValidationError("component is not strongly connected")


def check_convergence(
    program: Program,
    span_states: Iterable[State],
    target: Predicate,
    *,
    fairness: str = "weak",
    system: TransitionSystem | None = None,
) -> ConvergenceResult:
    """Decide whether every computation from ``span_states`` reaches ``target``.

    Args:
        program: The program under test.
        span_states: The extension of the fault-span ``T`` on this finite
            instance. Must be closed under the program (checked; a
            transition escaping the set raises :class:`ValidationError`
            since convergence is only defined relative to a closed span).
        target: The invariant ``S``.
        fairness: ``"weak"`` (the paper's computation model) or ``"none"``
            (arbitrary daemon; the Section 8 remark).
        system: Optionally a prebuilt transition system over exactly the
            span states, to share work across checks.
    """
    if fairness not in FAIRNESS_MODES:
        raise ValidationError(
            f"unknown fairness mode {fairness!r}; expected one of {FAIRNESS_MODES}"
        )
    ts = system if system is not None else build_transition_system(program, span_states)
    if ts.escapes:
        index, action_name, successor = ts.escapes[0]
        raise ValidationError(
            "span is not closed under the program: "
            f"{ts.states[index]!r} --{action_name}--> {successor!r} leaves the span"
        )

    # satisfying() is memoized on the system, so the tolerance checker's
    # earlier invariant evaluations are reused here (the packed engine
    # pre-populates the memo from its membership masks).
    good = set(ts.satisfying(target))
    bad = [position for position in range(len(ts)) if position not in good]
    bad_set = set(bad)

    offsets = getattr(ts, "offsets", None)
    for position in bad:
        if (
            offsets[position] == offsets[position + 1]
            if offsets is not None
            else not ts.edges[position]
        ):
            return ConvergenceResult(
                ok=False,
                fairness=fairness,
                span_states=len(ts),
                bad_states=len(bad),
                counterexample=ConvergenceCounterexample(
                    kind="deadlock", states=(ts.states[position],)
                ),
            )

    internal = _internal_successors(ts, bad, bad_set)

    components = _strongly_connected_components(bad, internal)
    for component in components:
        if not _component_has_internal_edge(component, internal):
            continue
        if fairness == "none":
            cycle = _find_cycle_in_component(component, internal)
            return ConvergenceResult(
                ok=False,
                fairness=fairness,
                span_states=len(ts),
                bad_states=len(bad),
                counterexample=ConvergenceCounterexample(
                    kind="cycle",
                    states=tuple(ts.states[node] for node in cycle),
                ),
            )
        members = set(component)
        enabled_sets = [
            {name for name, _ in ts.edges[node]} for node in component
        ]
        always_enabled = set.intersection(*enabled_sets)
        internal_actions = {
            name
            for node in component
            for name, target_index in ts.edges[node]
            if target_index in members
        }
        if always_enabled <= internal_actions:
            # Emit an actual followable cycle, not the whole component:
            # ``describe()`` claims a cycle, so the listed states must
            # form one. Prefer a cycle along always-enabled actions (a
            # weakly-fair daemon can repeat it verbatim); when those
            # edges do not close a cycle on their own, any internal
            # cycle of the component still witnesses the trap.
            cycle = None
            if always_enabled:
                restricted = {
                    node: [
                        target_index
                        for name, target_index in ts.edges[node]
                        if target_index in members and name in always_enabled
                    ]
                    for node in component
                }
                if all(restricted[node] for node in component):
                    try:
                        cycle = _find_cycle_in_component(component, restricted)
                    except ValidationError:
                        cycle = None
            if cycle is None:
                cycle = _find_cycle_in_component(component, internal)
            return ConvergenceResult(
                ok=False,
                fairness=fairness,
                span_states=len(ts),
                bad_states=len(bad),
                counterexample=ConvergenceCounterexample(
                    kind="cycle",
                    states=tuple(ts.states[node] for node in cycle),
                ),
            )
    return ConvergenceResult(
        ok=True,
        fairness=fairness,
        span_states=len(ts),
        bad_states=len(bad),
    )


def worst_case_convergence_steps(
    program: Program,
    span_states: Iterable[State],
    target: Predicate,
    *,
    system: TransitionSystem | None = None,
) -> int | None:
    """The exact worst-case number of steps to reach ``target``.

    Defined when the program converges under an arbitrary daemon, i.e.
    when the ``¬target`` subgraph is acyclic: the answer is then the
    longest path through ``¬target`` states (an adversarial daemon can
    force exactly this many steps, and no more). Returns ``None`` when
    the subgraph has a cycle, in which case an unfair daemon can postpone
    convergence forever.
    """
    ts = system if system is not None else build_transition_system(program, span_states)
    good = set(ts.satisfying(target))
    bad = [position for position in range(len(ts)) if position not in good]
    bad_set = set(bad)
    internal = _internal_successors(ts, bad, bad_set)
    components = _strongly_connected_components(bad, internal)
    for component in components:
        if _component_has_internal_edge(component, internal):
            return None
    # Longest path over the DAG of bad states; length counts the steps to
    # first leave the bad region (each bad state contributes one step).
    depth: dict[int, int] = {}
    order = [node for component in components for node in component]
    # Tarjan emits components in reverse topological order of the
    # condensation, so iterating the flattened list computes children
    # before parents.
    for node in order:
        best = 0
        for child in internal[node]:
            best = max(best, depth[child])
        depth[node] = 1 + best
    return max(depth.values(), default=0)
