"""Closure checking.

A state predicate ``R`` is *closed* in a program iff every action
preserves it (Section 2). Closure of the invariant ``S`` and fault-span
``T`` is the first requirement of T-tolerance (Section 3). The checker is
exhaustive over a finite state set and returns concrete witnesses.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State

__all__ = ["ClosureWitness", "ClosureResult", "check_closure"]


@dataclass(frozen=True)
class ClosureWitness:
    """A step that leaves the predicate: ``before --action--> after``."""

    before: State
    action_name: str
    after: State

    def describe(self) -> str:
        return f"{self.action_name}: {self.before!r} -> {self.after!r}"


@dataclass(frozen=True)
class ClosureResult:
    """Outcome of a closure check over a finite state set."""

    predicate_name: str
    ok: bool
    checked: int
    witnesses: tuple[ClosureWitness, ...] = ()

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        verdict = "closed" if self.ok else "NOT closed"
        lines = [f"{self.predicate_name}: {verdict} ({self.checked} states checked)"]
        for witness in self.witnesses:
            lines.append(f"  escape: {witness.describe()}")
        return "\n".join(lines)


def check_closure(
    predicate: Predicate,
    program: Program,
    states: Iterable[State],
    *,
    max_witnesses: int = 5,
) -> ClosureResult:
    """Exhaustively check that ``predicate`` is closed in ``program``.

    Only states where the predicate holds are expanded; each enabled
    action must lead back into the predicate.
    """
    checked = 0
    witnesses: list[ClosureWitness] = []
    for state in states:
        if not predicate(state):
            continue
        checked += 1
        for action, successor in program.successors(state):
            if not predicate(successor):
                witnesses.append(
                    ClosureWitness(
                        before=state, action_name=action.name, after=successor
                    )
                )
                if len(witnesses) >= max_witnesses:
                    return ClosureResult(
                        predicate_name=predicate.name,
                        ok=False,
                        checked=checked,
                        witnesses=tuple(witnesses),
                    )
    return ClosureResult(
        predicate_name=predicate.name,
        ok=not witnesses,
        checked=checked,
        witnesses=tuple(witnesses),
    )
