"""The content-addressed verdict store: sharded buckets, warm tier, eviction.

:class:`~repro.verification.service.VerificationService` originally kept
its persistent verdict layer as a flat directory of JSON files — fine
for a benchmark rerun, wrong for a long-running daemon whose corpus
grows without bound and whose hot set is a small fraction of it. This
module factors that layer into an explicit :class:`VerdictStore`:

- **sharded buckets** — with ``shards=N`` entries are spread over ``N``
  subdirectories keyed by the leading hex digits of the content
  fingerprint, so no single directory grows unboundedly and bucket
  scans stay cheap (``shards=0`` reproduces the historical flat layout
  byte for byte, which is what the process-pool workers still use);
- **an LRU warm tier** — the most recently touched records stay decoded
  in memory (capacity ``warm_capacity``), so a hot fingerprint is
  answered without re-reading or re-parsing its file;
- **size-bounded eviction** — ``max_entries`` / ``max_bytes`` budgets
  are enforced after every write by evicting the least recently used
  entries (an in-memory LRU index seeded from the directory at startup,
  so restarts preserve recency ordering by file mtime);
- **observability** — ``store.hit`` / ``store.miss`` / ``store.evict``
  events and counters, surfaced through :meth:`stats` (and, in the
  daemon, through ``GET /stats`` and RunReports).

Writes are **atomic and crash-safe**: each record lands in a uniquely
named temporary file in the target directory and is published with
:func:`os.replace`, so a reader can never observe a partially written
entry and an interrupted writer never poisons the cache. A truncated or
corrupt entry (e.g. from a pre-fix writer or disk fault) is treated as a
miss, deleted, and recomputed by the caller.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.observability import events as ev
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = ["VerdictStore"]

#: Default shard count for daemon-grade stores (0 = flat compat layout).
DEFAULT_SHARDS = 16

#: Default decoded-record capacity of the warm tier.
DEFAULT_WARM_CAPACITY = 128


class VerdictStore:
    """A content-addressed JSON record store with budgets and a warm tier.

    Records are keyed by ``(kind, key)`` where ``kind`` is a short label
    (``"tolerance"``, ``"lint"``, ...) and ``key`` is a content
    fingerprint from :mod:`repro.core.fingerprint`. The store never
    interprets records beyond JSON round-tripping.

    Args:
        root: Directory the store owns (created if missing).
        shards: Bucket-directory count; ``0`` keeps every entry directly
            under ``root`` in the historical flat layout.
        warm_capacity: Decoded records kept in the in-memory LRU warm
            tier; ``0`` disables the tier (every hit re-reads disk).
        max_entries: Evict least-recently-used entries beyond this count
            (``None`` = unbounded).
        max_bytes: Evict least-recently-used entries once the on-disk
            footprint exceeds this many bytes (``None`` = unbounded).
        tracer: Optional tracer for ``store.*`` events.
        metrics: Optional registry for ``store.*`` counters.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        shards: int = DEFAULT_SHARDS,
        warm_capacity: int = DEFAULT_WARM_CAPACITY,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self.warm_capacity = warm_capacity
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tracer = tracer
        self.metrics = metrics
        #: (kind, key40) -> size in bytes, in LRU order (oldest first).
        self._index: OrderedDict[tuple[str, str], int] = OrderedDict()
        #: (kind, key40) -> decoded record, in LRU order (oldest first).
        self._warm: OrderedDict[tuple[str, str], dict[str, Any]] = OrderedDict()
        self.hits_warm = 0
        self.hits_disk = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self._bytes = 0
        self._load_index()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _bucket(self, key: str) -> Path:
        if self.shards == 0:
            return self.root
        try:
            prefix = int(key[:8], 16)
        except ValueError:
            prefix = abs(hash(key))
        return self.root / f"{prefix % self.shards:02x}"

    def path(self, kind: str, key: str) -> Path:
        """Where the record for ``(kind, key)`` lives (whether or not
        it exists). The filename truncates the fingerprint to 40 hex
        digits, matching the historical flat layout."""
        return self._bucket(key) / f"{kind}-{key[:40]}.json"

    @staticmethod
    def _parse_name(name: str) -> tuple[str, str] | None:
        if not name.endswith(".json"):
            return None
        stem = name[: -len(".json")]
        kind, sep, key = stem.rpartition("-")
        if not sep or not kind or not key:
            return None
        return kind, key

    def _load_index(self) -> None:
        """Seed the LRU index from disk, oldest mtime first."""
        found: list[tuple[float, tuple[str, str], int]] = []
        directories = [self.root]
        directories.extend(
            child for child in self.root.iterdir() if child.is_dir()
        )
        for directory in directories:
            for entry in directory.iterdir():
                if not entry.is_file():
                    continue
                parsed = self._parse_name(entry.name)
                if parsed is None:
                    continue
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                found.append((stat.st_mtime, parsed, stat.st_size))
        for _, parsed, size in sorted(found, key=lambda item: item[0]):
            self._index[parsed] = size
            self._bytes += size

    # ------------------------------------------------------------------
    # Counters and events
    # ------------------------------------------------------------------

    def _note_hit(self, kind: str, key: str, tier: str) -> None:
        if tier == "warm":
            self.hits_warm += 1
        else:
            self.hits_disk += 1
        if self.metrics is not None:
            self.metrics.counter("store.hit").add()
            self.metrics.counter(f"store.hit.{tier}").add()
        if self.tracer is not None:
            self.tracer.emit(
                ev.STORE_HIT, record_kind=kind, key=key[:16], tier=tier
            )

    def _note_miss(self, kind: str, key: str) -> None:
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("store.miss").add()
        if self.tracer is not None:
            self.tracer.emit(ev.STORE_MISS, record_kind=kind, key=key[:16])

    def _note_evict(self, kind: str, key: str, reason: str) -> None:
        self.evictions += 1
        if self.metrics is not None:
            self.metrics.counter("store.evict").add()
        if self.tracer is not None:
            self.tracer.emit(
                ev.STORE_EVICT, record_kind=kind, key=key[:16], reason=reason
            )

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, kind: str, key: str) -> dict[str, Any] | None:
        """The record for ``(kind, key)``, or ``None`` on a miss.

        Checks the warm tier first, then disk. A corrupt or truncated
        disk entry counts as a miss and is deleted — an interrupted
        writer must never poison later reads.
        """
        entry = (kind, key[:40])
        record = self._warm.get(entry)
        if record is not None:
            self._warm.move_to_end(entry)
            if entry in self._index:
                self._index.move_to_end(entry)
            self._note_hit(kind, key, "warm")
            return record
        path = self.path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            self._note_miss(kind, key)
            return None
        try:
            record = json.loads(text)
        except ValueError:
            # Truncated/corrupt entry: drop it so it cannot shadow a
            # future write, and report a miss.
            self._discard(entry, path)
            self._note_miss(kind, key)
            return None
        if entry in self._index:
            self._index.move_to_end(entry)
        else:
            self._index[entry] = len(text)
            self._bytes += len(text)
        self._warm_insert(entry, record)
        self._note_hit(kind, key, "disk")
        return record

    def put(self, kind: str, key: str, record: dict[str, Any]) -> Path:
        """Persist ``record`` under ``(kind, key)`` atomically.

        The record is serialized to a uniquely named temporary file in
        the destination directory and published with :func:`os.replace`
        — concurrent writers race benignly (last write wins, readers
        always see a complete entry) and an interrupted writer leaves
        only a stray ``.tmp`` file, never a partial record.
        """
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, indent=2, sort_keys=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        entry = (kind, key[:40])
        previous = self._index.pop(entry, 0)
        self._bytes += len(payload) - previous
        self._index[entry] = len(payload)
        self._warm_insert(entry, record)
        self.writes += 1
        if self.metrics is not None:
            self.metrics.counter("store.write").add()
        self._enforce_budget()
        return path

    def _warm_insert(self, entry: tuple[str, str], record: dict[str, Any]) -> None:
        if self.warm_capacity <= 0:
            return
        self._warm[entry] = record
        self._warm.move_to_end(entry)
        while len(self._warm) > self.warm_capacity:
            self._warm.popitem(last=False)

    def _discard(self, entry: tuple[str, str], path: Path) -> None:
        size = self._index.pop(entry, 0)
        self._bytes -= size
        self._warm.pop(entry, None)
        try:
            path.unlink()
        except OSError:
            pass

    def _enforce_budget(self) -> None:
        def over_budget() -> str | None:
            if self.max_entries is not None and len(self._index) > self.max_entries:
                return "max_entries"
            if self.max_bytes is not None and self._bytes > self.max_bytes:
                return "max_bytes"
            return None

        while self._index:
            reason = over_budget()
            if reason is None:
                break
            entry, _ = next(iter(self._index.items()))
            kind, key = entry
            self._discard(entry, self.path(kind, key))
            self._note_evict(kind, key, reason)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, entry: tuple[str, str]) -> bool:
        kind, key = entry
        return (kind, key[:40]) in self._index

    def __len__(self) -> int:
        return len(self._index)

    @property
    def bytes(self) -> int:
        """Tracked on-disk footprint of every indexed entry."""
        return self._bytes

    def stats(self) -> dict[str, Any]:
        """Hit-rate and budget counters for ``/stats`` and RunReports."""
        hits = self.hits_warm + self.hits_disk
        lookups = hits + self.misses
        return {
            "entries": len(self._index),
            "bytes": self._bytes,
            "shards": self.shards,
            "warm_capacity": self.warm_capacity,
            "warm_entries": len(self._warm),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": hits,
            "hits_warm": self.hits_warm,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
