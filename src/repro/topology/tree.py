"""Rooted trees.

The diffusing computation (Section 5.1) runs on a finite rooted tree. The
paper's convention: ``P.j`` is the parent of ``j``, and the root is its own
parent. :class:`RootedTree` stores the parent map, derives children and
leaves, and validates that the structure really is a tree (single root,
no cycles, connected).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

__all__ = ["RootedTree"]

NodeId = Hashable


class RootedTree:
    """A finite rooted tree given by its parent map.

    The root maps to itself, matching the paper's ``P.j = j`` convention.
    """

    def __init__(self, parent: Mapping[NodeId, NodeId]) -> None:
        if not parent:
            raise ValueError("a tree must have at least one node")
        self._parent = dict(parent)
        roots = [node for node, par in self._parent.items() if node == par]
        if len(roots) != 1:
            raise ValueError(
                f"expected exactly one root (node with P.j = j), found {roots}"
            )
        self.root: NodeId = roots[0]
        self._children: dict[NodeId, list[NodeId]] = {
            node: [] for node in self._parent
        }
        for node, par in self._parent.items():
            if node == par:
                continue
            if par not in self._parent:
                raise ValueError(f"node {node!r} has unknown parent {par!r}")
            self._children[par].append(node)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for start in self._parent:
            node = start
            steps = 0
            while node != self.root:
                node = self._parent[node]
                steps += 1
                if steps > len(self._parent):
                    raise ValueError(f"cycle in parent map reachable from {start!r}")

    @property
    def nodes(self) -> list[NodeId]:
        return list(self._parent)

    def parent(self, node: NodeId) -> NodeId:
        """``P.j`` — the parent of ``node``; the root is its own parent."""
        return self._parent[node]

    def children(self, node: NodeId) -> list[NodeId]:
        return list(self._children[node])

    def is_leaf(self, node: NodeId) -> bool:
        return not self._children[node]

    def leaves(self) -> list[NodeId]:
        return [node for node in self._parent if self.is_leaf(node)]

    def non_root_nodes(self) -> list[NodeId]:
        return [node for node in self._parent if node != self.root]

    def depth(self, node: NodeId) -> int:
        """Distance from the root (the root has depth 0)."""
        depth = 0
        while node != self.root:
            node = self._parent[node]
            depth += 1
        return depth

    def height(self) -> int:
        """The maximum depth over all nodes."""
        return max(self.depth(node) for node in self._parent)

    def preorder(self) -> Iterator[NodeId]:
        """Nodes in depth-first preorder from the root."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: object) -> bool:
        return node in self._parent

    def __repr__(self) -> str:
        return f"RootedTree({len(self)} nodes, root={self.root!r})"
