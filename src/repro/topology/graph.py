"""Undirected graphs for protocol substrates.

A tiny, dependency-free adjacency structure used by the protocol library
(maximal matching, spanning trees, coloring on general graphs). Nodes are
arbitrary hashable identifiers; edges are unordered pairs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

__all__ = ["Graph"]

NodeId = Hashable


class Graph:
    """A simple undirected graph with deterministic iteration order."""

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._adjacency: dict[NodeId, list[NodeId]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    def add_node(self, node: NodeId) -> None:
        self._adjacency.setdefault(node, [])

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r} not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)

    @property
    def nodes(self) -> list[NodeId]:
        return list(self._adjacency)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Each undirected edge once, in insertion order of its endpoints."""
        seen: set[frozenset[NodeId]] = set()
        for u in self._adjacency:
            for v in self._adjacency[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbors(self, node: NodeId) -> list[NodeId]:
        return list(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        return max((len(adj) for adj in self._adjacency.values()), default=0)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: object) -> bool:
        return node in self._adjacency

    def is_connected(self) -> bool:
        nodes = self.nodes
        if not nodes:
            return True
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for other in self._adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(nodes)

    def bfs_levels(self, root: NodeId) -> dict[NodeId, int]:
        """Breadth-first distance of every reachable node from ``root``."""
        if root not in self._adjacency:
            raise KeyError(f"unknown node {root!r}")
        levels = {root: 0}
        frontier = [root]
        while frontier:
            next_frontier: list[NodeId] = []
            for node in frontier:
                for other in self._adjacency[node]:
                    if other not in levels:
                        levels[other] = levels[node] + 1
                        next_frontier.append(other)
            frontier = next_frontier
        return levels

    def __repr__(self) -> str:
        return f"Graph({len(self)} nodes, {sum(1 for _ in self.edges())} edges)"
