"""Rings.

The token-ring design (Section 7.1) uses ``N+1`` nodes numbered ``0``
through ``N`` organized in a ring where the successor of node ``j`` is
``j+1 mod N+1``.
"""

from __future__ import annotations

__all__ = ["Ring"]


class Ring:
    """A directed ring of ``size`` nodes numbered ``0 .. size-1``.

    For the paper's token ring, construct ``Ring(N + 1)``: the paper
    numbers nodes ``0 .. N`` inclusive.
    """

    def __init__(self, size: int) -> None:
        if size < 2:
            raise ValueError("a ring needs at least 2 nodes")
        self.size = size

    @property
    def nodes(self) -> list[int]:
        return list(range(self.size))

    def successor(self, node: int) -> int:
        """``j + 1 mod size`` — the node that receives ``j``'s privilege."""
        return (node + 1) % self.size

    def predecessor(self, node: int) -> int:
        return (node - 1) % self.size

    @property
    def last(self) -> int:
        """``N``, the highest-numbered node (the paper's ``x.N``)."""
        return self.size - 1

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Ring({self.size})"
