"""Topology generators.

Deterministic and seeded-random generators for the shapes the experiments
sweep over: chains, stars, balanced k-ary trees, random trees, rings, and
a few small general graphs for the extension protocols.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.topology.graph import Graph
from repro.topology.ring import Ring
from repro.topology.tree import RootedTree

__all__ = [
    "chain_tree",
    "star_tree",
    "balanced_tree",
    "random_tree",
    "ring",
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "random_connected_graph",
    "tree_as_graph",
]


def chain_tree(n: int) -> RootedTree:
    """A path of ``n`` nodes rooted at node 0 (worst-case tree height)."""
    if n < 1:
        raise ValueError("need at least one node")
    parent: dict[Hashable, Hashable] = {0: 0}
    for j in range(1, n):
        parent[j] = j - 1
    return RootedTree(parent)


def star_tree(n: int) -> RootedTree:
    """A star of ``n`` nodes: node 0 is the root, all others its children."""
    if n < 1:
        raise ValueError("need at least one node")
    parent: dict[Hashable, Hashable] = {0: 0}
    for j in range(1, n):
        parent[j] = 0
    return RootedTree(parent)


def balanced_tree(branching: int, height: int) -> RootedTree:
    """A balanced ``branching``-ary tree of the given height.

    Height 0 is a single root; height ``h`` adds ``branching**h`` leaves.
    """
    if branching < 1:
        raise ValueError("branching factor must be at least 1")
    if height < 0:
        raise ValueError("height must be nonnegative")
    parent: dict[Hashable, Hashable] = {0: 0}
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier: list[int] = []
        for node in frontier:
            for _ in range(branching):
                parent[next_id] = node
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return RootedTree(parent)


def random_tree(n: int, seed: int) -> RootedTree:
    """A uniformly random recursive tree on ``n`` nodes, rooted at 0.

    Each node ``j >= 1`` picks its parent uniformly among ``0 .. j-1``,
    giving reproducible variety of shapes across seeds.
    """
    if n < 1:
        raise ValueError("need at least one node")
    rng = random.Random(seed)
    parent: dict[Hashable, Hashable] = {0: 0}
    for j in range(1, n):
        parent[j] = rng.randrange(j)
    return RootedTree(parent)


def ring(size: int) -> Ring:
    """A ring of ``size`` nodes (the paper's ``N+1``)."""
    return Ring(size)


def path_graph(n: int) -> Graph:
    """An undirected path on nodes ``0 .. n-1``."""
    return Graph(range(n), [(j, j + 1) for j in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """An undirected cycle on nodes ``0 .. n-1``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    edges = [(j, (j + 1) % n) for j in range(n)]
    return Graph(range(n), edges)


def complete_graph(n: int) -> Graph:
    """The complete graph on nodes ``0 .. n-1``."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph(range(n), edges)


def random_connected_graph(n: int, extra_edges: int, seed: int) -> Graph:
    """A random connected graph: a random tree plus ``extra_edges`` chords."""
    rng = random.Random(seed)
    graph = Graph(range(n))
    for j in range(1, n):
        graph.add_edge(j, rng.randrange(j))
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and v not in graph.neighbors(u):
            graph.add_edge(u, v)
            added += 1
    return graph


def tree_as_graph(tree: RootedTree) -> Graph:
    """The undirected graph underlying a rooted tree."""
    graph = Graph(tree.nodes)
    for node in tree.nodes:
        if node != tree.root:
            graph.add_edge(node, tree.parent(node))
    return graph
