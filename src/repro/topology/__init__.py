"""Topology substrates: rooted trees, rings, and general graphs."""

from repro.topology.generators import (
    balanced_tree,
    chain_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    ring,
    star_tree,
    tree_as_graph,
)
from repro.topology.graph import Graph
from repro.topology.ring import Ring
from repro.topology.tree import RootedTree

__all__ = [
    "Graph",
    "Ring",
    "RootedTree",
    "balanced_tree",
    "chain_tree",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "random_connected_graph",
    "random_tree",
    "ring",
    "star_tree",
    "tree_as_graph",
]
