"""The stable public facade: :func:`repro.verify` and the Verdict protocol.

One entry point covers the common question — *is this thing T-tolerant
for S?* — regardless of how the thing is spelled:

- a **library case name** (``"diffusing-chain"``) builds the registered
  instance, using its full design when one is available;
- a :class:`~repro.core.design.NonmaskingDesign` verifies the design's
  own candidate invariant over its augmented program;
- a bare :class:`~repro.core.program.Program` verifies the supplied
  invariant ``s`` (required in this spelling).

Every call routes through a :class:`~repro.verification.VerificationService`
(the module keeps a default instance, so repeated calls hit its cache;
pass ``service=`` to control caching and observability), honours the
``method`` switch (``"compositional"`` certifies from per-edge
projections, ``"auto"`` tries that and falls back to full exploration),
and returns a :class:`~repro.verification.ServiceVerdict` — one of the
types satisfying the :class:`Verdict` protocol.

Deprecation policy (see ``docs/API.md``): the legacy entry points —
:func:`repro.verification.check_tolerance` and the liveness names that
used to live in ``repro.verification.service`` — keep working unchanged
but emit :class:`DeprecationWarning`; new code uses this facade.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any, Protocol, runtime_checkable

from repro.core.design import NonmaskingDesign
from repro.core.errors import ValidationError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.quantitative import DEFAULT_FAULT_RATE
from repro.verification.service import ServiceVerdict, VerificationService

__all__ = ["Verdict", "verify"]


@runtime_checkable
class Verdict(Protocol):
    """What every verification outcome in this library answers.

    Satisfied (structurally — no registration needed) by
    :class:`~repro.verification.ToleranceReport`,
    :class:`~repro.core.theorems.TheoremCertificate`,
    :class:`~repro.staticcheck.LintReport`,
    :class:`~repro.compositional.CompositionalCertificate` and
    :class:`~repro.verification.ServiceVerdict`.

    Attributes:
        ok: The verdict proper — ``True`` means the checked property
            holds (or, for a lint report, no error-severity findings).
    """

    ok: bool

    def describe(self) -> str:
        """Human-readable multi-line rendering of the outcome."""
        ...

    def to_json(self) -> dict[str, Any]:
        """JSON-able summary with a stable key set."""
        ...


#: Lazily created default service backing facade calls without ``service=``.
_default_service: VerificationService | None = None


def default_service() -> VerificationService:
    """The shared :class:`VerificationService` behind :func:`verify`.

    Created on first use (in-memory cache only, no tracer/metrics).
    Repeated facade calls for the same instance answer from its cache;
    tests and tools that need isolation pass their own ``service=``.
    """
    global _default_service
    if _default_service is None:
        _default_service = VerificationService()
    return _default_service


def verify(
    subject: str | NonmaskingDesign | Program,
    *,
    s: Predicate | None = None,
    t: Predicate | None = None,
    states: Iterable[State] | None = None,
    size: int | None = None,
    fairness: str = "weak",
    engine: str = "auto",
    method: str = "auto",
    lint: bool = False,
    quantify: bool = False,
    fault_rate: float = DEFAULT_FAULT_RATE,
    service: VerificationService | None = None,
) -> ServiceVerdict:
    """Verify that ``subject`` is ``t``-tolerant for ``s``.

    Args:
        subject: A library case name, a full design, or a bare program.
        s: The invariant ``S``. Required when ``subject`` is a program;
            optional otherwise (defaults to the case's/design's own
            invariant; supplying it disables the compositional method,
            whose certificate is about the design's invariant).
        t: The fault span ``T``; defaults to ``TRUE`` (stabilization).
        states: The instance's state set; defaults to the full space.
            Supplied subsets force full exploration (a projection cannot
            see which states were left out).
        size: Instance size for a case-name subject (defaults to the
            case's registered default size); rejected otherwise.
        fairness: Computation model for convergence (``"weak"`` is the
            paper's).
        engine: ``"packed"``, ``"dict"`` or ``"auto"`` — how the full
            method represents states (verdict-identical either way).
        method: ``"full"``, ``"compositional"`` or ``"auto"`` (try
            compositional when a design is at hand, fall back to full on
            refusal). See :mod:`repro.compositional`.
        lint: Run the :mod:`repro.staticcheck` passes first and fail
            fast on error-severity findings.
        quantify: Also run the quantitative tolerance analysis
            (:mod:`repro.quantitative`) and attach a
            :class:`~repro.quantitative.QuantitativeReport` — itself a
            :class:`Verdict` — to the returned verdict
            (``verdict.quantitative``; the record gains
            ``"quantitative"``). Needs state-space exploration, so it
            cannot combine with ``method="compositional"``.
        fault_rate: Relative fault-action weight for the quantitative
            fault-weighted convergence expectation.
        service: The caching service to route through; defaults to the
            module-wide :func:`default_service`.

    Returns:
        A :class:`~repro.verification.ServiceVerdict` (a :class:`Verdict`).

    Raises:
        ValidationError: on an unknown case name, a program subject
            without ``s``, ``size=`` for a non-case subject, or an
            invalid ``engine``/``method``/``fairness`` spelling.
    """
    if size is not None and not isinstance(subject, str):
        raise ValidationError(
            "size= only applies to library case names; instance size is "
            "fixed once a Program or NonmaskingDesign is built"
        )
    design: NonmaskingDesign | None = None
    case: str | None = None

    if isinstance(subject, str):
        from repro.protocols.library import CASES, build_case

        entry = CASES.get(subject)
        if entry is None:
            known = ", ".join(CASES)
            raise ValidationError(
                f"unknown verification case {subject!r}; known cases: {known}"
            )
        chosen = size if size is not None else entry.default_size
        case = f"{subject} (n={chosen})"
        if entry.build_design is not None and s is None and method != "full":
            design = entry.build_design(chosen)
            program, invariant = design.program, design.candidate.invariant
        else:
            program, invariant = build_case(subject, chosen)
            if s is not None:
                invariant = s
    elif isinstance(subject, NonmaskingDesign):
        program = subject.program
        if s is None:
            design = subject
            invariant = subject.candidate.invariant
        else:
            invariant = s
        case = subject.name
    elif isinstance(subject, Program):
        if s is None:
            raise ValidationError(
                "verify(program, ...) needs the invariant: pass s=; only "
                "case names and designs carry their own"
            )
        program, invariant = subject, s
        case = subject.name
    else:
        raise ValidationError(
            f"cannot verify a {type(subject).__name__}; expected a library "
            "case name, a NonmaskingDesign, or a Program"
        )

    backend = service if service is not None else default_service()
    return backend.verify_tolerance(
        program,
        invariant,
        t,
        states,
        fairness=fairness,
        engine=engine,
        method=method,
        design=design,
        case=case,
        lint=lint,
        quantify=quantify,
        fault_rate=fault_rate,
    )
