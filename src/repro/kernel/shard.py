"""Sharded full-space exploration.

The mixed-radix code range ``0 .. size-1`` *is* the full state space
(:mod:`repro.kernel.codec`), so splitting it into contiguous shards
partitions the space with no handshaking: every shard sweeps its range
independently (membership masks plus successor CSR fragment, via
:class:`~repro.kernel.sweeps.SweepPlan`) and the fragments concatenate
back — in shard order — into arrays bit-identical to an unsharded sweep.

Shards run on the same process-pool helper the batch verifier uses
(:func:`repro.verification.parallel.run_on_pool`). The compiled plan
holds program closures and cannot cross a process boundary by pickling;
it is published in :data:`_ACTIVE` before the pool is created so
fork-started workers inherit it. On platforms without fork (or with a
single CPU, or a pool that cannot start) the shards are swept
sequentially in-process — the merge is deterministic either way, which
is what makes ``shards=N`` results bit-identical to ``shards=1``.

Fragment transfer back to the parent has two paths (kernel v3): the
zero-copy path parks each fragment in a shared-memory segment and ships
only a descriptor (:mod:`repro.kernel.shm`), and the original pickle
path serializes fragments through the pool pipe. :func:`sweep_merged`
picks automatically and reports which one ran; both produce
bit-identical merged arrays.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.kernel import shm
from repro.kernel.sweeps import Fragment, SweepPlan, merge_fragments

__all__ = [
    "SHARD_AUTO_THRESHOLD",
    "SHARD_TARGET",
    "MAX_AUTO_SHARDS",
    "plan_shards",
    "sweep_merged",
    "sweep_sharded",
]

#: Auto-sharding aims at roughly this many states per shard.
SHARD_TARGET = 1 << 21

#: Below this size auto mode uses a single shard (fixed per-shard numpy
#: and fork overhead would dominate).
SHARD_AUTO_THRESHOLD = 1 << 22

#: Auto mode never plans more shards than this.
MAX_AUTO_SHARDS = 64

#: The plan the pool's fork-children inherit; see module docstring.
_ACTIVE: SweepPlan | None = None


def plan_shards(size: int, shards: int | None = None) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` code ranges covering ``0 .. size-1``.

    ``shards=None`` is the auto heuristic: one shard for small spaces,
    otherwise about :data:`SHARD_TARGET` states per shard, capped at
    :data:`MAX_AUTO_SHARDS`. An explicit ``shards`` is clamped to
    ``[1, size]``. Ranges differ in length by at most one state.
    """
    if size <= 0:
        return []
    if shards is None:
        if size < SHARD_AUTO_THRESHOLD:
            count = 1
        else:
            count = min(MAX_AUTO_SHARDS, -(-size // SHARD_TARGET))
    else:
        count = max(1, min(int(shards), size))
    base, extra = divmod(size, count)
    ranges = []
    lo = 0
    for index in range(count):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _sweep_worker(bounds: tuple[int, int]) -> Fragment:
    """Sweep one shard using the fork-inherited plan."""
    plan = _ACTIVE
    if plan is None:
        raise RuntimeError(
            "no active sweep plan in this process; sharded sweeps share "
            "the plan by fork inheritance only"
        )
    return plan.sweep_range(*bounds)


def _shm_sweep_worker(item: tuple[str, int, int, int]) -> shm.FragmentHandle:
    """Sweep one shard and park the fragment in a shared segment.

    The worker returns only the descriptor; the arrays never touch the
    pool pipe. Also runs in-parent on the BrokenProcessPool rerun path,
    where :func:`~repro.kernel.shm.export_fragment` reclaims any
    same-name segment a crashed worker left half-written.
    """
    token, index, lo, hi = item
    plan = _ACTIVE
    if plan is None:
        raise RuntimeError(
            "no active sweep plan in this process; sharded sweeps share "
            "the plan by fork inheritance only"
        )
    fragment = plan.sweep_range(lo, hi)
    return shm.export_fragment(fragment, shm.segment_name(token, index))


def _pool_usable(ranges, workers: int) -> bool:
    if len(ranges) <= 1 or workers <= 1:
        return False
    try:
        return multiprocessing.get_start_method() == "fork"
    except Exception:
        return False


def sweep_sharded(
    plan: SweepPlan,
    ranges: list[tuple[int, int]],
    *,
    workers: int | None = None,
    metrics=None,
) -> list[Fragment]:
    """Sweep every range of ``plan``, in parallel when worthwhile.

    Returns the fragments **in range order**. Counters (when a metrics
    registry is passed): ``kernel.sweep.vectorized`` per shard swept,
    ``kernel.shard.merged`` with the shard count of a multi-shard run.

    Raises:
        SweepUnsupported: propagated from a shard whose range falls
            outside the vectorized fragment (raw successors).
    """
    global _ACTIVE
    if workers is None:
        workers = min(len(ranges), os.cpu_count() or 1)
    if _pool_usable(ranges, workers):
        from repro.verification.parallel import run_on_pool

        _ACTIVE = plan
        try:
            fragments = run_on_pool(_sweep_worker, ranges, workers=workers)
        finally:
            _ACTIVE = None
    else:
        fragments = [plan.sweep_range(lo, hi) for lo, hi in ranges]
    if metrics is not None:
        metrics.counter("kernel.sweep.vectorized").add(len(ranges))
        if len(ranges) > 1:
            metrics.counter("kernel.shard.merged").add(len(ranges))
    return fragments


def sweep_merged(
    plan: SweepPlan,
    ranges: list[tuple[int, int]],
    *,
    workers: int | None = None,
    metrics=None,
):
    """Sweep every range and merge, choosing the transfer path.

    When the pool is in play and shared memory is usable, fragments
    travel as segment descriptors and the merge slice-copies straight
    out of the mapped segments; otherwise this is exactly
    :func:`sweep_sharded` + :func:`~repro.kernel.sweeps.merge_fragments`.
    Either way every segment is unlinked before returning — the token
    backstop in the ``finally`` covers worker crashes rerouted through
    the BrokenProcessPool rerun.

    Returns ``((s_mask, t_mask, offsets, targets, action_ids),
    transfer)`` with ``transfer`` one of ``"shm"``, ``"pickle"``, or
    ``"inline"``. Counters match :func:`sweep_sharded`, plus
    ``kernel.mem.shm_segments`` / ``kernel.mem.shm_unlinked`` on the
    zero-copy path.
    """
    global _ACTIVE
    if workers is None:
        workers = min(len(ranges), os.cpu_count() or 1)
    pool = _pool_usable(ranges, workers)
    if not (pool and shm.shm_available()):
        fragments = sweep_sharded(
            plan, ranges, workers=workers, metrics=metrics
        )
        return merge_fragments(fragments), ("pickle" if pool else "inline")

    from repro.verification.parallel import run_on_pool

    token = shm.new_token()
    items = [(token, index, lo, hi) for index, (lo, hi) in enumerate(ranges)]
    # The tracker must exist before the fork, or each worker's private
    # tracker unlinks its segments at worker exit (see shm docstring).
    shm.ensure_tracker()
    _ACTIVE = plan
    segments: list = []
    unlinked = 0
    try:
        handles = run_on_pool(_shm_sweep_worker, items, workers=workers)
        fragments = []
        for handle in handles:
            fragment, segment = shm.import_fragment(handle)
            fragments.append(fragment)
            segments.append(segment)
        merged = merge_fragments(fragments)
        # Fragment arrays are views into the segments; merging >1
        # fragments concatenates (copies), so dropping the views here
        # lets every segment close cleanly.
        del fragments
        unlinked = shm.release_segments(segments)
        segments = []
    finally:
        _ACTIVE = None
        unlinked += shm.unlink_segments(token, len(ranges))
    if metrics is not None:
        metrics.counter("kernel.sweep.vectorized").add(len(ranges))
        if len(ranges) > 1:
            metrics.counter("kernel.shard.merged").add(len(ranges))
        metrics.counter("kernel.mem.shm_segments").add(len(ranges))
        metrics.counter("kernel.mem.shm_unlinked").add(unlinked)
    return merged, "shm"
