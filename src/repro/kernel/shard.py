"""Sharded full-space exploration.

The mixed-radix code range ``0 .. size-1`` *is* the full state space
(:mod:`repro.kernel.codec`), so splitting it into contiguous shards
partitions the space with no handshaking: every shard sweeps its range
independently (membership masks plus successor CSR fragment, via
:class:`~repro.kernel.sweeps.SweepPlan`) and the fragments concatenate
back — in shard order — into arrays bit-identical to an unsharded sweep.

Shards run on the same process-pool helper the batch verifier uses
(:func:`repro.verification.parallel.run_on_pool`). The compiled plan
holds program closures and cannot cross a process boundary by pickling;
it is published in :data:`_ACTIVE` before the pool is created so
fork-started workers inherit it. On platforms without fork (or with a
single CPU, or a pool that cannot start) the shards are swept
sequentially in-process — the merge is deterministic either way, which
is what makes ``shards=N`` results bit-identical to ``shards=1``.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.kernel.sweeps import Fragment, SweepPlan

__all__ = [
    "SHARD_AUTO_THRESHOLD",
    "SHARD_TARGET",
    "MAX_AUTO_SHARDS",
    "plan_shards",
    "sweep_sharded",
]

#: Auto-sharding aims at roughly this many states per shard.
SHARD_TARGET = 1 << 21

#: Below this size auto mode uses a single shard (fixed per-shard numpy
#: and fork overhead would dominate).
SHARD_AUTO_THRESHOLD = 1 << 22

#: Auto mode never plans more shards than this.
MAX_AUTO_SHARDS = 64

#: The plan the pool's fork-children inherit; see module docstring.
_ACTIVE: SweepPlan | None = None


def plan_shards(size: int, shards: int | None = None) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` code ranges covering ``0 .. size-1``.

    ``shards=None`` is the auto heuristic: one shard for small spaces,
    otherwise about :data:`SHARD_TARGET` states per shard, capped at
    :data:`MAX_AUTO_SHARDS`. An explicit ``shards`` is clamped to
    ``[1, size]``. Ranges differ in length by at most one state.
    """
    if size <= 0:
        return []
    if shards is None:
        if size < SHARD_AUTO_THRESHOLD:
            count = 1
        else:
            count = min(MAX_AUTO_SHARDS, -(-size // SHARD_TARGET))
    else:
        count = max(1, min(int(shards), size))
    base, extra = divmod(size, count)
    ranges = []
    lo = 0
    for index in range(count):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _sweep_worker(bounds: tuple[int, int]) -> Fragment:
    """Sweep one shard using the fork-inherited plan."""
    plan = _ACTIVE
    if plan is None:
        raise RuntimeError(
            "no active sweep plan in this process; sharded sweeps share "
            "the plan by fork inheritance only"
        )
    return plan.sweep_range(*bounds)


def sweep_sharded(
    plan: SweepPlan,
    ranges: list[tuple[int, int]],
    *,
    workers: int | None = None,
    metrics=None,
) -> list[Fragment]:
    """Sweep every range of ``plan``, in parallel when worthwhile.

    Returns the fragments **in range order**. Counters (when a metrics
    registry is passed): ``kernel.sweep.vectorized`` per shard swept,
    ``kernel.shard.merged`` with the shard count of a multi-shard run.

    Raises:
        SweepUnsupported: propagated from a shard whose range falls
            outside the vectorized fragment (raw successors).
    """
    global _ACTIVE
    if workers is None:
        workers = min(len(ranges), os.cpu_count() or 1)
    use_pool = len(ranges) > 1 and workers > 1
    if use_pool:
        try:
            use_pool = multiprocessing.get_start_method() == "fork"
        except Exception:
            use_pool = False
    if use_pool:
        from repro.verification.parallel import run_on_pool

        _ACTIVE = plan
        try:
            fragments = run_on_pool(_sweep_worker, ranges, workers=workers)
        finally:
            _ACTIVE = None
    else:
        fragments = [plan.sweep_range(lo, hi) for lo, hi in ranges]
    if metrics is not None:
        metrics.counter("kernel.sweep.vectorized").add(len(ranges))
        if len(ranges) > 1:
            metrics.counter("kernel.shard.merged").add(len(ranges))
    return fragments
