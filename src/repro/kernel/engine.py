"""The packed exploration engine.

:class:`PackedKernel` is a compiled form of one
:class:`~repro.core.program.Program`: a :class:`StateCodec`, one
:class:`~repro.kernel.compile.CompiledAction` per action, and shared
evaluation scratch. Kernels are cached per program object (weakly, so
they die with the program) because compilation pays a probe battery per
action for the RW soundness gate.

:class:`PackedTransitionSystem` is the flat-array counterpart of
:class:`~repro.verification.explorer.TransitionSystem` and implements
the same interface — ``states``, ``edges``, ``escapes``, ``index_of``,
``successors``, ``satisfying``, ``len()``, pickling — so every consumer
(convergence, liveness, fairness-free checks, DOT/Markov analysis)
works on either engine unchanged. Internally it stores only integers:
packed state codes plus a CSR edge list (``offsets``/``targets``/
``action_ids``); ``State`` objects are decoded lazily and cached, so a
pass that never looks at a state never builds one.
"""

from __future__ import annotations

import itertools
import time
from array import array
from collections.abc import Iterable, Sequence
from typing import Any
from weakref import WeakKeyDictionary

from repro.core.errors import StateSpaceTooLargeError, UnknownStateError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import DEFAULT_MAX_STATES, State
from repro.kernel.codec import PackedUnsupported, StateCodec
from repro.kernel.compile import (
    CompiledAction,
    DigitStateView,
    compile_action,
    compile_predicate_fn,
    probe_battery,
)

__all__ = [
    "PackedKernel",
    "PackedTransitionSystem",
    "build_packed_system",
    "compile_program",
    "explore_packed",
    "kernel_supported",
]

#: Packed codes live in ``array('q')`` buffers; larger spaces cannot.
_MAX_CODE = 2**62

#: Per-program kernel cache. Weak keys: a kernel dies with its program.
_KERNELS: "WeakKeyDictionary[Program, PackedKernel]" = WeakKeyDictionary()


def kernel_supported(program: Program) -> bool:
    """Whether the packed engine can represent ``program`` at all."""
    return all(
        variable.domain.is_finite for variable in program.variables.values()
    )


class PackedKernel:
    """A program compiled for packed-state exploration."""

    __slots__ = (
        "program",
        "codec",
        "view",
        "actions",
        "action_names",
        "build_seconds",
    )

    def __init__(self, program: Program) -> None:
        started = time.perf_counter()
        self.program = program
        self.codec = StateCodec.for_program(program)
        if self.codec.size > _MAX_CODE:
            raise PackedUnsupported(
                f"state space of {self.codec.size} states exceeds the packed "
                "engine's 2^62 code range"
            )
        self.view = DigitStateView(self.codec)
        battery = probe_battery(program)
        self.actions: tuple[CompiledAction, ...] = tuple(
            compile_action(action, self.codec, self.view, battery)
            for action in program.actions
        )
        self.action_names: tuple[str, ...] = tuple(
            action.name for action in program.actions
        )
        self.build_seconds = time.perf_counter() - started

    def modes(self) -> dict[str, int]:
        """How many actions compiled to each successor mode."""
        counts = {"table": 0, "direct": 0, "fallback": 0}
        for action in self.actions:
            counts[action.mode] += 1
        return counts

    def table_entries(self) -> int:
        """Total memoized successor-table entries across all actions.

        Successor tables fill lazily, so the *growth* of this number
        across a sweep is the number of table misses — the hot loop
        itself maintains no counters (see ``kernel.*`` metrics in
        :mod:`repro.kernel.verify`).
        """
        return sum(
            len(action._table) for action in self.actions if action.mode == "table"
        )

    def predicate_fn(self, predicate: Predicate):
        """A ``values -> bool`` evaluator for ``predicate``."""
        return compile_predicate_fn(predicate, self.codec, self.view)

    def iter_space(self):
        """Yield ``(code, digits, values)`` over the full space in code order.

        Codes count ``0 .. size-1`` — the codec's digit layout matches
        :func:`~repro.core.state.enumerate_states`, so no state is ever
        encoded or decoded here; two lockstep ``itertools.product``
        drives supply the digit and value tuples directly.
        """
        digit_ranges = [range(radix) for radix in self.codec.radices]
        pairs = zip(
            itertools.product(*digit_ranges),
            itertools.product(*self.codec.domain_values),
        )
        return ((code, digits, values) for code, (digits, values) in enumerate(pairs))

    def iter_range(self, lo: int, hi: int):
        """Yield ``(code, digits, values)`` over ``lo .. hi-1`` in code order.

        The contiguous-range counterpart of :meth:`iter_space` for shard
        workers: one decode seeds the odometer at ``lo``, then digits and
        values advance in place (the yielded lists are shared and mutated
        between yields, exactly like the compiled actions expect).
        """
        codec = self.codec
        radices = codec.radices
        domain_values = codec.domain_values
        last = len(radices) - 1
        digits = codec.decode_digits(lo)
        values = [
            domain_values[position][digit]
            for position, digit in enumerate(digits)
        ]

        def generate():
            for code in range(lo, hi):
                yield code, digits, values
                position = last
                while position >= 0:
                    digit = digits[position] + 1
                    if digit < radices[position]:
                        digits[position] = digit
                        values[position] = domain_values[position][digit]
                        break
                    digits[position] = 0
                    values[position] = domain_values[position][0]
                    position -= 1

        return generate()

    def analyze_code(self, code: int) -> tuple[list[int], list[Any]]:
        """The digit and value lists of one packed code."""
        digits = self.codec.decode_digits(code)
        domain_values = self.codec.domain_values
        values = [
            domain_values[position][digit] for position, digit in enumerate(digits)
        ]
        return digits, values


def compile_program(
    program: Program, *, tracer=None, metrics=None
) -> PackedKernel:
    """The (cached) packed kernel of ``program``.

    On a fresh build, reports it through the optional observability
    hooks: a ``kernel.build`` trace event and a ``kernel.build`` timer.

    Raises:
        PackedUnsupported: if any domain is infinite or the space
            exceeds the 2^62 code range.
    """
    kernel = _KERNELS.get(program)
    if kernel is None:
        kernel = PackedKernel(program)
        _KERNELS[program] = kernel
        if metrics is not None:
            metrics.timer("kernel.build").record(kernel.build_seconds)
        if tracer is not None:
            from repro.observability.events import KERNEL_BUILD

            modes = kernel.modes()
            tracer.emit(
                KERNEL_BUILD,
                program=program.name,
                states=kernel.codec.size,
                variables=len(kernel.codec.names),
                actions_table=modes["table"],
                actions_direct=modes["direct"],
                actions_fallback=modes["fallback"],
                build_seconds=kernel.build_seconds,
            )
    return kernel


class _DecodedStates(Sequence):
    """Lazy, cached ``Sequence[State]`` over an array of packed codes.

    Without a preset the cache is a dict keyed by index, so a sparse
    consumer of a huge space (a witness decode out of 10^8 states) pays
    per state touched, not per state stored.
    """

    __slots__ = ("_codec", "_codes", "_preset", "_cache")

    def __init__(self, codec: StateCodec, codes, preset=None) -> None:
        self._codec = codec
        self._codes = codes
        self._preset: list[State] | None = (
            list(preset) if preset is not None else None
        )
        self._cache: dict[int, State] = {}

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if self._preset is not None:
            return self._preset[index]
        index = int(index)
        if index < 0:
            index += len(self._codes)
        state = self._cache.get(index)
        if state is None:
            state = self._codec.decode_state(int(self._codes[index]))
            self._cache[index] = state
        return state

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, Sequence)) and not isinstance(
            other, (str, bytes)
        ):
            return len(self) == len(other) and all(
                self[i] == other[i] for i in range(len(self))
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]


class PackedTransitionSystem:
    """A transition system backed by flat integer arrays.

    Same interface as
    :class:`~repro.verification.explorer.TransitionSystem`; state ``i``
    is ``codes[i]`` decoded on demand, and the outgoing edges of state
    ``i`` are ``targets[offsets[i]:offsets[i+1]]`` (positions) labelled
    by ``action_names[action_ids[k]]``.
    """

    def __init__(
        self,
        codec: StateCodec,
        codes,
        offsets,
        targets,
        action_ids,
        action_names: tuple[str, ...],
        escapes: list[tuple[int, str, State]] | None = None,
        states: Sequence[State] | None = None,
    ) -> None:
        self.codec = codec
        self.codes = codes
        self.offsets = offsets
        self.targets = targets
        self.action_ids = action_ids
        self.action_names = action_names
        self.escapes: list[tuple[int, str, State]] = (
            escapes if escapes is not None else []
        )
        self._states = _DecodedStates(codec, codes, preset=states)
        self._edges: list[list[tuple[str, int]]] | None = None
        self._code_index: dict[int, int] | None = None
        self._pred_view: DigitStateView | None = None
        # Same memo contract as TransitionSystem.satisfying: the
        # predicate object is kept alive so its id cannot be recycled.
        self._satisfying_cache: dict[int, tuple[Predicate, tuple[int, ...]]] = {}

    @property
    def states(self) -> Sequence[State]:
        return self._states

    @property
    def edges(self) -> list[list[tuple[str, int]]]:
        if self._edges is None:
            names = self.action_names
            offsets = self.offsets
            targets = self.targets
            action_ids = self.action_ids
            self._edges = [
                [
                    (names[action_ids[k]], targets[k])
                    for k in range(offsets[i], offsets[i + 1])
                ]
                for i in range(len(self.codes))
            ]
        return self._edges

    def __len__(self) -> int:
        return len(self.codes)

    def successors(self, index: int) -> list[tuple[str, int]]:
        return self.edges[index]

    def index_of(self, state: State) -> int:
        """The dense index of ``state``.

        Raises:
            UnknownStateError: if the state is not part of this system.
        """
        if self._code_index is None:
            self._code_index = {
                code: position for position, code in enumerate(self.codes)
            }
        position: int | None
        try:
            position = self._code_index.get(self.codec.encode_state(state))
        except PackedUnsupported:
            position = None
        if position is None:
            raise UnknownStateError(
                f"state {state!r} is not among the {len(self.codes)} states "
                "of this transition system"
            )
        return position

    def satisfying(self, predicate: Predicate) -> tuple[int, ...]:
        """Indices of states where ``predicate`` holds.

        Computed once per predicate object and memoized, like the dict
        engine — but evaluated over decoded value lists, so no
        :class:`State` is built.
        """
        cached = self._satisfying_cache.get(id(predicate))
        if cached is not None:
            return cached[1]
        if self._pred_view is None:
            self._pred_view = DigitStateView(self.codec)
        evaluate = compile_predicate_fn(predicate, self.codec, self._pred_view)
        decode_values = self.codec.decode_values
        result = tuple(
            position
            for position, code in enumerate(self.codes)
            if evaluate(decode_values(code))
        )
        self._satisfying_cache[id(predicate)] = (predicate, result)
        return result

    def __getstate__(self) -> dict:
        # Lazy caches (decoded states, edges, code index, satisfying
        # memo) are rebuilt on demand after unpickling.
        return {
            "codec": self.codec,
            "codes": self.codes,
            "offsets": self.offsets,
            "targets": self.targets,
            "action_ids": self.action_ids,
            "action_names": self.action_names,
            "escapes": self.escapes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["codec"],
            state["codes"],
            state["offsets"],
            state["targets"],
            state["action_ids"],
            state["action_names"],
            state["escapes"],
        )


def build_packed_system(
    program: Program,
    states: Iterable[State],
    *,
    kernel: PackedKernel | None = None,
) -> PackedTransitionSystem:
    """Packed counterpart of :func:`~repro.verification.explorer.build_transition_system`.

    Raises:
        PackedUnsupported: if the program or any supplied state cannot
            be packed.
    """
    kernel = kernel if kernel is not None else compile_program(program)
    codec = kernel.codec
    state_list = list(states)
    codes = array("q", (codec.encode_state(state) for state in state_list))
    index: dict[int, int] = {}
    for position, code in enumerate(codes):
        index[code] = position  # last occurrence wins, like the dict engine
    offsets = array("q", [0])
    targets = array("q")
    action_ids = array("h")
    escapes: list[tuple[int, str, State]] = []
    actions = kernel.actions
    for position, code in enumerate(codes):
        digits, values = kernel.analyze_code(code)
        for action_id, action in enumerate(actions):
            successor = action.successor(code, digits, values)
            if successor is None:
                continue
            if type(successor) is int:
                target = index.get(successor)
                if target is None:
                    escapes.append(
                        (position, action.name, codec.decode_state(successor))
                    )
                else:
                    targets.append(target)
                    action_ids.append(action_id)
            else:
                escapes.append((position, action.name, successor))
        offsets.append(len(targets))
    return PackedTransitionSystem(
        codec,
        codes,
        offsets,
        targets,
        action_ids,
        kernel.action_names,
        escapes,
        states=state_list,
    )


def explore_packed(
    program: Program,
    roots: Iterable[State],
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> PackedTransitionSystem:
    """Packed counterpart of :func:`~repro.verification.explorer.explore` (BFS).

    Raises:
        PackedUnsupported: if the program, a root, or a reached
            successor cannot be packed (a successor leaving its
            variable's domain).
        StateSpaceTooLargeError: if more than ``max_states`` states
            become reachable.
    """
    kernel = compile_program(program)
    codec = kernel.codec
    code_list: list[int] = []
    index: dict[int, int] = {}
    root_count = 0

    def intern(code: int) -> int:
        position = index.get(code)
        if position is None:
            if len(code_list) >= max_states:
                raise StateSpaceTooLargeError(
                    f"state space reachable from {root_count} root state(s) "
                    f"exceeds {max_states} states"
                )
            position = len(code_list)
            index[code] = position
            code_list.append(code)
        return position

    for state in roots:
        root_count += 1
        intern(codec.encode_state(state))
    offsets = array("q", [0])
    targets = array("q")
    action_ids = array("h")
    actions = kernel.actions
    cursor = 0
    while cursor < len(code_list):
        code = code_list[cursor]
        digits, values = kernel.analyze_code(code)
        for action_id, action in enumerate(actions):
            successor = action.successor(code, digits, values)
            if successor is None:
                continue
            if type(successor) is not int:
                raise PackedUnsupported(
                    f"action {action.name!r} produced a successor outside "
                    "the finite domains during exploration"
                )
            targets.append(intern(successor))
            action_ids.append(action_id)
        offsets.append(len(targets))
        cursor += 1
    return PackedTransitionSystem(
        codec,
        array("q", code_list),
        offsets,
        targets,
        action_ids,
        kernel.action_names,
    )
