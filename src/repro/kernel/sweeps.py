"""Vectorized frontier sweeps over packed code and CSR arrays.

The packed kernel (PR 4) already stores the state space as mixed-radix
integer codes and the transition relation as CSR arrays — but every hot
sweep still walked those arrays one state at a time in Python. This
module rewrites the sweeps as numpy array operations:

- **Membership masks**: a predicate is decomposed along its recorded
  combinator structure (``Predicate.parts``) into small-support leaves;
  each leaf becomes a projection table indexed by the leaf's mixed-radix
  key, so the mask of a code range is a handful of table gathers and
  boolean reductions instead of one Python call per state.
- **Successor columns**: a table-mode action's memoized entries are laid
  out as flat arrays over its read projection, so the successors of a
  whole code range are ``codes + shift[key]`` (every write also read) or
  ``codes + Σ_w (digit_w[key] - digit_w(codes)) * weight_w`` (general
  digit replacement). Direct-mode actions still evaluate per state.
- **CSR assembly**: the per-action columns are interleaved into the
  exact row-major ``offsets``/``targets``/``action_ids`` order the
  scalar sweep produces, so everything downstream is bit-identical.
- **Closure checks**: one boolean reduction per predicate —
  ``mask[sources] & ~mask[targets]`` — with the first five failing edges
  decoded into the same witnesses the scalar walk reports.
- **Deadlock/bad-state partitioning**: the convergence prefilter finds
  the first bad deadlock by mask arithmetic and proves the bad-state
  subgraph acyclic with a vectorized Kahn peel; only when a cycle
  actually exists does the exact SCC analysis
  (:func:`~repro.verification.convergence.check_convergence`) run.
- **Frontier BFS**: reachability over ``offsets``/``targets`` as array
  gather/scatter (:func:`frontier_reach`).

Everything here is soundness-gated exactly like the scalar kernel's
table tier: a leaf predicate is only projected onto its support after
the same probe-based read inference that gates action tables (RW001),
and symbolic leaves use their exact read set. Whenever a construct falls
outside the vectorized fragment — an opaque monolithic predicate, a raw
(out-of-domain) successor, a missing numpy — :class:`SweepUnsupported`
is raised and the caller falls back to the pure-Python scalar sweep,
whose results the differential suite pins bit-identical.
"""

from __future__ import annotations

import itertools

from repro.core.expr import BoolExpr
from repro.core.predicates import Predicate
from repro.kernel.compile import _MISSING, compile_predicate_fn
from repro.kernel.engine import PackedKernel

try:  # numpy is optional: without it every entry point raises
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the fallback CI leg
    _np = None

__all__ = [
    "FORCE_CODE_DTYPE",
    "HAVE_NUMPY",
    "MAX_ACTION_PROJECTION",
    "MAX_LEAF_PROJECTION",
    "SweepUnsupported",
    "SweepPlan",
    "VECTOR_MIN_STATES",
    "bad_region_acyclic",
    "closure_scan",
    "edge_list_acyclic",
    "first_bad_deadlock",
    "frontier_reach",
    "merge_fragments",
    "peel_shard_edges",
    "vectorizable",
]

#: Whether numpy was importable; without it the scalar sweep is used.
HAVE_NUMPY = _np is not None

#: Below this state count the scalar sweep wins (numpy's fixed per-array
#: overhead dominates); tests force the vectorized path by lowering it.
VECTOR_MIN_STATES = 1024

#: A predicate leaf whose support projection exceeds this is not
#: tabulated; the whole sweep falls back to the scalar path.
MAX_LEAF_PROJECTION = 1 << 16

#: An action whose read projection exceeds this is not laid out as flat
#: arrays (enumerating it would cost as much as the scalar sweep).
MAX_ACTION_PROJECTION = 1 << 20

#: Override the per-instance code dtype (``"int16"``/``"int32"``/
#: ``"int64"`` or ``None`` for the codec's own width). The differential
#: suite flips this to pin that narrow-dtype sweeps are bit-identical to
#: the int64 baseline, and benchmarks use it to emulate the kernel v2
#: memory profile.
FORCE_CODE_DTYPE: str | None = None


class SweepUnsupported(Exception):
    """The instance falls outside the vectorized fragment.

    Raised during planning or sweeping; callers catch it and fall back
    to the scalar packed sweep, which handles every instance.
    """


def vectorizable(size: int) -> bool:
    """Whether the vectorized sweep should be attempted at all."""
    return HAVE_NUMPY and size >= VECTOR_MIN_STATES


def _require_numpy() -> None:
    if _np is None:
        raise SweepUnsupported("numpy is not installed")


# ----------------------------------------------------------------------
# Range context: digit and key arrays of a contiguous code range
# ----------------------------------------------------------------------


class _RangeContext:
    """Digit/key arrays for the codes ``lo .. hi-1``, computed lazily."""

    __slots__ = ("lo", "hi", "codes", "_weights", "_radices", "_digits")

    def __init__(self, codec, lo: int, hi: int, dtype=None) -> None:
        self.lo = lo
        self.hi = hi
        self.codes = _np.arange(
            lo, hi, dtype=_np.int64 if dtype is None else dtype
        )
        self._weights = codec.weights
        self._radices = codec.radices
        self._digits: dict[int, object] = {}

    def digit(self, position: int):
        """The digit of every code in the range at ``position``."""
        cached = self._digits.get(position)
        if cached is None:
            cached = (self.codes // self._weights[position]) % self._radices[
                position
            ]
            self._digits[position] = cached
        return cached

    def key(self, pairs: tuple[tuple[int, int], ...]):
        """Mixed-radix projection keys onto ``(position, radix)`` pairs.

        Matches the scalar kernel's per-action key layout
        (:meth:`CompiledAction._key_fn`): digits of ascending positions,
        most significant first.
        """
        if not pairs:
            return _np.zeros(self.hi - self.lo, dtype=_np.int32)
        # Projections are capped at 2^20 entries, so int32 keys always
        # suffice regardless of the code dtype.
        key = self.digit(pairs[0][0]).astype(_np.int32)
        for position, radix in pairs[1:]:
            key = key * radix + self.digit(position)
        return key


# ----------------------------------------------------------------------
# Predicate masks
# ----------------------------------------------------------------------


class _LeafMask:
    """One leaf predicate tabulated over its support projection."""

    __slots__ = ("pairs", "table")

    def __init__(self, predicate: Predicate, codec, positions: list[int]) -> None:
        self.pairs = tuple(
            (position, codec.radices[position]) for position in positions
        )
        projection = 1
        for _, radix in self.pairs:
            projection *= radix
        if projection > MAX_LEAF_PROJECTION:
            raise SweepUnsupported(
                f"predicate {predicate.name!r} projects onto {projection} "
                "entries, above the leaf-table cap"
            )
        from repro.kernel.compile import DigitStateView

        view = DigitStateView(codec)
        evaluate = compile_predicate_fn(predicate, codec, view)
        values = [column[0] for column in codec.domain_values]
        table = _np.empty(projection, dtype=bool)
        domain_values = codec.domain_values
        try:
            for key, combo in enumerate(
                itertools.product(*[range(radix) for _, radix in self.pairs])
            ):
                for (position, _), digit in zip(self.pairs, combo):
                    values[position] = domain_values[position][digit]
                table[key] = bool(evaluate(values))
        except SweepUnsupported:
            raise
        except Exception as error:
            # The scalar engines may never evaluate this predicate on
            # these representative states (short-circuiting); do not
            # let the tabulation crash where they would not.
            raise SweepUnsupported(
                f"predicate {predicate.name!r} raised during tabulation: "
                f"{error!r}"
            ) from error
        self.table = table

    def mask(self, ctx: _RangeContext):
        if not self.pairs:
            value = bool(self.table[0])
            return _np.full(ctx.hi - ctx.lo, value, dtype=bool)
        return self.table[ctx.key(self.pairs)]


class _MaskNode:
    """A predicate compiled to a mask evaluator over code ranges."""

    __slots__ = ("kind", "operands", "count", "leaf")

    def __init__(self, kind, operands=(), count=0, leaf=None) -> None:
        self.kind = kind
        self.operands = operands
        self.count = count
        self.leaf = leaf

    def mask(self, ctx: _RangeContext):
        kind = self.kind
        if kind == "leaf":
            return self.leaf.mask(ctx)
        masks = [operand.mask(ctx) for operand in self.operands]
        if kind == "all":
            out = masks[0].copy()
            for mask in masks[1:]:
                out &= mask
            return out
        if kind == "any":
            out = masks[0].copy()
            for mask in masks[1:]:
                out |= mask
            return out
        if kind == "not":
            return ~masks[0]
        if kind == "implies":
            return ~masks[0] | masks[1]
        # count: exactly ``self.count`` of the operands hold
        total = _np.zeros(masks[0].size, dtype=_np.int16)
        for mask in masks:
            total += mask
        return total == self.count


def _compile_mask(
    predicate: Predicate, codec, battery_of: "_BatteryCache"
) -> _MaskNode:
    """Recursively compile ``predicate`` into a :class:`_MaskNode`.

    Raises:
        SweepUnsupported: when some leaf cannot be soundly tabulated.
    """
    parts = getattr(predicate, "parts", None)
    if parts is not None:
        kind = parts[0]
        operands = tuple(
            _compile_mask(operand, codec, battery_of) for operand in parts[1]
        )
        if kind in ("and", "all"):
            return _MaskNode("all", operands)
        if kind in ("or", "any"):
            return _MaskNode("any", operands)
        if kind in ("not", "implies"):
            return _MaskNode(kind, operands)
        if kind == "count":
            return _MaskNode("count", operands, count=parts[2])
        raise SweepUnsupported(f"unknown predicate combinator {kind!r}")

    # Leaf: find a sound support to project onto. Symbolic leaves carry
    # their exact read set; opaque leaves must pass the same probe-based
    # read inference that gates action tables (RW001).
    source = getattr(predicate, "source", None)
    if isinstance(source, BoolExpr):
        names = source.variables()
    else:
        if predicate.support is None:
            raise SweepUnsupported(
                f"predicate {predicate.name!r} has no declared support"
            )
        names = predicate.support
        inferred = battery_of.predicate_reads(predicate)
        if not inferred <= names:
            raise SweepUnsupported(
                f"predicate {predicate.name!r} reads outside its declared "
                "support; projection would be unsound"
            )
    positions = []
    for name in names:
        position = codec._positions.get(name)
        if position is None:
            raise SweepUnsupported(
                f"predicate {predicate.name!r} reads unknown variable {name!r}"
            )
        positions.append(position)
    return _MaskNode(
        "leaf", leaf=_LeafMask(predicate, codec, sorted(positions))
    )


class _BatteryCache:
    """Lazily computed probe battery shared across leaf gates."""

    __slots__ = ("program", "_battery")

    def __init__(self, program) -> None:
        self.program = program
        self._battery = None

    def predicate_reads(self, predicate: Predicate) -> frozenset[str]:
        from repro.core.introspect import infer_predicate_reads
        from repro.kernel.compile import probe_battery

        if self._battery is None:
            self._battery = probe_battery(self.program)
        try:
            return infer_predicate_reads(predicate, self._battery).reads
        except Exception as error:
            raise SweepUnsupported(
                f"probing predicate {predicate.name!r} failed: {error!r}"
            ) from error


# ----------------------------------------------------------------------
# Action successor columns
# ----------------------------------------------------------------------


class _TableColumns:
    """A table-mode action laid out as flat arrays over its projection.

    The layout mirrors the scalar memo's normalized entries: a
    *shift-form* action (every written variable also read) stores one
    packed-code shift per key; a *delta-form* action stores the target
    digit of every written position per key. Both evaluate a whole code
    range with a couple of gathers. Enumerating the projection also
    fills the action's scalar memo (``action._table``), so table
    hit/miss accounting is identical on both paths.
    """

    __slots__ = ("pairs", "enabled", "shift", "deltas")

    def __init__(self, action, codec, dtype) -> None:
        pairs = action._read_pairs
        projection = 1
        for _, radix in pairs:
            projection *= radix
        if projection > MAX_ACTION_PROJECTION:
            raise SweepUnsupported(
                f"action {action.name!r} projects onto {projection} entries, "
                "above the action-table cap"
            )
        self.pairs = pairs
        written = [
            (position, codec.weights[position])
            for _target, position, _weight, _digits, _evaluator in action._updates
        ]
        shift_form = all(position in action._read_set for position, _ in written)
        enabled = _np.zeros(projection, dtype=bool)
        # Shifts (``successor - code``) range over ``(-size, size)`` and
        # per-position deltas are digits, so both fit the code dtype.
        shift = _np.zeros(projection, dtype=dtype) if shift_form else None
        deltas = (
            None
            if shift_form
            else [
                (position, weight, _np.zeros(projection, dtype=dtype))
                for position, weight in written
            ]
        )
        digits = [0] * len(codec.names)
        values = [column[0] for column in codec.domain_values]
        domain_values = codec.domain_values
        table = action._table
        evaluate = action._evaluate
        try:
            for key, combo in enumerate(
                itertools.product(*[range(radix) for _, radix in pairs])
            ):
                for (position, _), digit in zip(pairs, combo):
                    digits[position] = digit
                    values[position] = domain_values[position][digit]
                entry = table.get(key, _MISSING)
                if entry is _MISSING:
                    entry = evaluate(0, digits, values)
                    table[key] = entry
                if entry is None:
                    continue
                enabled[key] = True
                if type(entry) is int:
                    shift[key] = entry
                    continue
                tag, payload = entry
                if tag != "delta":  # "raw": out-of-domain successor value
                    raise SweepUnsupported(
                        f"action {action.name!r} produces an out-of-domain "
                        "successor; raw states need the scalar sweep"
                    )
                by_position = {position: digit for position, digit, _ in payload}
                for position, _weight, column in deltas:
                    column[key] = by_position[position]
        except SweepUnsupported:
            raise
        except Exception as error:
            raise SweepUnsupported(
                f"action {action.name!r} raised during tabulation: {error!r}"
            ) from error
        self.enabled = enabled
        self.shift = shift
        self.deltas = deltas

    def columns(self, ctx: _RangeContext):
        key = ctx.key(self.pairs)
        enabled = self.enabled[key]
        if self.shift is not None:
            return enabled, ctx.codes + self.shift[key]
        successors = ctx.codes.copy()
        for position, weight, column in self.deltas:
            successors += (column[key] - ctx.digit(position)) * weight
        return enabled, successors


class _DirectColumns:
    """Direct/fallback-mode actions, evaluated per state in one shared walk."""

    __slots__ = ("members",)

    def __init__(self, members: list[tuple[int, object]]) -> None:
        self.members = members  # [(action_id, CompiledAction)]

    def columns(self, kernel: PackedKernel, ctx: _RangeContext):
        n = ctx.hi - ctx.lo
        dtype = ctx.codes.dtype
        results = {
            action_id: (
                _np.zeros(n, dtype=bool),
                _np.zeros(n, dtype=dtype),
            )
            for action_id, _ in self.members
        }
        members = [
            (results[action_id], action.successor, action.name)
            for action_id, action in self.members
        ]
        lo = ctx.lo
        for code, digits, values in kernel.iter_range(ctx.lo, ctx.hi):
            row = code - lo
            for (enabled, successors), successor_fn, name in members:
                successor = successor_fn(code, digits, values)
                if successor is None:
                    continue
                if type(successor) is not int:
                    raise SweepUnsupported(
                        f"action {name!r} produces an out-of-domain "
                        "successor; raw states need the scalar sweep"
                    )
                enabled[row] = True
                successors[row] = successor
        return results


# ----------------------------------------------------------------------
# The sweep plan: compiled once, swept per shard
# ----------------------------------------------------------------------


class Fragment:
    """One swept code range: masks plus a local CSR fragment.

    ``offsets`` is local (``offsets[0] == 0``); ``targets`` hold global
    packed codes. Fragments merge by concatenation in shard order, which
    reproduces the unsharded sweep exactly.
    """

    __slots__ = ("lo", "hi", "s_mask", "t_mask", "offsets", "targets", "action_ids")

    def __init__(self, lo, hi, s_mask, t_mask, offsets, targets, action_ids):
        self.lo = lo
        self.hi = hi
        self.s_mask = s_mask
        self.t_mask = t_mask
        self.offsets = offsets
        self.targets = targets
        self.action_ids = action_ids


class SweepPlan:
    """Vectorized evaluators for one ``(program, S, T)`` instance.

    Built once — leaf and action projection tables are enumerated here,
    in the parent process, so forked shard workers inherit them — then
    :meth:`sweep_range` turns any contiguous code range into a
    :class:`Fragment` with pure array operations (plus one per-state
    walk when the program has direct-mode actions).

    Raises:
        SweepUnsupported: when the instance falls outside the vectorized
            fragment; the caller falls back to the scalar sweep.
    """

    def __init__(self, kernel: PackedKernel, invariant, fault_span) -> None:
        _require_numpy()
        self.kernel = kernel
        codec = kernel.codec
        forced = FORCE_CODE_DTYPE
        self.code_dtype = _np.dtype(
            codec.code_dtype if forced is None else forced
        )
        # Offsets count edges, bounded by size * n_actions; int32 when
        # that bound fits, int64 otherwise (or when the width is forced
        # wide to emulate the v2 memory profile).
        edge_bound = codec.size * max(1, len(kernel.actions))
        wide_offsets = forced == "int64" or edge_bound > 2**31 - 1
        self.offset_dtype = _np.dtype(_np.int64 if wide_offsets else _np.int32)
        battery = _BatteryCache(kernel.program)
        self.s_node = _compile_mask(invariant, codec, battery)
        # fault_span is None for the stabilizing span (T == TRUE).
        self.t_node = (
            None
            if fault_span is None
            else _compile_mask(fault_span, codec, battery)
        )
        table_members: list[tuple[int, _TableColumns]] = []
        direct_members: list[tuple[int, object]] = []
        for action_id, action in enumerate(kernel.actions):
            if action.mode == "table":
                table_members.append(
                    (action_id, _TableColumns(action, codec, self.code_dtype))
                )
            else:
                direct_members.append((action_id, action))
        self.table_members = table_members
        self.direct = (
            _DirectColumns(direct_members) if direct_members else None
        )
        self.n_actions = len(kernel.actions)

    def _context(self, lo: int, hi: int) -> _RangeContext:
        return _RangeContext(self.kernel.codec, lo, hi, self.code_dtype)

    def mask_range(self, lo: int, hi: int):
        """Only the ``(s_mask, t_mask)`` of ``lo .. hi-1`` (no CSR).

        The streaming verdict path sweeps masks first — one byte per
        state — so closure, implication, and span classification never
        require the materialized transition relation.
        """
        ctx = self._context(lo, hi)
        s_mask = self.s_node.mask(ctx)
        t_mask = None if self.t_node is None else self.t_node.mask(ctx)
        return s_mask, t_mask

    def column_range(self, lo: int, hi: int):
        """The per-action ``(enabled, successors)`` columns of a range.

        Returns ``(ctx, columns)`` where ``columns[action_id]`` is the
        pair of arrays; nothing is interleaved into CSR form, so the
        streaming path can reduce and free each column set shard by
        shard.
        """
        ctx = self._context(lo, hi)
        columns: dict[int, tuple] = {}
        for action_id, member in self.table_members:
            columns[action_id] = member.columns(ctx)
        if self.direct is not None:
            columns.update(self.direct.columns(self.kernel, ctx))
        return ctx, columns

    def sweep_range(self, lo: int, hi: int) -> Fragment:
        """Sweep the codes ``lo .. hi-1`` into a :class:`Fragment`."""
        ctx = self._context(lo, hi)
        n = hi - lo
        s_mask = self.s_node.mask(ctx)
        t_mask = None if self.t_node is None else self.t_node.mask(ctx)

        columns: dict[int, tuple] = {}
        for action_id, member in self.table_members:
            columns[action_id] = member.columns(ctx)
        if self.direct is not None:
            columns.update(self.direct.columns(self.kernel, ctx))

        # Row-major CSR assembly in (state, action) order — the exact
        # edge order of the scalar sweep.
        degrees = _np.zeros(n, dtype=_np.int16)
        for action_id in range(self.n_actions):
            degrees += columns[action_id][0]
        offsets = _np.empty(n + 1, dtype=self.offset_dtype)
        offsets[0] = 0
        _np.cumsum(degrees, dtype=self.offset_dtype, out=offsets[1:])
        targets = _np.empty(int(offsets[-1]), dtype=self.code_dtype)
        action_ids = _np.empty(int(offsets[-1]), dtype=_np.int16)
        cursor = offsets[:-1].copy()
        for action_id in range(self.n_actions):
            enabled, successors = columns[action_id]
            rows = _np.flatnonzero(enabled)
            slots = cursor[rows]
            targets[slots] = successors[rows]
            action_ids[slots] = action_id
            cursor[rows] += 1
        return Fragment(lo, hi, s_mask, t_mask, offsets, targets, action_ids)


def merge_fragments(fragments: list[Fragment]):
    """Concatenate shard fragments into global sweep arrays.

    Fragments must be contiguous and in code order; the result is then
    bit-identical to a single sweep of the full range.

    Returns ``(s_mask, t_mask, offsets, targets, action_ids)`` with
    ``t_mask`` ``None`` when the span is TRUE.
    """
    _require_numpy()
    if len(fragments) == 1:
        fragment = fragments[0]
        return (
            fragment.s_mask,
            fragment.t_mask,
            fragment.offsets,
            fragment.targets,
            fragment.action_ids,
        )
    s_mask = _np.concatenate([fragment.s_mask for fragment in fragments])
    t_mask = (
        None
        if fragments[0].t_mask is None
        else _np.concatenate([fragment.t_mask for fragment in fragments])
    )
    sizes = [fragment.offsets.size - 1 for fragment in fragments]
    offsets = _np.empty(sum(sizes) + 1, dtype=fragments[0].offsets.dtype)
    offsets[0] = 0
    base_state = 1
    base_edge = 0
    for fragment in fragments:
        span = fragment.offsets.size - 1
        offsets[base_state : base_state + span] = fragment.offsets[1:] + base_edge
        base_state += span
        base_edge += int(fragment.offsets[-1])
    targets = _np.concatenate([fragment.targets for fragment in fragments])
    action_ids = _np.concatenate([fragment.action_ids for fragment in fragments])
    return s_mask, t_mask, offsets, targets, action_ids


# ----------------------------------------------------------------------
# Sweeps over assembled CSR arrays
# ----------------------------------------------------------------------


def closure_scan(mask, offsets, targets, *, max_witnesses: int = 5):
    """Closure check of the state set ``mask`` over the CSR arrays.

    One boolean reduction: an edge fails iff its source is in the set
    and its target is not. Returns ``(ok, checked, witness_edges)``
    where ``witness_edges`` are the CSR indices of the first
    ``max_witnesses`` failing edges (in edge order, which is the scalar
    walk's witness order) and ``checked`` reproduces the scalar walk's
    early-exit count: sources examined up to and including the one
    carrying the last reported witness.
    """
    _require_numpy()
    edge_sources = _np.repeat(mask, _np.diff(offsets))
    failing = _np.flatnonzero(edge_sources & ~mask[targets])
    if failing.size == 0:
        return True, int(_np.count_nonzero(mask)), []
    witnesses = failing[:max_witnesses]
    if failing.size >= max_witnesses:
        last_source = int(
            _np.searchsorted(offsets, witnesses[-1], side="right") - 1
        )
        checked = int(_np.count_nonzero(mask[: last_source + 1]))
    else:
        checked = int(_np.count_nonzero(mask))
    return False, checked, [int(k) for k in witnesses]


def edge_sources_of(offsets, edge_indices):
    """The source row of each CSR edge index."""
    _require_numpy()
    return _np.searchsorted(offsets, edge_indices, side="right") - 1


def first_bad_deadlock(bad_mask, offsets):
    """The first (lowest-position) bad state with no outgoing edge.

    This is the deadlock the scalar convergence scan reports (it walks
    bad positions in ascending order). Returns the position or ``None``.
    """
    _require_numpy()
    deadlocks = _np.flatnonzero(bad_mask & (_np.diff(offsets) == 0))
    if deadlocks.size == 0:
        return None
    return int(deadlocks[0])


def _gather_ranges(starts, counts):
    """Indices covering ``[starts[i], starts[i]+counts[i])`` for all i."""
    total = int(counts.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64)
    bases = _np.repeat(
        starts - _np.concatenate(([0], _np.cumsum(counts)[:-1])), counts
    )
    return bases + _np.arange(total, dtype=_np.int64)


def bad_region_acyclic(bad_mask, offsets, targets) -> bool:
    """Whether the subgraph induced by the bad states is acyclic.

    A vectorized Kahn peel: repeatedly remove bad states with no
    remaining successor inside the bad region, decrementing their
    predecessors' internal out-degrees through a reverse-CSR adjacency
    built with one stable sort. The region is acyclic iff everything
    peels away — in which case convergence holds under *any* fairness
    and the exact (but per-node) SCC analysis is skipped entirely.

    A peeled state has internal out-degree zero, so it never appears as
    a predecessor of a later frontier — no aliveness bookkeeping is
    needed, and a state enters the frontier exactly once (the round its
    counter reaches zero).
    """
    _require_numpy()
    n = bad_mask.size
    degrees = _np.diff(offsets)
    edge_sources = _np.repeat(bad_mask, degrees)
    internal = _np.flatnonzero(edge_sources & bad_mask[targets])
    if internal.size == 0:
        return True
    sources = _np.repeat(
        _np.arange(n, dtype=_np.int64), degrees
    )[internal]
    sinks = targets[internal]
    outdegree = _np.bincount(sources, minlength=n)
    # Reverse CSR: predecessors grouped by sink, indexed by indptr.
    order = _np.argsort(sinks, kind="stable")
    by_sink_source = sources[order]
    indptr = _np.empty(n + 1, dtype=_np.int64)
    indptr[0] = 0
    _np.cumsum(_np.bincount(sinks, minlength=n), out=indptr[1:])
    remaining = int(_np.count_nonzero(bad_mask))
    frontier = _np.flatnonzero(bad_mask & (outdegree == 0))
    while frontier.size:
        remaining -= int(frontier.size)
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        predecessors = by_sink_source[_gather_ranges(starts, counts)]
        if predecessors.size == 0:
            break
        if predecessors.size * 16 >= n:
            outdegree -= _np.bincount(predecessors, minlength=n)
        else:
            _np.subtract.at(outdegree, predecessors, 1)
        # Only states whose counter just hit zero can join the frontier;
        # filtering before the dedup keeps the unique() input tiny.
        hit = predecessors[outdegree[predecessors] == 0]
        frontier = _np.unique(hit)
    return remaining == 0


def peel_shard_edges(lo, hi, bad_slice, sources, sinks):
    """Shard-local Kahn peel treating out-of-shard sinks as alive.

    ``sources``/``sinks`` are the global codes of the bad→bad edges
    whose source lies in ``lo .. hi-1``; ``bad_slice`` is the bad mask
    over that range. Every in-shard chain that provably drains without
    leaving the shard is peeled here (sound: a state peels only once all
    its bad successors have, and boundary-crossing sinks never do), so
    the streaming verdict path retains only the boundary frontier for
    the global exchange.

    Returns ``(resolved, sources, sinks)``: ``resolved`` marks the
    locally-drained states over the range, and the returned edge arrays
    keep only edges between still-unresolved endpoints (an out-of-shard
    sink counts as unresolved here — the global exchange filters it once
    its own shard has peeled).
    """
    _require_numpy()
    n = hi - lo
    resolved = _np.zeros(n, dtype=bool)
    if sources.size == 0:
        resolved |= bad_slice
        return resolved, sources, sinks
    local_src = sources - lo
    in_shard = (sinks >= lo) & (sinks < hi)
    outdegree = _np.bincount(local_src, minlength=n)
    # Reverse adjacency over in-shard edges only: out-of-shard sinks
    # never peel locally, so they never need predecessor lookups.
    internal = _np.flatnonzero(in_shard)
    r_sources = local_src[internal]
    r_sinks = sinks[internal] - lo
    order = _np.argsort(r_sinks, kind="stable")
    by_sink_source = r_sources[order]
    indptr = _np.empty(n + 1, dtype=_np.int64)
    indptr[0] = 0
    _np.cumsum(_np.bincount(r_sinks, minlength=n), out=indptr[1:])
    frontier = _np.flatnonzero(bad_slice & (outdegree == 0))
    while frontier.size:
        resolved[frontier] = True
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        predecessors = by_sink_source[_gather_ranges(starts, counts)]
        if predecessors.size == 0:
            break
        if predecessors.size * 16 >= n:
            outdegree -= _np.bincount(predecessors, minlength=n)
        else:
            _np.subtract.at(outdegree, predecessors, 1)
        hit = predecessors[outdegree[predecessors] == 0]
        frontier = _np.unique(hit)
    sink_resolved = _np.zeros(sinks.size, dtype=bool)
    sink_resolved[internal] = resolved[r_sinks]
    keep = ~resolved[local_src] & ~sink_resolved
    return resolved, sources[keep], sinks[keep]


def edge_list_acyclic(sources, sinks, bad_mask) -> bool:
    """Kahn peel over an explicit global bad→bad edge list.

    The streaming verdict path's boundary-frontier exchange: after the
    shard-local peels (:func:`peel_shard_edges`) drained everything they
    could, ``bad_mask`` marks the still-unresolved bad states and
    ``sources``/``sinks`` the surviving edges between them. The region
    is acyclic iff this global peel empties it — the same fixpoint
    :func:`bad_region_acyclic` computes over a materialized CSR.
    """
    _require_numpy()
    remaining = int(_np.count_nonzero(bad_mask))
    if sources.size == 0:
        # No surviving edges: every unresolved state peels in round one.
        return True
    n = bad_mask.size
    outdegree = _np.bincount(sources, minlength=n)
    order = _np.argsort(sinks, kind="stable")
    by_sink_source = sources[order]
    indptr = _np.empty(n + 1, dtype=_np.int64)
    indptr[0] = 0
    _np.cumsum(_np.bincount(sinks, minlength=n), out=indptr[1:])
    frontier = _np.flatnonzero(bad_mask & (outdegree == 0))
    while frontier.size:
        remaining -= int(frontier.size)
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        predecessors = by_sink_source[_gather_ranges(starts, counts)]
        if predecessors.size == 0:
            break
        if predecessors.size * 16 >= n:
            outdegree -= _np.bincount(predecessors, minlength=n)
        else:
            _np.subtract.at(outdegree, predecessors, 1)
        hit = predecessors[outdegree[predecessors] == 0]
        frontier = _np.unique(hit)
    return remaining == 0


def frontier_reach(offsets, targets, roots, size: int):
    """The states reachable from ``roots``, as a boolean mask.

    Frontier BFS as array gather/scatter: each round gathers the whole
    frontier's CSR edge ranges at once, dedupes, and scatters into the
    visited mask — no per-state Python.
    """
    _require_numpy()
    visited = _np.zeros(size, dtype=bool)
    frontier = _np.unique(_np.asarray(list(roots), dtype=_np.int64))
    visited[frontier] = True
    offsets = _np.asarray(offsets, dtype=_np.int64)
    targets = _np.asarray(targets, dtype=_np.int64)
    while frontier.size:
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        successors = targets[_gather_ranges(starts, counts)]
        successors = _np.unique(successors)
        successors = successors[~visited[successors]]
        visited[successors] = True
        frontier = successors
    return visited
