"""Packed-engine T-tolerance verification.

``check_tolerance_packed`` reproduces
:func:`repro.verification.checker.check_tolerance` bit-for-bit — same
verdicts, same closure witnesses in the same order, same error messages
— but runs on packed codes:

- With ``states=None`` (the common service path) the full state space is
  swept **once**: one pass computes the ``S``/``T`` membership masks and
  the complete successor graph as flat arrays. The dict engine walks the
  space four times (implication, two closures, span construction) and
  re-executes every action per walk.
- Both closure checks then run over the cached graph without calling a
  single guard again, and the ``T``-span transition system handed to the
  convergence checker is carved out of the same arrays.

With numpy available, full-space sweeps of large instances dispatch to
the vectorized kernel (:mod:`repro.kernel.sweeps`, optionally sharded
over a process pool via :mod:`repro.kernel.shard`); instances outside
the vectorized fragment — and every run without numpy — take the scalar
loop below, whose results the vectorized path reproduces bit-for-bit.

Successor values that leave their variable's domain are kept as raw
:class:`State` markers inside the graph so closure witnesses and escape
lists match the dict engine exactly.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence

from repro.core.errors import StateSpaceTooLargeError
from repro.core.predicates import TRUE, Predicate
from repro.core.program import Program
from repro.core.state import DEFAULT_MAX_STATES, State
from repro.kernel.engine import (
    PackedKernel,
    PackedTransitionSystem,
    compile_program,
)
from repro.verification.checker import ToleranceReport
from repro.verification.closure import ClosureResult, ClosureWitness
from repro.verification.convergence import (
    ConvergenceCounterexample,
    ConvergenceResult,
    check_convergence,
)

__all__ = ["check_tolerance_packed"]

#: Mirrors ``check_closure``'s default ``max_witnesses``.
_MAX_WITNESSES = 5


def _always_true(values) -> bool:
    return True


class _PackedGraph:
    """The successor graph of a state list, as flat arrays.

    ``entries[offsets[i]:offsets[i+1]]`` are the successors of state
    ``i`` in action order: a non-negative entry is a packed successor
    code; entry ``-(k+1)`` is ``raws[k]``, a successor carrying an
    out-of-domain value (kept inline so escape/witness order is
    identical to the dict engine).

    Buffers are 32-bit whenever ``size * n_actions`` fits (which bounds
    codes, edge counts, and raw sentinels alike) and 64-bit otherwise —
    int16 is never safe here because sentinels count *edges*, not codes.
    """

    __slots__ = ("offsets", "entries", "action_ids", "raws")

    def __init__(self, edge_bound: int | None = None) -> None:
        typecode = (
            "i" if edge_bound is not None and edge_bound <= 2**31 - 1 else "q"
        )
        self.offsets = array(typecode, [0])
        self.entries = array(typecode)
        self.action_ids = array("h")
        self.raws: list[State] = []

    def append_successor(self, successor, action_id: int) -> None:
        if type(successor) is int:
            self.entries.append(successor)
        else:
            self.entries.append(-len(self.raws) - 1)
            self.raws.append(successor)
        self.action_ids.append(action_id)

    def close_row(self) -> None:
        self.offsets.append(len(self.entries))


def check_tolerance_packed(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
    states: Iterable[State] | None = None,
    *,
    fairness: str = "weak",
    max_states: int | None = None,
    shards: int | None = None,
    memory_budget: int | None = None,
    tracer=None,
    metrics=None,
) -> ToleranceReport:
    """Packed counterpart of :func:`~repro.verification.checker.check_tolerance`.

    Args:
        states: The state set, or ``None`` for the program's full state
            space (the fast path: codes are enumerated, never encoded).
        max_states: Full-space size guard; ``None`` means
            :data:`~repro.core.state.DEFAULT_MAX_STATES`. Uses the same
            comparison and message as
            :func:`~repro.core.state.enumerate_states`, so both engines
            agree — verdict or identical error — at the boundary.
        shards: Shard count for the vectorized full-space sweep
            (``None`` = auto heuristic, see
            :func:`~repro.kernel.shard.plan_shards`). Sharding never
            changes results; it is ignored on the scalar fallback paths.
        memory_budget: Peak-bytes target for the vectorized full-space
            sweep. When the materialized CSR estimate exceeds it, the
            streaming count-only verdict path runs instead (peak memory
            O(shard), not O(space)), falling back to the materialized
            sweep the moment a witness must be decoded. Never changes
            results — it is a memory/latency trade, so it is *not* part
            of any cache key. ``None`` (the default) never streams;
            scalar paths ignore it.

    Raises:
        PackedUnsupported: if the program or a supplied state cannot be
            packed; ``engine="auto"`` callers catch this and fall back.
    """
    kernel = compile_program(program, tracer=tracer, metrics=metrics)
    table_entries_before = kernel.table_entries() if metrics is not None else 0
    codec = kernel.codec
    if states is None:
        # Same guard (comparison and message) as ``enumerate_states`` on
        # the dict path, with the caller's limit threaded through.
        limit = DEFAULT_MAX_STATES if max_states is None else max_states
        if codec.size > limit:
            raise StateSpaceTooLargeError(
                f"state space has {codec.size} states, above the limit of "
                f"{limit}"
            )
        report = _vectorized_full_space(
            kernel,
            program,
            invariant,
            fault_span,
            fairness=fairness,
            shards=shards,
            memory_budget=memory_budget,
            tracer=tracer,
            metrics=metrics,
        )
        if report is not None:
            _note_sweep_metrics(
                kernel, metrics, table_entries_before, codec.size
            )
            return report
    s_fn = kernel.predicate_fn(invariant)
    # TRUE is the stabilization fault-span; skip 1 call/state for it.
    t_always = fault_span is TRUE
    t_fn = None if t_always else kernel.predicate_fn(fault_span)
    successor_fns = tuple(
        (action_id, action.successor)
        for action_id, action in enumerate(kernel.actions)
    )
    names = kernel.action_names
    graph = _PackedGraph(codec.size * max(1, len(kernel.actions)))
    entries = graph.entries
    entries_append = entries.append
    ids_append = graph.action_ids.append
    offsets_append = graph.offsets.append
    raws = graph.raws

    if states is None:
        # Full space (scalar sweep): position == code, membership masks
        # are per-code. The size guard already ran above.
        count = codec.size
        state_list: list[State] | None = None
        codes = None
        s_mask = bytearray(count)
        t_mask = bytearray(b"\x01") * count if t_always else bytearray(count)
        for code, digits, values in kernel.iter_space():
            if s_fn(values):
                s_mask[code] = 1
            if not t_always and t_fn(values):
                t_mask[code] = 1
            for action_id, successor_fn in successor_fns:
                successor = successor_fn(code, digits, values)
                if successor is None:
                    continue
                if type(successor) is int:
                    entries_append(successor)
                else:
                    entries_append(-len(raws) - 1)
                    raws.append(successor)
                ids_append(action_id)
            offsets_append(len(entries))

        def position_state(position: int) -> State:
            return codec.decode_state(position)

        def code_of(position: int) -> int:
            return position

        def code_holds(mask, memo, fn, code: int) -> bool:
            return bool(mask[code])

        s_memo = t_memo = None
    else:
        state_list = list(states)
        codes = array(
            codec.code_typecode,
            (codec.encode_state(state) for state in state_list),
        )
        count = len(codes)
        s_mask = bytearray(count)
        t_mask = bytearray(count)
        # Successor codes may fall outside the supplied set; predicate
        # values of such codes are memoized per code.
        s_memo: dict[int, bool] = {}
        t_memo: dict[int, bool] = {}
        for position, code in enumerate(codes):
            digits, values = kernel.analyze_code(code)
            s_value = bool(s_fn(values))
            t_value = True if t_always else bool(t_fn(values))
            s_mask[position] = s_value
            t_mask[position] = t_value
            s_memo[code] = s_value
            t_memo[code] = t_value
            for action_id, successor_fn in successor_fns:
                successor = successor_fn(code, digits, values)
                if successor is None:
                    continue
                if type(successor) is int:
                    entries_append(successor)
                else:
                    entries_append(-len(raws) - 1)
                    raws.append(successor)
                ids_append(action_id)
            offsets_append(len(entries))

        def position_state(position: int) -> State:
            return state_list[position]

        def code_of(position: int) -> int:
            return codes[position]

        def code_holds(mask, memo, fn, code: int) -> bool:
            try:
                return memo[code]
            except KeyError:
                value = bool(fn(codec.decode_values(code)))
                memo[code] = value
                return value

    offsets = graph.offsets
    action_ids = graph.action_ids

    implication_ok = t_always or all(
        t_mask[position] for position in range(count) if s_mask[position]
    )

    def closure(mask, memo, fn, predicate: Predicate) -> ClosureResult:
        checked = 0
        witnesses: list[ClosureWitness] = []
        for position in range(count):
            if not mask[position]:
                continue
            checked += 1
            for k in range(offsets[position], offsets[position + 1]):
                entry = entries[k]
                if entry >= 0:
                    if code_holds(mask, memo, fn, entry):
                        continue
                    after = codec.decode_state(entry)
                else:
                    after = raws[-entry - 1]
                    if predicate(after):
                        continue
                witnesses.append(
                    ClosureWitness(
                        before=position_state(position),
                        action_name=names[action_ids[k]],
                        after=after,
                    )
                )
                if len(witnesses) >= _MAX_WITNESSES:
                    return ClosureResult(
                        predicate_name=predicate.name,
                        ok=False,
                        checked=checked,
                        witnesses=tuple(witnesses),
                    )
        return ClosureResult(
            predicate_name=predicate.name,
            ok=not witnesses,
            checked=checked,
            witnesses=tuple(witnesses),
        )

    s_closure = closure(s_mask, s_memo, s_fn, invariant)
    if t_always:
        # TRUE holds on every successor (raw or not): the walk cannot
        # produce a witness, and ``checked`` is the full state count.
        t_closure = ClosureResult(
            predicate_name=fault_span.name, ok=True, checked=count, witnesses=()
        )
    else:
        t_closure = closure(t_mask, t_memo, t_fn, fault_span)

    # ------------------------------------------------------------------
    # Carve the T-span transition system out of the cached graph.
    # ------------------------------------------------------------------
    if t_always:
        span_positions: Sequence[int] = range(count)
    else:
        span_positions = [
            position for position in range(count) if t_mask[position]
        ]
    span_count = len(span_positions)

    if states is None:
        # Full space: a successor code *is* a position, membership is a
        # mask lookup.
        span_index = None
        if span_count == count:
            span_of = None  # identity
        else:
            span_of = array(codec.code_typecode, [-1]) * count
            for new_position, position in enumerate(span_positions):
                span_of[position] = new_position

        def span_target(entry_code: int) -> int | None:
            if not t_mask[entry_code]:
                return None
            return entry_code if span_of is None else span_of[entry_code]

    else:
        # Subset: membership is "equals one of the supplied T-states",
        # resolved through a last-occurrence-wins code index exactly
        # like the dict engine's ``{state: position}`` map.
        span_index = {}
        for new_position, position in enumerate(span_positions):
            span_index[codes[position]] = new_position

        def span_target(entry_code: int) -> int | None:
            return span_index.get(entry_code)

    if states is None and span_count == count and not raws:
        # Stabilizing full-space case: reuse the arrays wholesale.
        span_codes = array(codec.code_typecode, range(count))
        span_offsets, span_targets, span_action_ids = offsets, entries, action_ids
        span_escapes: list[tuple[int, str, State]] = []
        span_states_preset = None
    else:
        span_codes = array(
            codec.code_typecode,
            (code_of(position) for position in span_positions),
        )
        span_offsets = array(graph.offsets.typecode, [0])
        span_targets = array(codec.code_typecode)
        span_action_ids = array("h")
        span_escapes = []
        span_states_preset = (
            None
            if state_list is None
            else [state_list[position] for position in span_positions]
        )
        for new_position, position in enumerate(span_positions):
            for k in range(offsets[position], offsets[position + 1]):
                entry = entries[k]
                if entry >= 0:
                    target = span_target(entry)
                    if target is not None:
                        span_targets.append(target)
                        span_action_ids.append(action_ids[k])
                        continue
                    escape_state = codec.decode_state(entry)
                else:
                    escape_state = raws[-entry - 1]
                span_escapes.append(
                    (new_position, names[action_ids[k]], escape_state)
                )
            span_offsets.append(len(span_targets))

    span_system = PackedTransitionSystem(
        codec,
        span_codes,
        span_offsets,
        span_targets,
        span_action_ids,
        names,
        span_escapes,
        states=span_states_preset,
    )
    # The convergence checker partitions the span by the invariant; both
    # predicates were already evaluated on every span state, so hand the
    # answers over instead of re-running them.
    span_system._satisfying_cache[id(invariant)] = (
        invariant,
        tuple(
            new_position
            for new_position, position in enumerate(span_positions)
            if s_mask[position]
        ),
    )
    span_system._satisfying_cache[id(fault_span)] = (
        fault_span,
        tuple(range(span_count)),
    )

    if span_system.escapes:
        if t_closure.ok:
            # T-states stepping outside the supplied set even though T is
            # closed: the caller gave a strict subset of the instance.
            raise ValueError(
                "the supplied states do not contain every successor of a "
                "T-state; pass the full extension of T on this instance"
            )
        # T is not closed, so convergence relative to T is undefined;
        # report it failed without a cycle counterexample.
        convergence = ConvergenceResult(
            ok=False,
            fairness=fairness,
            span_states=span_count,
            bad_states=sum(
                1 for position in span_positions if not s_mask[position]
            ),
        )
    else:
        convergence = check_convergence(
            program,
            span_system.states,
            invariant,
            fairness=fairness,
            system=span_system,
        )

    masking = s_mask == t_mask
    stabilizing = span_count == count
    _note_sweep_metrics(kernel, metrics, table_entries_before, count)
    span_shared = span_offsets is offsets
    peak_bytes = (
        len(s_mask)
        + len(t_mask)
        + _buffer_bytes(offsets)
        + _buffer_bytes(entries)
        + _buffer_bytes(action_ids)
        + _buffer_bytes(span_codes)
        + (
            0
            if span_shared
            else _buffer_bytes(span_offsets)
            + _buffer_bytes(span_targets)
            + _buffer_bytes(span_action_ids)
        )
    )
    _note_memory_metrics(
        metrics,
        tracer,
        path="scalar",
        peak_bytes=peak_bytes,
        code_bytes=entries.itemsize,
    )
    return ToleranceReport(
        ok=implication_ok and s_closure.ok and t_closure.ok and convergence.ok,
        implication_ok=implication_ok,
        s_closure=s_closure,
        t_closure=t_closure,
        convergence=convergence,
        classification="masking" if masking else "nonmasking",
        stabilizing=stabilizing,
        total_states=count,
    )


def _note_sweep_metrics(
    kernel: PackedKernel, metrics, table_entries_before: int, count: int
) -> None:
    """Fold one full sweep into the ``kernel.*`` counters.

    Successor tables fill lazily, so misses are the sweep's table
    growth; every action ran (scalar) or was resolved (vectorized)
    exactly once per state.
    """
    if metrics is None:
        return
    modes = kernel.modes()
    misses = kernel.table_entries() - table_entries_before
    calls = count * modes["table"]
    metrics.counter("kernel.table_hits").add(calls - misses)
    metrics.counter("kernel.table_misses").add(misses)
    metrics.counter("kernel.direct_evals").add(
        count * (modes["direct"] + modes["fallback"])
    )
    if modes["fallback"]:
        metrics.counter("kernel.fallback_actions").add(modes["fallback"])


def _buffer_bytes(buffer) -> int:
    """Resident bytes of an ``array`` buffer."""
    return buffer.itemsize * len(buffer)


def _note_memory_metrics(
    metrics,
    tracer,
    *,
    path: str,
    peak_bytes: int,
    code_bytes: int,
    streaming: bool = False,
    transfer: str | None = None,
) -> None:
    """Fold one sweep's memory profile into ``kernel.mem.*``.

    ``peak_bytes`` is deterministic accounting over the arrays the sweep
    actually held (not process RSS, which the benchmarks measure
    separately): masks + CSR/graph buffers on materialized paths, masks
    + the largest shard's transients + retained boundary edges on the
    streaming path. Counters accumulate across sweeps, like every other
    ``kernel.*`` counter in a RunReport.
    """
    if metrics is not None:
        metrics.counter("kernel.mem.peak_bytes").add(int(peak_bytes))
        metrics.counter("kernel.mem.code_bytes").add(int(code_bytes))
        if streaming:
            metrics.counter("kernel.mem.streaming").add(1)
    if tracer is not None:
        from repro.observability.events import KERNEL_MEM

        tracer.emit(
            KERNEL_MEM,
            path=path,
            peak_bytes=int(peak_bytes),
            code_bytes=int(code_bytes),
            streaming=streaming,
            transfer=transfer,
        )


def _materialized_bytes(plan, size: int) -> int:
    """Upper bound on the materialized sweep's resident bytes.

    Masks, offsets, and the worst-case edge arrays (every action enabled
    on every state) at the plan's dtypes. The streaming decision
    compares this against the memory budget *before* sweeping, so it
    must not depend on anything the sweep would compute.
    """
    edges = size * max(1, plan.n_actions)
    masks = size * (1 if plan.t_node is None else 2)
    return (
        masks
        + (size + 1) * plan.offset_dtype.itemsize
        + edges * (plan.code_dtype.itemsize + 2)
    )


def _vectorized_full_space(
    kernel: PackedKernel,
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
    *,
    fairness: str,
    shards: int | None,
    memory_budget: int | None = None,
    tracer=None,
    metrics=None,
) -> ToleranceReport | None:
    """The vectorized (optionally sharded) full-space sweep.

    Returns ``None`` when the instance stays on the scalar sweep: numpy
    missing, the space too small to pay numpy's fixed overhead (unless
    sharding was requested explicitly), or any construct outside the
    vectorized fragment (:class:`~repro.kernel.sweeps.SweepUnsupported`).
    The produced report is bit-identical to the scalar sweep's — same
    verdicts, witness order, counterexamples and counts — which the
    differential suite pins.

    When ``memory_budget`` is set and the materialized estimate exceeds
    it, the streaming count-only path runs first; it returns ``None``
    exactly when the verdict needs decoded witnesses (closure violations
    or a bad cycle), in which case the materialized sweep below produces
    them.
    """
    from repro.kernel import shard as sharding
    from repro.kernel import sweeps

    size = kernel.codec.size
    if not sweeps.HAVE_NUMPY:
        return None
    if shards is None and size < sweeps.VECTOR_MIN_STATES:
        return None
    try:
        plan = sweeps.SweepPlan(
            kernel,
            invariant,
            None if fault_span is TRUE else fault_span,
        )
        ranges = sharding.plan_shards(size, shards)
        if (
            memory_budget is not None
            and _materialized_bytes(plan, size) > memory_budget
        ):
            report = _streaming_full_space(
                kernel,
                program,
                invariant,
                fault_span,
                plan,
                ranges,
                fairness=fairness,
                tracer=tracer,
                metrics=metrics,
            )
            if report is not None:
                return report
        merged, transfer = sharding.sweep_merged(plan, ranges, metrics=metrics)
        s_mask, t_mask, offsets, targets, action_ids = merged
    except sweeps.SweepUnsupported:
        return None
    import numpy as np

    codec = kernel.codec
    names = kernel.action_names
    count = size
    if tracer is not None:
        from repro.observability.events import (
            KERNEL_SHARD_MERGED,
            KERNEL_SWEEP,
        )

        tracer.emit(
            KERNEL_SWEEP,
            program=program.name,
            states=count,
            shards=len(ranges),
            edges=int(offsets[-1]),
        )
        if len(ranges) > 1:
            tracer.emit(KERNEL_SHARD_MERGED, shards=len(ranges))
    mem_bytes = (
        s_mask.nbytes
        + (0 if t_mask is None else t_mask.nbytes)
        + offsets.nbytes
        + targets.nbytes
        + action_ids.nbytes
    )

    implication_ok = t_mask is None or not bool(np.any(s_mask & ~t_mask))

    def decode(code) -> State:
        return codec.decode_state(int(code))

    def closure_result(mask, predicate: Predicate) -> ClosureResult:
        ok, checked, witness_edges = sweeps.closure_scan(
            mask, offsets, targets, max_witnesses=_MAX_WITNESSES
        )
        witnesses = tuple(
            ClosureWitness(
                before=decode(
                    np.searchsorted(offsets, k, side="right") - 1
                ),
                action_name=names[action_ids[k]],
                after=decode(targets[k]),
            )
            for k in witness_edges
        )
        return ClosureResult(
            predicate_name=predicate.name,
            ok=ok,
            checked=checked,
            witnesses=witnesses,
        )

    s_closure = closure_result(s_mask, invariant)
    if t_mask is None:
        # TRUE holds on every successor: the scan cannot produce a
        # witness, and ``checked`` is the full state count.
        t_closure = ClosureResult(
            predicate_name=fault_span.name, ok=True, checked=count, witnesses=()
        )
    else:
        t_closure = closure_result(t_mask, fault_span)

    # ------------------------------------------------------------------
    # Convergence over the T-span.
    # ------------------------------------------------------------------
    if t_mask is None:
        span_rows = None
        span_count = count
        span_offsets, span_targets, span_ids = offsets, targets, action_ids
        bad_mask = ~s_mask
    else:
        span_rows = np.flatnonzero(t_mask)
        span_count = int(span_rows.size)
    if t_mask is not None and not t_closure.ok:
        # T is not closed (on the full space every closure witness is an
        # escaping edge), so convergence relative to T is undefined;
        # report it failed without a cycle counterexample — exactly the
        # scalar engines' escape branch.
        convergence = ConvergenceResult(
            ok=False,
            fairness=fairness,
            span_states=span_count,
            bad_states=int(np.count_nonzero(t_mask & ~s_mask)),
        )
    else:
        if t_mask is not None:
            # Carve the span-induced CSR; T is closed, so every edge out
            # of a T-state stays inside the span.
            span_of = np.cumsum(t_mask, dtype=np.int64) - 1
            degrees = np.diff(offsets)
            keep = np.repeat(t_mask, degrees)
            span_targets = span_of[targets[keep]]
            span_ids = action_ids[keep]
            span_offsets = np.empty(span_count + 1, dtype=np.int64)
            span_offsets[0] = 0
            np.cumsum(degrees[span_rows], out=span_offsets[1:])
            bad_mask = ~s_mask[span_rows]
            mem_bytes += (
                span_of.nbytes
                + span_targets.nbytes
                + span_ids.nbytes
                + span_offsets.nbytes
            )
        bad_count = int(np.count_nonzero(bad_mask))
        deadlock = sweeps.first_bad_deadlock(bad_mask, span_offsets)
        if deadlock is not None:
            state = decode(
                deadlock if span_rows is None else span_rows[deadlock]
            )
            convergence = ConvergenceResult(
                ok=False,
                fairness=fairness,
                span_states=span_count,
                bad_states=bad_count,
                counterexample=ConvergenceCounterexample(
                    kind="deadlock", states=(state,)
                ),
            )
        elif sweeps.bad_region_acyclic(bad_mask, span_offsets, span_targets):
            # No bad deadlock and no bad cycle: convergence holds under
            # any fairness, with no SCC analysis and no span system.
            convergence = ConvergenceResult(
                ok=True,
                fairness=fairness,
                span_states=span_count,
                bad_states=bad_count,
            )
        else:
            # A bad cycle exists somewhere: hand the span to the exact
            # checker for the scalar engines' counterexample, seeding its
            # predicate memo from the masks like the scalar sweep does.
            span_codes = (
                np.arange(count, dtype=np.int64)
                if span_rows is None
                else span_rows
            )
            span_system = PackedTransitionSystem(
                codec,
                span_codes,
                span_offsets,
                span_targets,
                span_ids,
                names,
                [],
            )
            good = (
                np.flatnonzero(s_mask)
                if span_rows is None
                else np.flatnonzero(s_mask[span_rows])
            )
            span_system._satisfying_cache[id(invariant)] = (
                invariant,
                tuple(good.tolist()),
            )
            span_system._satisfying_cache[id(fault_span)] = (
                fault_span,
                tuple(range(span_count)),
            )
            convergence = check_convergence(
                program,
                span_system.states,
                invariant,
                fairness=fairness,
                system=span_system,
            )

    if t_mask is None:
        masking = bool(s_mask.all())
    else:
        masking = bool(np.array_equal(s_mask, t_mask))
    _note_memory_metrics(
        metrics,
        tracer,
        path="vectorized",
        peak_bytes=mem_bytes,
        code_bytes=targets.dtype.itemsize,
        transfer=transfer,
    )
    return ToleranceReport(
        ok=implication_ok
        and s_closure.ok
        and t_closure.ok
        and convergence.ok,
        implication_ok=implication_ok,
        s_closure=s_closure,
        t_closure=t_closure,
        convergence=convergence,
        classification="masking" if masking else "nonmasking",
        stabilizing=span_count == count,
        total_states=count,
    )


def _streaming_full_space(
    kernel: PackedKernel,
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
    plan,
    ranges: list[tuple[int, int]],
    *,
    fairness: str,
    tracer=None,
    metrics=None,
) -> ToleranceReport | None:
    """The streaming count-only verdict path (kernel v3).

    Sweeps shard-at-a-time and never materializes the CSR: a mask pass
    answers implication, closure (ok case), span classification, and the
    counts; a column pass reduces each shard's successor columns in
    place — closure violations, span out-degrees, and the bad→bad edges
    — then frees them before the next shard, so peak memory is O(shard)
    plus the boundary edges the shard-local Kahn peels could not drain
    (:func:`~repro.kernel.sweeps.peel_shard_edges`); a final
    boundary-frontier exchange (:func:`~repro.kernel.sweeps.edge_list_acyclic`)
    finishes the peel globally.

    Every produced report is bit-identical to the materialized sweep's.
    That is possible precisely because this path only runs to completion
    when no witness must be decoded: the moment one is needed — a
    closure violation (witness states) or a surviving bad cycle (the
    exact SCC counterexample) — it returns ``None`` and the caller
    materializes. The one decoded state it ever produces is a bad
    deadlock, which is a single ``decode_state`` of the lowest bad
    zero-degree code — the same state the materialized scan reports.
    """
    import numpy as np

    from repro.kernel import sweeps

    codec = kernel.codec
    count = codec.size
    code_dtype = plan.code_dtype

    s_mask = np.empty(count, dtype=bool)
    t_mask = None if plan.t_node is None else np.empty(count, dtype=bool)
    for lo, hi in ranges:
        s_part, t_part = plan.mask_range(lo, hi)
        s_mask[lo:hi] = s_part
        if t_mask is not None:
            t_mask[lo:hi] = t_part

    implication_ok = t_mask is None or not bool(np.any(s_mask & ~t_mask))
    bad_full = ~s_mask if t_mask is None else (t_mask & ~s_mask)
    span_count = count if t_mask is None else int(np.count_nonzero(t_mask))
    bad_count = int(np.count_nonzero(bad_full))

    resolved = np.zeros(count, dtype=bool)
    kept_sources: list = []
    kept_sinks: list = []
    retained_bytes = 0
    shard_peak = 0
    total_edges = 0
    deadlock_code: int | None = None

    for lo, hi in ranges:
        ctx, columns = plan.column_range(lo, hi)
        n = hi - lo
        degrees = np.zeros(n, dtype=np.int16)
        s_src = s_mask[lo:hi]
        t_src = None if t_mask is None else t_mask[lo:hi]
        bad_src = bad_full[lo:hi]
        shard_sources: list = []
        shard_sinks: list = []
        for action_id in range(plan.n_actions):
            enabled, successors = columns[action_id]
            # Any closure violation means decoded witnesses: materialize.
            if bool(np.any(s_src & enabled & ~s_mask[successors])):
                return None
            if t_src is not None and bool(
                np.any(t_src & enabled & ~t_mask[successors])
            ):
                return None
            degrees += enabled
            if deadlock_code is None:
                edge_rows = np.flatnonzero(
                    bad_src & enabled & bad_full[successors]
                )
                if edge_rows.size:
                    shard_sources.append(ctx.codes[edge_rows])
                    shard_sinks.append(successors[edge_rows])
        total_edges += int(degrees.sum(dtype=np.int64))
        if deadlock_code is None:
            # T is closed on every success path, so a bad state's span
            # out-degree is simply its enabled count; shards ascend, so
            # the first candidate is the materialized scan's deadlock.
            candidates = np.flatnonzero(bad_src & (degrees == 0))
            if candidates.size:
                deadlock_code = lo + int(candidates[0])
                shard_sources = []
                shard_sinks = []
        if deadlock_code is None:
            if shard_sources:
                sources = np.concatenate(shard_sources)
                sinks = np.concatenate(shard_sinks)
            else:
                sources = np.empty(0, dtype=code_dtype)
                sinks = np.empty(0, dtype=code_dtype)
            drained, sources, sinks = sweeps.peel_shard_edges(
                lo, hi, bad_src, sources, sinks
            )
            resolved[lo:hi] = drained
            kept_sources.append(sources)
            kept_sinks.append(sinks)
            retained_bytes += sources.nbytes + sinks.nbytes
        shard_peak = max(
            shard_peak, n * (2 + plan.n_actions * (1 + code_dtype.itemsize))
        )
        del ctx, columns

    s_closure = ClosureResult(
        predicate_name=invariant.name,
        ok=True,
        checked=int(np.count_nonzero(s_mask)),
        witnesses=(),
    )
    t_closure = ClosureResult(
        predicate_name=fault_span.name,
        ok=True,
        checked=count if t_mask is None else int(np.count_nonzero(t_mask)),
        witnesses=(),
    )

    if deadlock_code is not None:
        convergence = ConvergenceResult(
            ok=False,
            fairness=fairness,
            span_states=span_count,
            bad_states=bad_count,
            counterexample=ConvergenceCounterexample(
                kind="deadlock",
                states=(codec.decode_state(deadlock_code),),
            ),
        )
    else:
        if kept_sources:
            sources = np.concatenate(kept_sources)
            sinks = np.concatenate(kept_sinks)
        else:
            sources = np.empty(0, dtype=code_dtype)
            sinks = np.empty(0, dtype=code_dtype)
        if sources.size:
            # The exchange: a sink drained by its own shard's local peel
            # deletes the edge (and with it the source's last obstacle).
            alive = ~resolved[sinks]
            sources = sources[alive]
            sinks = sinks[alive]
        if not sweeps.edge_list_acyclic(sources, sinks, bad_full & ~resolved):
            return None  # a bad cycle survives: the SCC analysis needs CSR
        convergence = ConvergenceResult(
            ok=True,
            fairness=fairness,
            span_states=span_count,
            bad_states=bad_count,
        )

    if tracer is not None:
        from repro.observability.events import (
            KERNEL_SHARD_MERGED,
            KERNEL_SWEEP,
        )

        tracer.emit(
            KERNEL_SWEEP,
            program=program.name,
            states=count,
            shards=len(ranges),
            edges=total_edges,
        )
        if len(ranges) > 1:
            tracer.emit(KERNEL_SHARD_MERGED, shards=len(ranges))
    if metrics is not None:
        metrics.counter("kernel.sweep.vectorized").add(len(ranges))
        if len(ranges) > 1:
            metrics.counter("kernel.shard.merged").add(len(ranges))
    mask_bytes = (
        s_mask.nbytes
        + (0 if t_mask is None else t_mask.nbytes)
        + bad_full.nbytes
        + resolved.nbytes
    )
    _note_memory_metrics(
        metrics,
        tracer,
        path="streaming",
        peak_bytes=mask_bytes + shard_peak + retained_bytes,
        code_bytes=code_dtype.itemsize,
        streaming=True,
    )

    if t_mask is None:
        masking = bool(s_mask.all())
    else:
        masking = bool(np.array_equal(s_mask, t_mask))
    return ToleranceReport(
        ok=implication_ok
        and s_closure.ok
        and t_closure.ok
        and convergence.ok,
        implication_ok=implication_ok,
        s_closure=s_closure,
        t_closure=t_closure,
        convergence=convergence,
        classification="masking" if masking else "nonmasking",
        stabilizing=span_count == count,
        total_states=count,
    )
