"""Packed-state exploration kernel.

Encodes each program state as a single mixed-radix integer
(:class:`StateCodec`), compiles guards and statements into closures over
decoded digit/value lists (:mod:`repro.kernel.compile`), memoizes each
action's successor function over its read-support projection when the
declared supports pass the RW001-RW003 soundness gate, and backs
transition systems with flat ``array('q')`` buffers
(:class:`PackedTransitionSystem`).

Selected via ``engine="packed"`` (or the default ``engine="auto"``,
which falls back to the dict engine on :class:`PackedUnsupported`) in
:func:`repro.verification.explorer.build_transition_system`,
:func:`repro.verification.explorer.explore`,
:func:`repro.verification.checker.check_tolerance`, and
:meth:`repro.verification.service.VerificationService.verify_tolerance`.

See ``docs/PERFORMANCE.md`` for the codec layout and the locality
argument that makes projection-keyed successor tables sound.
"""

from repro.kernel.codec import PackedUnsupported, StateCodec
from repro.kernel.compile import (
    CompiledAction,
    DigitStateView,
    action_supports_ok,
    compile_expr,
    compile_predicate_fn,
)
from repro.kernel.engine import (
    PackedKernel,
    PackedTransitionSystem,
    build_packed_system,
    compile_program,
    explore_packed,
    kernel_supported,
)
from repro.kernel.verify import check_tolerance_packed

__all__ = [
    "CompiledAction",
    "DigitStateView",
    "PackedKernel",
    "PackedTransitionSystem",
    "PackedUnsupported",
    "StateCodec",
    "action_supports_ok",
    "build_packed_system",
    "check_tolerance_packed",
    "compile_expr",
    "compile_predicate_fn",
    "compile_program",
    "explore_packed",
    "kernel_supported",
]
