"""Zero-copy shard transfer over POSIX shared memory.

Sharded sweeps used to return each :class:`~repro.kernel.sweeps.Fragment`
through the process-pool result pipe, which pickles every CSR byte twice
(serialize in the worker, deserialize in the parent). At 10^8 states
that is gigabytes of copying for arrays that already live in page-backed
memory. This module parks each fragment in a
:mod:`multiprocessing.shared_memory` segment instead: the worker writes
its arrays once and returns only a tiny :class:`FragmentHandle`
descriptor (segment name, field layout, dtypes); the parent maps the
segment and reads the arrays in place, so the merge is a slice-copy
straight out of shared pages.

Lifecycle rules, learned the hard way:

- The parent must start the ``multiprocessing`` resource tracker
  *before* forking pool workers (:func:`ensure_tracker`). Otherwise
  each worker lazily spawns its own tracker, which unlinks the worker's
  segments the moment the worker exits — and pool shutdown happens
  before the parent ever maps them.
- ``SharedMemory.close()`` raises :class:`BufferError` while numpy views
  of the buffer are alive; callers must drop every view before
  releasing a segment (:func:`release_segments` tolerates stragglers by
  still unlinking — the kernel frees the pages once the last mapping
  dies with the process).
- Segment names are deterministic per sweep (``rk3<token>s<index>``), so
  the BrokenProcessPool rerun path can reclaim anything a crashed worker
  left behind: creation retries after unlinking a stale same-name
  segment, and :func:`unlink_segments` sweeps the whole token in a
  ``finally``.

Shared memory is an optimization, never a requirement: when the platform
lacks it, the probe fails, or ``REPRO_KERNEL_NO_SHM`` is set, callers
fall back to the pickle path with bit-identical results.
"""

from __future__ import annotations

import os
import secrets

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

try:  # numpy is optional: without it the pickle path is used
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the fallback CI leg
    _np = None

__all__ = [
    "DISABLE_ENV",
    "FragmentHandle",
    "ensure_tracker",
    "export_fragment",
    "import_fragment",
    "new_token",
    "release_segments",
    "segment_name",
    "shm_available",
    "unlink_segments",
]

#: Set (to any non-empty value) to force the pickle transfer path.
DISABLE_ENV = "REPRO_KERNEL_NO_SHM"

#: Each array in a segment starts on a 16-byte boundary.
_ALIGN = 16

#: Cached result of the create/unlink probe (``None`` = not yet probed).
_probe_result: bool | None = None


def shm_available() -> bool:
    """Whether zero-copy transfer can be used right now.

    The environment override is consulted on every call (tests and CI
    flip it); the platform probe — create, map, and unlink a tiny
    segment — runs once per process.
    """
    global _probe_result
    if _np is None or _shm is None:
        return False
    if os.environ.get(DISABLE_ENV):
        return False
    if _probe_result is None:
        try:
            segment = _shm.SharedMemory(create=True, size=16)
        except Exception:
            _probe_result = False
        else:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
            _probe_result = True
    return _probe_result


def ensure_tracker() -> None:
    """Start the resource tracker in this process, pre-fork.

    Fork workers inherit the running tracker, so segments they create
    stay registered with a process that outlives them; without this,
    each worker's private tracker unlinks those segments at worker exit,
    racing the parent's merge.
    """
    from multiprocessing import resource_tracker

    resource_tracker.ensure_running()


def new_token() -> str:
    """A fresh per-sweep token for deterministic segment names."""
    return secrets.token_hex(4)


def segment_name(token: str, index: int) -> str:
    """The segment name of shard ``index`` under ``token``.

    Short and deterministic: POSIX caps names at 31 characters, and the
    parent must be able to reconstruct every name for crash cleanup.
    """
    return f"rk3{token}s{index}"


class FragmentHandle:
    """Descriptor of one shard fragment parked in a shared segment.

    This is all that crosses the pool pipe: the code range, the segment
    name, and the field layout ``(field, byte offset, length, dtype)``.
    ``t_mask`` is simply absent from the layout when the span is TRUE.
    """

    __slots__ = ("lo", "hi", "name", "nbytes", "arrays")

    def __init__(self, lo, hi, name, nbytes, arrays) -> None:
        self.lo = lo
        self.hi = hi
        self.name = name
        self.nbytes = nbytes
        self.arrays = arrays

    def __getstate__(self):
        return (self.lo, self.hi, self.name, self.nbytes, self.arrays)

    def __setstate__(self, state):
        self.lo, self.hi, self.name, self.nbytes, self.arrays = state


def export_fragment(fragment, name: str) -> FragmentHandle:
    """Write ``fragment``'s arrays into a fresh segment named ``name``.

    Runs in the shard worker. If a stale segment with this name survived
    a crashed prior attempt, it is reclaimed (unlinked and recreated) —
    names are deterministic precisely so this is safe.
    """
    fields = [("s_mask", fragment.s_mask)]
    if fragment.t_mask is not None:
        fields.append(("t_mask", fragment.t_mask))
    fields.append(("offsets", fragment.offsets))
    fields.append(("targets", fragment.targets))
    fields.append(("action_ids", fragment.action_ids))
    layout = []
    cursor = 0
    for field, array in fields:
        cursor = -(-cursor // _ALIGN) * _ALIGN
        layout.append((field, cursor, int(array.size), array.dtype.str))
        cursor += int(array.nbytes)
    total = max(1, cursor)
    try:
        segment = _shm.SharedMemory(create=True, size=total, name=name)
    except FileExistsError:
        stale = _shm.SharedMemory(name=name)
        stale.close()
        stale.unlink()
        segment = _shm.SharedMemory(create=True, size=total, name=name)
    try:
        for (field, offset, length, dtype), (_, array) in zip(layout, fields):
            view = _np.ndarray(length, dtype=dtype, buffer=segment.buf, offset=offset)
            view[:] = array
            del view
    finally:
        segment.close()
    return FragmentHandle(fragment.lo, fragment.hi, name, total, tuple(layout))


def import_fragment(handle: FragmentHandle):
    """Map ``handle``'s segment and rebuild its fragment in place.

    Runs in the parent. The returned fragment's arrays are views into
    the mapped segment — zero copies — so the segment must stay open
    until the merge has copied them out (merging two or more fragments
    always concatenates). Returns ``(fragment, segment)``.
    """
    from repro.kernel.sweeps import Fragment

    segment = _shm.SharedMemory(name=handle.name)
    arrays = {}
    for field, offset, length, dtype in handle.arrays:
        arrays[field] = _np.ndarray(
            length, dtype=dtype, buffer=segment.buf, offset=offset
        )
    fragment = Fragment(
        handle.lo,
        handle.hi,
        arrays["s_mask"],
        arrays.get("t_mask"),
        arrays["offsets"],
        arrays["targets"],
        arrays["action_ids"],
    )
    return fragment, segment


def release_segments(segments) -> int:
    """Close and unlink mapped segments; the number actually unlinked.

    Callers drop their array views first; if one leaks, ``close()`` is
    skipped (the mapping dies with the process) but the segment is still
    unlinked so nothing survives in ``/dev/shm``.
    """
    removed = 0
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # a numpy view still references the buffer
            pass
        try:
            segment.unlink()
            removed += 1
        except FileNotFoundError:
            pass
    return removed


def unlink_segments(token: str, count: int) -> int:
    """Unlink every segment of ``token`` that still exists.

    The crash backstop: reconstructs the deterministic names and removes
    whatever a dead worker left behind. Returns the number removed.
    """
    if _shm is None:
        return 0
    removed = 0
    for index in range(count):
        try:
            segment = _shm.SharedMemory(name=segment_name(token, index))
        except FileNotFoundError:
            continue
        except Exception:  # pragma: no cover - platform oddities
            continue
        try:
            segment.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            segment.unlink()
            removed += 1
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass
    return removed
