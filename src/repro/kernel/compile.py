"""Compilation of guards and statements against a :class:`StateCodec`.

Three tiers, fastest first:

1. **Symbolic closures** — guards and right-hand sides lowered from the
   expression DSL (:mod:`repro.core.expr`) are walked once and compiled
   into closures over a flat per-state value list, so evaluating them on
   the BFS frontier touches no dict and builds no :class:`State`.
2. **View evaluation** — opaque callables are evaluated against a
   :class:`DigitStateView`, a ``Mapping`` facade over the same value
   list. No ``State`` or dict is built, but the callable itself still
   pays its usual per-access cost.
3. **Successor tables** — an action whose *declared* read/write sets are
   trustworthy (see :func:`action_supports_ok`) has a successor function
   that factors through its read-support projection: the packed engine
   memoizes the result per distinct projection value, so the guard and
   statement run once per projection value instead of once per state.

The table tier is the locality payoff of the paper's Section 4: a
convergence action on edge ``v -> w`` reads only ``vars(v) | vars(w)``,
so its projection space is tiny compared to the full state space.
Soundness of the memoization is exactly "the action's behaviour is a
function of its declared reads, and it writes only its declared writes"
— which is what the RW001/RW002/RW003 lint passes check, so the same
probe-battery checks gate table compilation here.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from typing import Any

from repro.core.actions import Action
from repro.core.errors import UnknownVariableError
from repro.core.expr import BoolExpr, Expr, _Binary, _Const, _Fold, _Ite, _Not, _Var
from repro.core.fingerprint import probe_states
from repro.core.introspect import infer_action_support
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.kernel.codec import StateCodec

__all__ = [
    "CompiledAction",
    "DigitStateView",
    "action_supports_ok",
    "compile_action",
    "compile_expr",
    "compile_predicate_fn",
]

#: Table compilation only pays when the projection space is genuinely
#: smaller than the state space; below this reuse factor it is skipped.
MIN_TABLE_REUSE = 2

#: Sentinel distinguishing "key absent" from a memoized ``None`` entry.
_MISSING = object()


class DigitStateView(Mapping[str, Any]):
    """A read-only ``Mapping`` over the kernel's per-state value list.

    Opaque guards, right-hand sides and predicates take any mapping, so
    they evaluate against this view without a :class:`State` (or even a
    dict) ever being built. Missing names raise
    :class:`UnknownVariableError` like ``State.__getitem__`` does, so
    callables observing errors behave identically on both engines.
    """

    __slots__ = ("_positions", "_names", "values")

    def __init__(self, codec: StateCodec) -> None:
        self._positions = codec._positions
        self._names = codec.names
        self.values: list[Any] = []

    def __getitem__(self, name: str) -> Any:
        try:
            return self.values[self._positions[name]]
        except KeyError:
            raise UnknownVariableError(f"state has no variable {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


def compile_expr(expr: Expr, codec: StateCodec) -> Callable[[list], Any] | None:
    """Compile a DSL expression into a closure over the value list.

    Returns ``None`` when the expression tree contains an unknown node
    type (or a variable the codec does not know) — the caller then falls
    back to view evaluation of the original callable.
    """
    kind = type(expr)
    if kind is _Var:
        position = codec._positions.get(expr.name)
        if position is None:
            return None
        return lambda values: values[position]
    if kind is _Const:
        constant = expr.value
        return lambda values: constant
    if kind is _Not:
        inner = compile_expr(expr.inner, codec)
        if inner is None:
            return None
        return lambda values: not inner(values)
    if kind is _Binary or kind is BoolExpr:
        left = compile_expr(expr.left, codec)
        right = compile_expr(expr.right, codec)
        if left is None or right is None:
            return None
        operator = expr.op
        return lambda values: operator(left(values), right(values))
    if kind is _Ite:
        condition = compile_expr(expr.condition, codec)
        then = compile_expr(expr.then, codec)
        otherwise = compile_expr(expr.otherwise, codec)
        if condition is None or then is None or otherwise is None:
            return None
        return lambda values: (
            then(values) if condition(values) else otherwise(values)
        )
    if kind is _Fold:
        items = [compile_expr(item, codec) for item in expr.items]
        if any(item is None for item in items):
            return None
        fold = expr.op
        return lambda values: fold(item(values) for item in items)
    return None


def compile_predicate_fn(
    predicate: Predicate, codec: StateCodec, view: DigitStateView
) -> Callable[[list], bool]:
    """A ``values -> bool`` evaluator for ``predicate``.

    Symbolic predicates (lowered from :class:`BoolExpr`) compile to a
    direct closure; opaque ones evaluate through ``view`` (the caller's
    shared :class:`DigitStateView`, whose ``values`` the kernel rebinds
    per state).
    """
    source = getattr(predicate, "source", None)
    if isinstance(source, BoolExpr):
        compiled = compile_expr(source, codec)
        if compiled is not None:
            return lambda values: bool(compiled(values))

    def evaluate(values: list, _predicate=predicate, _view=view) -> bool:
        _view.values = values
        return bool(_predicate._fn(_view))

    return evaluate


def action_supports_ok(action: Action, battery: list[State]) -> bool:
    """Whether ``action``'s declared read/write sets pass RW001-RW003.

    This is the table-compilation soundness gate: the successor memo is
    keyed by the projection onto the *declared* reads and replays only
    the *declared* writes, so the declarations must survive the same
    checks :mod:`repro.staticcheck` applies —

    - RW001: every inferred read is declared (probe evidence is real);
    - RW002: every inferred write is declared;
    - RW003: no declared read is provably never consulted (only
      decidable for symbolically exact actions).
    """
    inferred = infer_action_support(action, battery)
    if not inferred.reads <= action.reads:
        return False
    if not inferred.writes <= action.writes:
        return False
    if inferred.exact and (action.reads - inferred.reads - action.writes):
        return False
    return True


class CompiledAction:
    """One action compiled against a codec.

    ``successor(code, digits, values)`` returns:

    - ``None`` — the guard does not hold;
    - an ``int`` — the packed code of the successor;
    - a ``State`` — the successor carries a value outside its variable's
      domain and cannot be packed (the raw state is reported so escapes
      and closure witnesses stay bit-identical to the dict engine).

    ``mode`` is ``"table"`` (successors memoized over the read-support
    projection), ``"direct"`` (evaluated per state, no memo), or
    ``"fallback"`` (same as direct, but forced: the action failed the
    RW soundness gate so projection-keyed memoization would be unsound).
    """

    __slots__ = (
        "action",
        "name",
        "mode",
        "successor",
        "_guard_fn",
        "_updates",
        "_read_pairs",
        "_read_set",
        "_table",
        "_view",
    )

    def __init__(
        self,
        action: Action,
        codec: StateCodec,
        view: DigitStateView,
        *,
        supports_ok: bool,
    ) -> None:
        self.action = action
        self.name = action.name
        self._view = view
        self._guard_fn = compile_predicate_fn(action.guard, codec, view)
        # Per written variable: (digit position, weight, value->digit map,
        # rhs evaluator or constant marker).
        updates = []
        for target, rhs in action.effect.updates.items():
            position = codec.position_of(target)
            evaluator: Callable[[list], Any]
            if isinstance(rhs, Expr):
                compiled = compile_expr(rhs, codec)
                if compiled is not None:
                    evaluator = compiled
                else:
                    evaluator = self._view_evaluator(rhs)
            elif callable(rhs):
                evaluator = self._view_evaluator(rhs)
            else:
                constant = rhs
                evaluator = lambda values, _c=constant: _c  # noqa: E731
            updates.append(
                (
                    target,
                    position,
                    codec.weights[position],
                    codec._value_digits[position],
                    evaluator,
                )
            )
        self._updates = tuple(updates)

        read_positions = sorted(codec._positions[name] for name in action.reads)
        projection_size = 1
        for position in read_positions:
            projection_size *= codec.radices[position]
        self._read_pairs = tuple(
            (position, codec.radices[position]) for position in read_positions
        )
        self._read_set = frozenset(read_positions)
        if not supports_ok:
            self.mode = "fallback"
        elif projection_size * MIN_TABLE_REUSE <= codec.size:
            self.mode = "table"
        else:
            self.mode = "direct"
        self._table: dict[int, Any] = {}
        self.successor = self._build_successor()

    def _view_evaluator(self, fn: Callable) -> Callable[[list], Any]:
        def evaluate(values: list, _fn=fn, _view=self._view) -> Any:
            _view.values = values
            return _fn(_view)

        return evaluate

    # ------------------------------------------------------------------
    # Successor computation
    # ------------------------------------------------------------------

    def _evaluate(self, code: int, digits: list[int], values: list) -> tuple | None:
        """Run guard and statement once; normalize to a table entry.

        Entries: ``None`` (disabled), a plain ``int`` shift (every
        written variable is also read, so the packed successor is simply
        ``code + shift`` — the old digits are part of the projection),
        ``("delta", ((pos, digit, weight), ...))`` (digit replacements;
        the old digit is read off the current state), or ``("raw",
        updates_dict)`` (unpackable successor values). Every non-``None``
        form is a function of the read projection only — that is what
        the RW gate guarantees — so it is safe to replay on any state
        sharing the projection.
        """
        if not self._guard_fn(values):
            return None
        written = [
            (target, position, weight, value_digits, evaluator(values))
            for target, position, weight, value_digits, evaluator in self._updates
        ]
        replacements = []
        shift = 0
        pure_shift = True
        for _target, position, weight, value_digits, value in written:
            try:
                digit = value_digits[value]
            except (KeyError, TypeError):
                # Unpackable successor value: keep every write raw so the
                # reported successor State carries the full update.
                return ("raw", {target: value for target, *_rest, value in written})
            replacements.append((position, digit, weight))
            if position in self._read_set:
                shift += (digit - digits[position]) * weight
            else:
                pure_shift = False
        if pure_shift:
            return shift
        return ("delta", tuple(replacements))

    def _apply_entry(
        self, entry, code: int, digits: list[int], values: list
    ) -> int | State | None:
        """Turn a normalized table entry into a successor."""
        if entry is None:
            return None
        if type(entry) is int:  # pure shift
            return code + entry
        tag, payload = entry
        if tag == "delta":
            successor = code
            for position, digit, weight in payload:
                successor += (digit - digits[position]) * weight
            return successor
        # Raw successor: rebuild the dict-engine State (old values plus
        # the recorded writes) so escapes/witnesses compare equal.
        merged = dict(zip(self._view._names, values))
        merged.update(payload)
        return State._adopt(merged)

    def _key_fn(self):
        """The read-projection key of a digit list, unrolled per arity.

        The key computation runs once per (state, action) on the sweep,
        so the generic reduce loop is specialized for the small arities
        the paper's locality structure produces (an edge action reads
        ``vars(v) | vars(w)`` — 2 to 4 variables).
        """
        pairs = self._read_pairs
        if len(pairs) == 0:
            return lambda digits: 0
        if len(pairs) == 1:
            ((p0, _),) = pairs
            return lambda digits: digits[p0]
        if len(pairs) == 2:
            (p0, _), (p1, r1) = pairs
            return lambda digits: digits[p0] * r1 + digits[p1]
        if len(pairs) == 3:
            (p0, _), (p1, r1), (p2, r2) = pairs
            return lambda digits: (digits[p0] * r1 + digits[p1]) * r2 + digits[p2]
        if len(pairs) == 4:
            (p0, _), (p1, r1), (p2, r2), (p3, r3) = pairs
            return lambda digits: (
                ((digits[p0] * r1 + digits[p1]) * r2 + digits[p2]) * r3
                + digits[p3]
            )

        def key_of(digits: list[int]) -> int:
            key = 0
            for position, radix in pairs:
                key = key * radix + digits[position]
            return key

        return key_of

    def _build_successor(self):
        """The action's ``(code, digits, values) -> successor`` closure.

        Returns ``None`` (disabled), an ``int`` (packed successor code),
        or a ``State`` (unpackable successor). Built per action so the
        hot path carries no mode branches: table-compiled actions bind
        their memo dict and key function directly; the memoized entry is
        normalized — a plain ``int`` shift (the overwhelmingly common
        case under the RW gate: every write is also a read) is applied
        with a single addition.
        """
        evaluate = self._evaluate
        apply_entry = self._apply_entry
        if self.mode != "table":

            def successor_direct(code: int, digits: list[int], values: list):
                return apply_entry(evaluate(code, digits, values), code, digits, values)

            return successor_direct

        table = self._table
        key_of = self._key_fn()

        def successor_table(code: int, digits: list[int], values: list):
            key = key_of(digits)
            entry = table.get(key, _MISSING)
            if type(entry) is int:  # pure shift: the hottest path
                return code + entry
            if entry is None:
                return None
            if entry is _MISSING:
                entry = evaluate(code, digits, values)
                table[key] = entry
                return apply_entry(entry, code, digits, values)
            return apply_entry(entry, code, digits, values)

        return successor_table


def compile_action(
    action: Action,
    codec: StateCodec,
    view: DigitStateView,
    battery: list[State],
) -> CompiledAction:
    """Compile one action, applying the RW soundness gate."""
    return CompiledAction(
        action,
        codec,
        view,
        supports_ok=action_supports_ok(action, battery),
    )


def probe_battery(program: Program) -> list[State]:
    """The deterministic probe battery used by the RW gate.

    The same battery :mod:`repro.staticcheck` uses, so "table-compiled"
    coincides with "lints clean on RW001-RW003".
    """
    return probe_states(program)
