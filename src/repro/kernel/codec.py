"""Mixed-radix integer encoding of program states.

The dict-backed :class:`~repro.core.state.State` hashes via
``frozenset(items)`` and pays one dict per state, which dominates
exhaustive verification cost. A :class:`StateCodec` replaces the dict
with a single integer: each finite-domain variable contributes one
mixed-radix digit, so a whole state is a Python ``int`` — hashable for
free, comparable for free, and storable in flat integer buffers at the
narrowest safe width (:attr:`StateCodec.code_typecode`).

Digit layout: variables in *program order* ``v0 .. v(n-1)`` with the
**last variable varying fastest** (weight 1), exactly mirroring
:func:`repro.core.state.enumerate_states`, which drives
``itertools.product`` with the last domain innermost. Consequently the
packed code of the ``k``-th enumerated state is ``k`` — full-space
exploration never encodes or decodes at all, it just counts.

Encoding is exact and total on the program's state space: every
in-domain state round-trips bit-identically through
``decode_state(encode_state(s)) == s``. States outside the space (an
out-of-domain value after a fault, an unbounded counter) raise
:class:`PackedUnsupported`, which is the signal for the ``engine="auto"``
dispatch to fall back to the dict engine.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Mapping
from typing import Any

from repro.core.errors import ReproError
from repro.core.program import Program
from repro.core.state import State

__all__ = ["PackedUnsupported", "StateCodec"]

#: Largest space whose codes fit a signed 16-bit buffer (codes are
#: ``0 .. size-1``, so ``size == 2**15`` still tops out at 32767).
_INT16_SPACE = 1 << 15
#: Largest space whose codes fit a signed 32-bit buffer.
_INT32_SPACE = 1 << 31

_TYPECODE_BYTES = {"h": 2, "i": 4, "q": 8}
_TYPECODE_DTYPE = {"h": "int16", "i": "int32", "q": "int64"}


class PackedUnsupported(ReproError):
    """The packed engine cannot represent this program, state, or value.

    Raised for infinite variable domains, states carrying out-of-domain
    values, and successors escaping their variable's domain. ``auto``
    engine dispatch catches it and falls back to the dict engine.
    """


class StateCodec:
    """Bijection between program states and ``0 .. size-1`` integers.

    Attributes:
        names: Variable names in program declaration order.
        radices: Domain size per variable, same order.
        weights: Mixed-radix place value per variable (last variable has
            weight 1, so codes enumerate in
            :func:`~repro.core.state.enumerate_states` order).
        domain_values: Per-variable tuple of domain values, in domain
            enumeration order (digit ``d`` of variable ``i`` means value
            ``domain_values[i][d]``).
        size: Total number of states (the product of the radices).
    """

    __slots__ = (
        "names",
        "radices",
        "weights",
        "domain_values",
        "size",
        "_value_digits",
        "_positions",
    )

    def __init__(self, names: Iterable[str], domain_values: Iterable[tuple]) -> None:
        self.names: tuple[str, ...] = tuple(names)
        self.domain_values: tuple[tuple[Any, ...], ...] = tuple(
            tuple(values) for values in domain_values
        )
        if len(self.names) != len(self.domain_values):
            raise ValueError("one value tuple is required per variable name")
        self.radices: tuple[int, ...] = tuple(
            len(values) for values in self.domain_values
        )
        weights = [1] * len(self.radices)
        for position in range(len(self.radices) - 2, -1, -1):
            weights[position] = weights[position + 1] * self.radices[position + 1]
        self.weights: tuple[int, ...] = tuple(weights)
        self.size = 1
        for radix in self.radices:
            self.size *= radix
        self._value_digits: tuple[dict[Any, int], ...] = tuple(
            {value: digit for digit, value in enumerate(values)}
            for values in self.domain_values
        )
        self._positions: dict[str, int] = {
            name: position for position, name in enumerate(self.names)
        }

    @classmethod
    def for_program(cls, program: Program) -> "StateCodec":
        """The codec of ``program``'s full state space.

        Raises:
            PackedUnsupported: if any variable's domain is infinite.
        """
        names = []
        domain_values = []
        for variable in program.variables.values():
            if not variable.domain.is_finite:
                raise PackedUnsupported(
                    f"variable {variable.name!r} has an infinite domain; "
                    "the packed engine requires finite domains"
                )
            names.append(variable.name)
            domain_values.append(tuple(variable.domain.values()))
        return cls(names, domain_values)

    def position_of(self, name: str) -> int:
        """The digit position of variable ``name``."""
        return self._positions[name]

    # ------------------------------------------------------------------
    # Code width (kernel v3: arrays pick the narrowest safe dtype)
    # ------------------------------------------------------------------

    @property
    def code_typecode(self) -> str:
        """The narrowest ``array`` typecode that holds every code.

        ``'h'`` (int16) when the space has at most 2^15 states, ``'i'``
        (int32) up to 2^31, ``'q'`` (int64) beyond. Signed widths are
        deliberate: sweep deltas (``successor - code``) range over
        ``(-size, size)`` and must fit the same width as the codes.
        """
        if self.size <= _INT16_SPACE:
            return "h"
        if self.size <= _INT32_SPACE:
            return "i"
        return "q"

    @property
    def code_dtype(self) -> str:
        """The numpy dtype name matching :attr:`code_typecode`."""
        return _TYPECODE_DTYPE[self.code_typecode]

    @property
    def code_bytes(self) -> int:
        """Bytes per packed code at the selected width (2, 4, or 8)."""
        return _TYPECODE_BYTES[self.code_typecode]

    def encode_state(self, state: Mapping[str, Any]) -> int:
        """The packed code of ``state``.

        Raises:
            PackedUnsupported: if the state does not cover exactly this
                codec's variables or carries an out-of-domain value.
        """
        if len(state) != len(self.names):
            raise PackedUnsupported(
                f"state has {len(state)} variables, codec expects "
                f"{len(self.names)}"
            )
        code = 0
        try:
            for position, name in enumerate(self.names):
                code += self._value_digits[position][state[name]] * self.weights[
                    position
                ]
        except (KeyError, TypeError) as error:
            raise PackedUnsupported(
                f"state value for {name!r} is not in its finite domain: {error}"
            ) from None
        return code

    def decode_digits(self, code: int) -> list[int]:
        """The digit list of ``code`` (one digit per variable, in order)."""
        digits = [0] * len(self.radices)
        for position in range(len(self.radices) - 1, -1, -1):
            code, digits[position] = divmod(code, self.radices[position])
        return digits

    def decode_values(self, code: int) -> list[Any]:
        """The variable values of ``code``, in program order."""
        digits = self.decode_digits(code)
        return [
            self.domain_values[position][digit]
            for position, digit in enumerate(digits)
        ]

    def decode_state(self, code: int) -> State:
        """The :class:`State` of ``code`` (content-equal to the dict engine's)."""
        return State._adopt(dict(zip(self.names, self.decode_values(code))))

    # ------------------------------------------------------------------
    # Bulk transport (process-pool workers ship codes, not States)
    # ------------------------------------------------------------------

    def pack_codes(self, codes: Iterable[int]) -> bytes:
        """Serialize packed codes as a flat native-int byte buffer.

        The buffer uses :attr:`code_typecode`, so a 10^4-state protocol
        ships 2 bytes per state instead of 8. Both ends of the pool pipe
        derive the codec from the same program, so the width always
        agrees; the buffer is not a cross-machine wire format.
        """
        return array(self.code_typecode, codes).tobytes()

    def unpack_codes(self, buffer: bytes) -> array:
        """The code array serialized by :meth:`pack_codes` (same width)."""
        codes = array(self.code_typecode)
        codes.frombytes(buffer)
        return codes

    def __repr__(self) -> str:
        return (
            f"StateCodec({len(self.names)} variables, {self.size} states)"
        )
